"""Unit tests for the FusionQuery model."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.query.fusion import FusionQuery
from repro.relational.conditions import Comparison
from repro.relational.parser import parse_condition
from repro.relational.schema import dmv_schema


@pytest.fixture
def dui_sp():
    return FusionQuery.from_strings("L", ["V = 'dui'", "V = 'sp'"])


class TestConstruction:
    def test_from_strings(self, dui_sp):
        assert dui_sp.arity == 2
        assert dui_sp.conditions[0] == Comparison("V", "=", "dui")

    def test_requires_conditions(self):
        with pytest.raises(QueryError):
            FusionQuery("L", ())

    def test_requires_merge_attribute(self):
        with pytest.raises(QueryError):
            FusionQuery("", (Comparison("V", "=", "x"),))

    def test_conditions_coerced_to_tuple(self):
        query = FusionQuery("L", [Comparison("V", "=", "x")])  # type: ignore[arg-type]
        assert isinstance(query.conditions, tuple)

    def test_name_not_part_of_equality(self):
        a = FusionQuery.from_strings("L", ["V = 'x'"], name="a")
        b = FusionQuery.from_strings("L", ["V = 'x'"], name="b")
        assert a == b


class TestValidation:
    def test_validate_against_schema_accepts_dmv(self, dui_sp):
        dui_sp.validate_against_schema(dmv_schema())

    def test_rejects_unknown_attribute(self):
        query = FusionQuery.from_strings("L", ["Z = 1"])
        with pytest.raises(Exception, match="unknown attributes"):
            query.validate_against_schema(dmv_schema())

    def test_rejects_wrong_merge_attribute(self):
        query = FusionQuery.from_strings("V", ["D = 1993"])
        with pytest.raises(QueryError, match="merge"):
            query.validate_against_schema(dmv_schema())

    def test_rejects_merge_attribute_not_in_schema(self):
        query = FusionQuery.from_strings("Z", ["D = 1993"])
        with pytest.raises(QueryError):
            query.validate_against_schema(dmv_schema())


class TestManipulation:
    def test_reorder(self, dui_sp):
        swapped = dui_sp.reorder([1, 0])
        assert swapped.conditions == (
            dui_sp.conditions[1],
            dui_sp.conditions[0],
        )

    def test_reorder_rejects_bad_permutation(self, dui_sp):
        with pytest.raises(QueryError):
            dui_sp.reorder([0, 0])

    def test_with_conditions(self, dui_sp):
        replacement = (parse_condition("D >= 1994"),)
        assert dui_sp.with_conditions(replacement).conditions == replacement


class TestRendering:
    def test_to_sql_two_conditions(self, dui_sp):
        assert dui_sp.to_sql() == (
            "SELECT u1.L FROM U u1, U u2 "
            "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
        )

    def test_to_sql_single_condition(self):
        query = FusionQuery.from_strings("L", ["V = 'dui'"])
        assert query.to_sql() == "SELECT u1.L FROM U u1 WHERE u1.V = 'dui'"

    def test_to_sql_custom_view(self, dui_sp):
        assert "FROM DMV u1" in dui_sp.to_sql(view_name="DMV")

    def test_describe_lists_conditions(self, dui_sp):
        text = dui_sp.describe()
        assert "c1: V = 'dui'" in text
        assert "c2: V = 'sp'" in text

    def test_str(self, dui_sp):
        assert str(dui_sp) == "fuse[L](V = 'dui' AND V = 'sp')"
