"""Unit tests for fusion-query SQL parsing and pattern detection."""

from __future__ import annotations

import pytest

from repro.errors import NotAFusionQueryError
from repro.query.fusion import FusionQuery
from repro.query.sqlparse import is_fusion_query, parse_fusion_query
from repro.relational.conditions import And, Comparison

DMV_SQL = (
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
)


class TestParseHappyPath:
    def test_dmv_query(self):
        query = parse_fusion_query(DMV_SQL)
        assert query.merge_attribute == "L"
        assert query.conditions == (
            Comparison("V", "=", "dui"),
            Comparison("V", "=", "sp"),
        )

    def test_roundtrip_with_to_sql(self):
        query = FusionQuery.from_strings(
            "L", ["V = 'dui'", "V = 'sp'", "D >= 1994"]
        )
        assert parse_fusion_query(query.to_sql()) == query

    def test_three_variables_chained_equalities(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2, U u3 WHERE "
            "u1.L = u2.L AND u2.L = u3.L AND "
            "u1.V = 'a' AND u2.V = 'b' AND u3.V = 'c'"
        )
        assert parse_fusion_query(sql).arity == 3

    def test_equalities_connect_via_star_pattern(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2, U u3 WHERE "
            "u1.L = u2.L AND u1.L = u3.L AND "
            "u1.V = 'a' AND u2.V = 'b' AND u3.V = 'c'"
        )
        assert is_fusion_query(sql)

    def test_multiple_conjuncts_per_variable_are_anded(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND "
            "u1.V = 'dui' AND u1.D >= 1994 AND u2.V = 'sp'"
        )
        query = parse_fusion_query(sql)
        assert isinstance(query.conditions[0], And)
        assert query.conditions[1] == Comparison("V", "=", "sp")

    def test_single_variable_unqualified_condition(self):
        query = parse_fusion_query("SELECT u1.L FROM U u1 WHERE V = 'dui'")
        assert query.arity == 1

    def test_case_insensitive_keywords(self):
        sql = DMV_SQL.replace("SELECT", "select").replace("WHERE", "where")
        assert is_fusion_query(sql)

    def test_trailing_semicolon(self):
        assert is_fusion_query(DMV_SQL + ";")

    def test_custom_view_name(self):
        sql = (
            "SELECT a.doc FROM LIB a, LIB b WHERE a.doc = b.doc "
            "AND a.kw = 'x' AND b.kw = 'y'"
        )
        query = parse_fusion_query(sql, view_name="LIB")
        assert query.merge_attribute == "doc"

    def test_between_and_not_split(self):
        """Regression (found by hypothesis): the AND inside BETWEEN must
        not be treated as a conjunct separator."""
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND "
            "u1.D BETWEEN 1993 AND 1995 AND u2.V = 'sp'"
        )
        query = parse_fusion_query(sql)
        assert query.arity == 2
        from repro.relational.conditions import Between

        assert query.conditions[0] == Between("D", 1993, 1995)

    def test_and_inside_string_literal_not_split(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND "
            "u1.V = 'salt AND pepper' AND u2.V = 'sp'"
        )
        query = parse_fusion_query(sql)
        assert query.conditions[0] == Comparison("V", "=", "salt AND pepper")

    def test_between_inside_parentheses(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND "
            "(u1.D BETWEEN 1993 AND 1995 OR u1.V = 'dui') AND u2.V = 'sp'"
        )
        query = parse_fusion_query(sql)
        assert query.arity == 2

    def test_two_betweens_in_one_query(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND "
            "u1.D BETWEEN 1990 AND 1992 AND u2.D BETWEEN 1995 AND 1997"
        )
        query = parse_fusion_query(sql)
        assert query.arity == 2
        from repro.relational.conditions import Between

        assert all(isinstance(c, Between) for c in query.conditions)

    def test_parenthesized_or_condition(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND "
            "(u1.V = 'dui' OR u1.V = 'reckless') AND u2.V = 'sp'"
        )
        query = parse_fusion_query(sql)
        assert query.arity == 2


class TestRejections:
    def test_not_select_from_where(self):
        assert not is_fusion_query("DELETE FROM U")

    def test_multiple_projected_attributes(self):
        sql = DMV_SQL.replace("SELECT u1.L", "SELECT u1.L, u1.V")
        with pytest.raises(NotAFusionQueryError, match="exactly one"):
            parse_fusion_query(sql)

    def test_unqualified_select(self):
        sql = DMV_SQL.replace("SELECT u1.L", "SELECT L")
        with pytest.raises(NotAFusionQueryError, match="qualified"):
            parse_fusion_query(sql)

    def test_foreign_table_in_from(self):
        sql = DMV_SQL.replace("U u2", "OTHER u2")
        with pytest.raises(NotAFusionQueryError, match="union view"):
            parse_fusion_query(sql)

    def test_duplicate_aliases(self):
        sql = "SELECT u1.L FROM U u1, U u1 WHERE u1.V = 'x'"
        with pytest.raises(NotAFusionQueryError, match="duplicate"):
            parse_fusion_query(sql)

    def test_select_variable_not_declared(self):
        sql = "SELECT u9.L FROM U u1 WHERE u1.V = 'x'"
        with pytest.raises(NotAFusionQueryError, match="not declared"):
            parse_fusion_query(sql)

    def test_equality_not_on_merge_attribute(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.V = u2.V "
            "AND u1.V = 'dui' AND u2.V = 'sp'"
        )
        with pytest.raises(NotAFusionQueryError, match="merge"):
            parse_fusion_query(sql)

    def test_disconnected_variables(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2, U u3 WHERE u1.L = u2.L "
            "AND u1.V = 'a' AND u2.V = 'b' AND u3.V = 'c'"
        )
        with pytest.raises(NotAFusionQueryError, match="connect"):
            parse_fusion_query(sql)

    def test_condition_spanning_two_variables(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L "
            "AND u1.D = 1 AND u2.D = 2 AND u1.V = u2.X"
        )
        with pytest.raises(NotAFusionQueryError):
            parse_fusion_query(sql)

    def test_variable_without_condition(self):
        sql = "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'x'"
        with pytest.raises(NotAFusionQueryError, match="no condition"):
            parse_fusion_query(sql)

    def test_unqualified_condition_with_multiple_variables(self):
        sql = (
            "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L "
            "AND V = 'dui' AND u2.V = 'sp'"
        )
        with pytest.raises(NotAFusionQueryError, match="no tuple variable"):
            parse_fusion_query(sql)

    def test_is_fusion_query_is_boolean(self):
        assert is_fusion_query(DMV_SQL) is True
        assert is_fusion_query("SELECT 1") is False


AGG_SQL = (
    "SELECT u1.V, COUNT(*), AVG(u1.D) FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp' "
    "GROUP BY u1.V"
)


class TestAggregateDetection:
    def test_group_by_is_aggregate(self):
        from repro.query.sqlparse import is_aggregate_query

        assert is_aggregate_query(AGG_SQL)

    def test_global_aggregate_without_group_by(self):
        from repro.query.sqlparse import is_aggregate_query

        sql = (
            "SELECT COUNT(*) FROM U u1, U u2 "
            "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
        )
        assert is_aggregate_query(sql)

    def test_plain_fusion_is_not_aggregate(self):
        from repro.query.sqlparse import is_aggregate_query

        assert not is_aggregate_query(DMV_SQL)


class TestParseAggregateQuery:
    def test_merge_attribute_inferred_from_join(self):
        from repro.query.sqlparse import parse_aggregate_query

        query = parse_aggregate_query(AGG_SQL)
        assert query.merge_attribute == "L"
        assert query.group_by == ("V",)

    def test_single_variable_needs_explicit_merge(self):
        from repro.query.sqlparse import parse_aggregate_query

        sql = "SELECT COUNT(*) FROM U u1 WHERE u1.V = 'dui'"
        query = parse_aggregate_query(sql, merge_attribute="L")
        assert query.merge_attribute == "L"
        with pytest.raises(NotAFusionQueryError):
            parse_aggregate_query(sql)

    def test_requires_at_least_one_aggregate(self):
        from repro.query.sqlparse import parse_aggregate_query

        sql = (
            "SELECT u1.V FROM U u1, U u2 "
            "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp' "
            "GROUP BY u1.V"
        )
        with pytest.raises(NotAFusionQueryError):
            parse_aggregate_query(sql)

    def test_parse_query_dispatches(self):
        from repro.query.aggregate import AggregateQuery
        from repro.query.sqlparse import parse_query

        assert isinstance(parse_query(AGG_SQL), AggregateQuery)
        assert isinstance(parse_query(DMV_SQL), FusionQuery)

    def test_count_star_only_for_count(self):
        from repro.query.sqlparse import parse_aggregate_query

        sql = (
            "SELECT SUM(*) FROM U u1, U u2 "
            "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
        )
        with pytest.raises(Exception):
            parse_aggregate_query(sql)
