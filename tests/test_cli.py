"""Unit tests for the ``python -m repro`` command line."""

from __future__ import annotations

import pytest

from repro.cli import main

DMV_SQL = (
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
)


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "dmv.json"
    assert main(["export-dmv", str(path)]) == 0
    return str(path)


class TestDemo:
    def test_demo_prints_answer(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "answer: J55, T21" in out


class TestQuery:
    def test_query_runs_and_prints_plan(self, spec_path, capsys):
        assert main(["query", spec_path, DMV_SQL]) == 0
        out = capsys.readouterr().out
        assert "J55, T21" in out
        assert "optimizer" in out

    @pytest.mark.parametrize("optimizer", ["filter", "sj", "sja", "sja+", "greedy"])
    def test_all_optimizers_available(self, spec_path, capsys, optimizer):
        assert main(
            ["query", spec_path, DMV_SQL, "--optimizer", optimizer]
        ) == 0
        assert "J55, T21" in capsys.readouterr().out

    def test_adaptive_execution(self, spec_path, capsys):
        assert main(["query", spec_path, DMV_SQL, "--adaptive"]) == 0
        out = capsys.readouterr().out
        assert "stage 1:" in out
        assert "J55, T21" in out

    def test_bad_sql_is_an_error(self, spec_path, capsys):
        assert main(["query", spec_path, "SELECT * FROM U"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_is_an_error(self, capsys):
        assert main(["query", "/does/not/exist.json", DMV_SQL]) == 2


class TestExplain:
    def test_explain_prints_estimates(self, spec_path, capsys):
        assert main(["explain", spec_path, DMV_SQL]) == 0
        out = capsys.readouterr().out
        assert "estimated total cost" in out


class TestCheck:
    def test_fusion_query_detected(self, spec_path, capsys):
        assert main(["check", spec_path, DMV_SQL]) == 0
        assert "fusion query detected" in capsys.readouterr().out

    def test_non_fusion_rejected(self, spec_path, capsys):
        sql = "SELECT u1.L FROM U u1, U u2 WHERE u1.V = u2.V AND u1.D = 1 AND u2.D = 2"
        assert main(["check", spec_path, sql]) == 1
        assert "NOT a fusion query" in capsys.readouterr().out


class TestRuntimeBackend:
    def test_runtime_execution(self, spec_path, capsys):
        assert main(["query", spec_path, DMV_SQL, "--runtime"]) == 0
        out = capsys.readouterr().out
        assert "J55, T21" in out
        assert "makespan" in out

    def test_runtime_with_timeline(self, spec_path, capsys):
        assert main(
            ["query", spec_path, DMV_SQL, "--runtime", "--timeline"]
        ) == 0
        out = capsys.readouterr().out
        assert "|" in out          # the ASCII timeline rows
        assert "util" in out       # the utilization report header

    def test_runtime_with_faults_reports_completeness(self, spec_path, capsys):
        assert main(
            [
                "query", spec_path, DMV_SQL, "--runtime",
                "--fault-rate", "0.4", "--fault-seed", "3", "--retries", "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "completeness:" in out

    def test_runtime_fault_runs_are_seeded(self, spec_path, capsys):
        args = [
            "query", spec_path, DMV_SQL, "--runtime",
            "--fault-rate", "0.5", "--fault-seed", "9", "--retries", "2",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestTelemetry:
    def test_profile_flag_prints_rollups(self, spec_path, capsys):
        assert main(["query", spec_path, DMV_SQL, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "observed/predicted" in out

    def test_no_flags_no_telemetry(self, spec_path, capsys):
        assert main(["query", spec_path, DMV_SQL]) == 0
        out = capsys.readouterr().out
        assert "profile:" not in out
        assert "repro_runs_total" not in out

    def test_metrics_json(self, spec_path, capsys):
        assert main(["query", spec_path, DMV_SQL, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert '"repro_runs_total{backend=\\"sequential\\"}"' in out

    def test_metrics_prometheus(self, spec_path, capsys):
        assert main(
            ["query", spec_path, DMV_SQL, "--metrics", "prom"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_runs_total counter" in out

    def test_emit_events_writes_valid_jsonl(self, spec_path, tmp_path, capsys):
        from repro.obs import EventLog

        log_path = str(tmp_path / "events.jsonl")
        assert main(
            ["query", spec_path, DMV_SQL, "--emit-events", log_path]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        log = EventLog.read(log_path)  # read() re-validates every line
        assert len(log) > 0
        assert log.of_type("run_end")

    def test_emit_events_deterministic(self, spec_path, tmp_path, capsys):
        paths = [str(tmp_path / f"events{i}.jsonl") for i in range(2)]
        for path in paths:
            assert main(
                [
                    "query", spec_path, DMV_SQL, "--runtime",
                    "--fault-rate", "0.4", "--fault-seed", "3",
                    "--emit-events", path,
                ]
            ) == 0
        capsys.readouterr()
        first, second = (open(path).read() for path in paths)
        assert first and first == second

    def test_observed_stats_closes_the_loop(self, spec_path, tmp_path, capsys):
        log_path = str(tmp_path / "warmup.jsonl")
        assert main(
            ["query", spec_path, DMV_SQL, "--emit-events", log_path]
        ) == 0
        baseline = capsys.readouterr().out
        assert main(
            ["query", spec_path, DMV_SQL, "--observed-stats", log_path]
        ) == 0
        out = capsys.readouterr().out
        assert "planning from observed statistics:" in out
        # the mined statistics still pick a correct plan
        assert "J55, T21" in out and "J55, T21" in baseline

    def test_runtime_backend_telemetry(self, spec_path, capsys):
        assert main(
            ["query", spec_path, DMV_SQL, "--runtime", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "makespan" in out


class TestWorkload:
    def test_deterministic_workload(self, spec_path, capsys):
        assert main(
            [
                "workload", spec_path, DMV_SQL,
                "--count", "8", "--rate-qps", "8", "--seed", "5",
                "--pool-slots", "4",
                "--tenant", "bronze:1", "--tenant", "gold:3:8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "q/s" in out
        assert "tenant gold:" in out
        assert "plan cache:" in out

    def test_workload_replays_byte_identically(self, spec_path, capsys):
        outs = []
        for __ in range(2):
            assert main(
                [
                    "workload", spec_path, DMV_SQL,
                    "--count", "6", "--seed", "9",
                    "--fault-rate", "0.3", "--breaker",
                    "--churn", "0.2:1.5:R2:0.6",
                ]
            ) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]

    def test_thread_mode_workload(self, spec_path, capsys):
        assert main(
            [
                "workload", spec_path, DMV_SQL,
                "--mode", "threads", "--workers", "2",
                "--count", "5", "--queue-limit", "32",
            ]
        ) == 0
        assert "5/5 completed" in capsys.readouterr().out

    def test_workload_emits_events(self, spec_path, tmp_path, capsys):
        path = str(tmp_path / "serve-events.jsonl")
        assert main(
            [
                "workload", spec_path, DMV_SQL,
                "--count", "4", "--emit-events", path,
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        from repro.obs.events import EventLog

        log = EventLog.read(path)  # re-validates every line
        assert {event.type for event in log} >= {"serve", "attempt"}

    def test_bad_tenant_flag_is_an_error(self, spec_path, capsys):
        assert main(
            ["workload", spec_path, DMV_SQL, "--tenant", "a:b:c"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_churn_flag_is_an_error(self, spec_path, capsys):
        assert main(
            ["workload", spec_path, DMV_SQL, "--churn", "oops"]
        ) == 2
        assert "error:" in capsys.readouterr().err


AGG_SQL = (
    "SELECT u1.V, COUNT(*), AVG(u1.D) FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp' "
    "GROUP BY u1.V"
)


class TestAggregateQuery:
    def test_aggregate_sql_is_auto_detected(self, spec_path, capsys):
        assert main(["query", spec_path, AGG_SQL]) == 0
        out = capsys.readouterr().out
        assert "aggregate node" in out
        assert "COUNT(*)" in out
        assert "1994.5" in out

    def test_aggregate_flag_and_pushdown_modes(self, spec_path, capsys):
        assert (
            main(["query", spec_path, AGG_SQL, "--aggregate", "--pushdown", "off"])
            == 0
        )
        out = capsys.readouterr().out
        assert "fetch" in out

    def test_aggregate_under_runtime(self, spec_path, capsys):
        assert main(["query", spec_path, AGG_SQL, "--runtime"]) == 0
        out = capsys.readouterr().out
        assert "aggregate node" in out
