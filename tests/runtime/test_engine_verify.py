"""Engine-level tests for verified execution and quarantine.

The scenario throughout: a 2- or 3-way replicated DMV federation whose
mirrors (``R*~1``) serve stale snapshots and corrupt values, executed
on FILTER plans with load balancing so both group members actually
carry traffic (chain plans route one op per group and the rotation
would keep every mirror idle).
"""

from __future__ import annotations

from repro.plans.builder import build_filter_plan
from repro.runtime.engine import RuntimeEngine
from repro.runtime.faults import (
    DataFaultProfile,
    FaultInjector,
    FaultProfile,
)
from repro.runtime.health import BreakerState, QuarantineConfig
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    dmv_fig1,
    replicate_federation,
)

#: Stale most of the time; always corrupting otherwise.  (Fates are
#: exclusive, stale first — a stale_rate of 1.0 would starve corrupt.)
LIAR = DataFaultProfile(stale_rate=0.6, corrupt_rate=1.0)


def make_engine(
    verify: str = "off",
    seed: int = 11,
    replicas: int = 2,
    data: DataFaultProfile = LIAR,
    quarantine: QuarantineConfig | None = None,
):
    federation, query = dmv_fig1()
    federation = replicate_federation(federation, replicas)
    profiles = {
        f"R{i}~1": FaultProfile(data=data) for i in (1, 2, 3)
    }
    engine = RuntimeEngine(
        federation,
        faults=FaultInjector(profiles, seed=seed),
        load_balance=True,
        verify=verify,
        quarantine=quarantine,
    )
    plan = build_filter_plan(query, federation.representative_names)
    return engine, plan


def sweep(engine, plan, runs: int = 6):
    """Repeated runs on one engine; per-run (spurious, missing) counts."""
    outcomes = []
    for __ in range(runs):
        result = engine.run(plan)
        items = frozenset(result.items)
        outcomes.append(
            (len(items - DMV_FIG1_ANSWER), len(DMV_FIG1_ANSWER - items))
        )
    return outcomes


class TestVerifyOff:
    def test_off_admits_spurious_tuples(self):
        engine, plan = make_engine(verify="off")
        outcomes = sweep(engine, plan)
        assert sum(spurious for spurious, __ in outcomes) > 0

    def test_off_leaves_no_quality_evidence(self):
        engine, plan = make_engine(verify="off")
        sweep(engine, plan, runs=2)
        assert engine.health.quality_of("R1~1").answers == 0
        assert engine.health.quarantined_names() == ()

    def test_off_runs_replay_deterministically(self):
        def trace():
            engine, plan = make_engine(verify="off")
            return [engine.run(plan).trace for __ in range(3)]

        assert trace() == trace()


class TestSanitize:
    def test_sanitize_never_admits_corrupt_bytes(self):
        engine, plan = make_engine(verify="sanitize")
        for __ in range(6):
            result = engine.run(plan)
            assert not any(
                isinstance(item, bytes) for item in result.items
            )

    def test_sanitize_cannot_catch_stale_values(self):
        # Stale tuples are plausibly typed; sanitize admits them.
        engine, plan = make_engine(verify="sanitize")
        outcomes = sweep(engine, plan)
        assert sum(spurious for spurious, __ in outcomes) > 0

    def test_corrupt_taint_trips_quarantine_without_votes(self):
        engine, plan = make_engine(
            verify="sanitize", quarantine=QuarantineConfig()
        )
        sweep(engine, plan, runs=6)
        assert engine.health.quarantined_names() != ()
        for name in engine.health.quarantined_names():
            assert name.endswith("~1")


class TestVote:
    def test_vote_admits_zero_spurious(self):
        engine, plan = make_engine(verify="vote")
        outcomes = sweep(engine, plan)
        assert all(spurious == 0 for spurious, __ in outcomes)

    def test_confirm_wait_completes_without_deadlock(self):
        # Both group members run as concurrent primaries under load
        # balance; confirmation fetches must park and drain, never
        # deadlock two members waiting on each other's slots.
        engine, plan = make_engine(verify="vote")
        for __ in range(6):
            result = engine.run(plan)
            assert result.complete or result.items <= DMV_FIG1_ANSWER

    def test_two_way_disagreement_blames_nobody(self):
        # With only two voters there is no majority: charging conflicts
        # would hit the honest member as hard as the liar.  Stale-only
        # mirrors leave no self-evident taint, so nothing may trip.
        stale_only = DataFaultProfile(stale_rate=1.0)
        engine, plan = make_engine(
            verify="vote", data=stale_only,
            quarantine=QuarantineConfig(),
        )
        sweep(engine, plan, runs=6)
        assert engine.health.quarantined_names() == ()
        # Honest primaries keep a perfect score.
        for name in ("R1", "R2", "R3"):
            assert engine.health.quality_score(name) == 1.0

    def test_quarantine_recovers_completeness(self):
        engine, plan = make_engine(
            verify="vote", quarantine=QuarantineConfig()
        )
        outcomes = sweep(engine, plan, runs=8)
        assert engine.health.quarantined_names() != ()
        # Once the liars are out of rotation, the honest members serve
        # the full answer again.
        assert outcomes[-1] == (0, 0)

    def test_quarantined_member_gets_no_traffic(self):
        engine, plan = make_engine(
            verify="vote", quarantine=QuarantineConfig()
        )
        sweep(engine, plan, runs=8)
        quarantined = set(engine.health.quarantined_names())
        assert quarantined
        result = engine.run(plan)
        served = {
            attempt.source
            for span in result.trace.remote_spans
            for attempt in span.attempts
        }
        assert not served & quarantined

    def test_state_of_reports_quarantined(self):
        engine, plan = make_engine(
            verify="vote", quarantine=QuarantineConfig()
        )
        sweep(engine, plan, runs=8)
        name = engine.health.quarantined_names()[0]
        assert engine.health.state_of(name) is BreakerState.QUARANTINED
        # cooldown_s=None means the quarantine is sticky forever.
        assert not engine.health.allow(name, 1e9)


class TestThreeWayMajority:
    def test_majority_serves_full_answer_from_first_run(self):
        engine, plan = make_engine(verify="vote", replicas=3)
        outcomes = sweep(engine, plan)
        assert all(outcome == (0, 0) for outcome in outcomes)

    def test_outvoted_liar_is_blamed_and_quarantined(self):
        engine, plan = make_engine(
            verify="vote", replicas=3, quarantine=QuarantineConfig()
        )
        sweep(engine, plan, runs=6)
        quarantined = set(engine.health.quarantined_names())
        assert quarantined
        assert all(name.endswith("~1") for name in quarantined)
        # Honest members stay clean.
        for name in ("R1", "R2", "R3"):
            assert engine.health.quality_score(name) == 1.0
