"""Unit tests for replica-aware load balancing of healthy traffic."""

from __future__ import annotations

import pytest

from repro.plans.builder import build_filter_plan
from repro.runtime.engine import RuntimeEngine
from repro.runtime.faults import FaultInjector, FaultProfile
from repro.runtime.health import BreakerConfig
from repro.runtime.policy import RetryPolicy
from repro.runtime.trace import OpStatus
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    dmv_fig1,
    replicate_federation,
)


def replicated():
    federation, query = dmv_fig1()
    return replicate_federation(federation, 2), query


def representative_plan(federation, query):
    return build_filter_plan(query, federation.representative_names)


class TestBalancedDispatch:
    def test_healthy_traffic_spreads_across_the_group(self):
        federation, query = replicated()
        plan = representative_plan(federation, query)
        result = RuntimeEngine(federation, load_balance=True).run(plan)
        assert result.items == DMV_FIG1_ANSWER
        assert result.complete
        served = {
            a.source
            for span in result.trace.remote_spans
            for a in span.attempts
        }
        assert served & {"R1~1", "R2~1", "R3~1"}  # mirrors took work
        # Serving from one's own slot is normal operation, not recovery.
        assert all(
            span.status is OpStatus.OK for span in result.trace.remote_spans
        )
        assert not result.recovered_steps

    def test_balancing_never_slows_a_healthy_run(self):
        federation, query = replicated()
        plan = representative_plan(federation, query)
        baseline = RuntimeEngine(federation).run(plan)
        federation2, __ = replicated()
        balanced = RuntimeEngine(federation2, load_balance=True).run(plan)
        assert balanced.items == baseline.items
        assert balanced.makespan_s <= baseline.makespan_s

    def test_default_engine_keeps_mirrors_idle(self):
        federation, query = replicated()
        plan = representative_plan(federation, query)
        result = RuntimeEngine(federation).run(plan)
        served = {
            a.source
            for span in result.trace.remote_spans
            for a in span.attempts
        }
        assert served <= set(federation.representative_names)

    def test_no_replicas_means_no_behavior_change(self):
        federation, query = dmv_fig1()
        plan = build_filter_plan(query, federation.source_names)
        plain = RuntimeEngine(federation).run(plan)
        federation2, __ = dmv_fig1()
        balanced = RuntimeEngine(federation2, load_balance=True).run(plan)
        assert balanced.trace == plain.trace
        assert balanced.items == plain.items


class TestBalancedResilience:
    def make_engine(self, federation, seed):
        return RuntimeEngine(
            federation,
            faults=FaultInjector(FaultProfile.flaky(0.4), seed=seed),
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.1),
            hedge_delay_s=2.0,
            breaker=BreakerConfig.aggressive(),
            load_balance=True,
        )

    @pytest.mark.parametrize("seed", [3, 7, 21])
    def test_faulty_balanced_runs_stay_sound(self, seed):
        federation, query = replicated()
        plan = representative_plan(federation, query)
        result = self.make_engine(federation, seed).run(plan)
        assert result.items <= DMV_FIG1_ANSWER  # never spurious

    def test_same_seed_same_trace(self):
        runs = []
        for __ in range(2):
            federation, query = replicated()
            plan = representative_plan(federation, query)
            runs.append(self.make_engine(federation, seed=7).run(plan))
        first, second = runs
        assert first.trace == second.trace
        assert first.items == second.items
        assert first.trace.timeline() == second.trace.timeline()
