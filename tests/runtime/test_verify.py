"""Unit tests for answer verification (sanitize + vote)."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.relational.relation import Relation
from repro.relational.schema import dmv_schema
from repro.runtime.verify import (
    VERIFY_MODES,
    AnswerVerifier,
    validate_mode,
)


@pytest.fixture
def verifier(dmv_federation):
    return AnswerVerifier(dmv_federation, mode="sanitize")


@pytest.fixture
def voter(dmv_federation):
    return AnswerVerifier(dmv_federation, mode="vote")


class TestModes:
    def test_modes_are_closed(self):
        assert VERIFY_MODES == ("off", "sanitize", "vote")
        for mode in VERIFY_MODES:
            assert validate_mode(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExecutionError):
            validate_mode("paranoid")

    def test_off_never_builds_a_verifier(self, dmv_federation):
        with pytest.raises(ExecutionError):
            AnswerVerifier(dmv_federation, mode="off")

    def test_votes_property(self, verifier, voter):
        assert not verifier.votes
        assert voter.votes


class TestSanitize:
    def test_clean_items_pass_unchanged(self, verifier):
        items = frozenset({"J55", "T21"})
        value, report = verifier.check("R1", items)
        assert value == items
        assert report.clean
        assert report.delivered == report.kept == 2

    def test_corrupt_bytes_dropped(self, verifier):
        value, report = verifier.check(
            "R1", ("J55", b"corrupt#00", "T21", b"corrupt#01")
        )
        assert value == frozenset({"J55", "T21"})
        assert report.corrupt == 2
        assert not report.clean

    def test_duplicates_collapsed(self, verifier):
        value, report = verifier.check("R1", ("J55", "J55", "T21"))
        assert value == frozenset({"J55", "T21"})
        assert report.duplicates == 1

    def test_relations_are_bags_only_schema_violations_drop(self, verifier):
        schema = dmv_schema()
        rows = [
            ("J55", "dui", 1990),
            ("J55", "dui", 1990),  # a legitimate duplicate row
            (b"corrupt#02", "sp", 1991),
        ]
        relation = Relation.unchecked("R", schema, rows)
        value, report = verifier.check("R1", relation)
        assert len(value.rows) == 2
        assert report.corrupt == 1
        assert report.duplicates == 0

    def test_report_with_conflicts_accumulates(self, verifier):
        __, report = verifier.check("R1", ("J55",))
        charged = report.with_conflicts(3)
        assert charged.conflicts == 3
        assert charged.issues == 3
        assert not charged.clean


class TestVote:
    def test_needs_two_answers(self, voter):
        with pytest.raises(ExecutionError):
            voter.vote([("R1", frozenset({"J55"}))])

    def test_two_voters_intersect(self, voter):
        result = voter.vote(
            [
                ("R1", frozenset({"J55", "T21"})),
                ("R1~1", frozenset({"J55", "XXX"})),
            ]
        )
        assert result.kept == frozenset({"J55"})
        assert not result.unanimous
        assert result.spurious == {"R1": 1, "R1~1": 1}
        # The intersection is a subset of every claim, so nobody
        # "missed" a kept value — disputes show up as spurious only.
        assert result.missing == {}

    def test_majority_outvotes_lone_liar(self, voter):
        honest = frozenset({"J55", "T21"})
        result = voter.vote(
            [
                ("R1", honest),
                ("R1~1", frozenset({"J55", "XXX"})),
                ("R1~2", honest),
            ]
        )
        assert result.kept == honest
        assert result.spurious == {"R1~1": 1}
        assert result.missing == {"R1~1": 1}

    def test_unanimous_vote_blames_nobody(self, voter):
        answer = frozenset({"J55"})
        result = voter.vote([("R1", answer), ("R1~1", answer)])
        assert result.unanimous
        assert result.kept == answer
        assert not result.spurious
        assert not result.missing

    def test_relations_vote_by_row_sets(self, voter):
        schema = dmv_schema()
        honest_rows = [("J55", "dui", 1990), ("T21", "sp", 1991)]
        stale_rows = [("J55", "dui", 1990), ("T21", "sp", 1888)]
        honest = Relation("R", schema, honest_rows)
        stale = Relation("R", schema, stale_rows)
        result = voter.vote(
            [("R1", honest), ("R1~1", stale), ("R1~2", honest)]
        )
        assert isinstance(result.kept, Relation)
        assert set(result.kept.rows) == set(honest_rows)
        assert result.spurious == {"R1~1": 1}

    def test_claims_of_relation_and_items(self, voter):
        schema = dmv_schema()
        relation = Relation("R", schema, [("J55", "dui", 1990)])
        assert voter.claims(relation) == frozenset({("J55", "dui", 1990)})
        assert voter.claims(("J55", "J55")) == frozenset({"J55"})
