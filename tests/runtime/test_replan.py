"""Unit tests for in-flight re-planning around dead sources."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.runtime.faults import FaultInjector, FaultProfile
from repro.runtime.policy import RetryPolicy
from repro.runtime.replan import ResilientExecutor
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    dmv_fig1,
    replicate_federation,
)


def dead(*names: str) -> FaultInjector:
    return FaultInjector(
        {name: FaultProfile.flaky(1.0) for name in names}, seed=0
    )


@pytest.fixture
def replicated():
    federation, query = dmv_fig1()
    return replicate_federation(federation, 2), query


class TestHappyPath:
    def test_zero_faults_single_round(self, replicated):
        federation, query = replicated
        executor = ResilientExecutor(federation)
        result = executor.run(query)
        assert result.items == DMV_FIG1_ANSWER
        assert result.replans == 0
        assert result.masked == ()
        assert result.complete
        assert result.rounds[0].sources == ("R1", "R2", "R3")

    def test_plans_over_representatives_by_default(self, replicated):
        federation, query = replicated
        result = ResilientExecutor(federation).run(query)
        planned = {
            s.source for s in result.rounds[0].result.trace.remote_spans
        }
        assert planned == {"R1", "R2", "R3"}  # mirrors held in reserve


class TestReplanRounds:
    def test_dead_source_masked_and_mirror_swapped_in(self, replicated):
        federation, query = replicated
        executor = ResilientExecutor(
            federation,
            faults=dead("R1"),
            policy=RetryPolicy.no_retry(),
        )
        result = executor.run(query)
        assert result.items == DMV_FIG1_ANSWER
        assert result.complete
        assert result.replans >= 1
        assert "R1" in result.masked
        final = result.rounds[-1]
        assert "R1" not in final.sources
        assert "R1~1" in final.sources

    def test_round_zero_answer_is_preserved(self, replicated):
        federation, query = replicated
        executor = ResilientExecutor(
            federation,
            faults=dead("R1"),
            policy=RetryPolicy.no_retry(),
        )
        result = executor.run(query)
        assert result.rounds[0].result.items <= result.items

    def test_both_mirrors_dead_stays_degraded_but_sound(self, replicated):
        federation, query = replicated
        executor = ResilientExecutor(
            federation,
            faults=dead("R1", "R1~1"),
            policy=RetryPolicy.no_retry(),
        )
        result = executor.run(query)
        # The final round plans around the whole R1 family and finishes
        # clean, so ``complete`` is True — but ``masked`` records the
        # coverage loss and the answer is a strict subset, never more.
        assert result.items < DMV_FIG1_ANSWER
        assert {"R1", "R1~1"} <= set(result.masked)
        assert "masked: R1, R1~1" in result.summary()

    def test_max_replans_bounds_rounds(self, replicated):
        federation, query = replicated
        executor = ResilientExecutor(
            federation,
            faults=dead("R1", "R1~1", "R2", "R2~1", "R3", "R3~1"),
            policy=RetryPolicy.no_retry(),
            max_replans=1,
        )
        result = executor.run(query)
        assert len(result.rounds) <= 2
        assert result.items == frozenset()

    def test_max_replans_zero_is_plain_execution(self, replicated):
        federation, query = replicated
        executor = ResilientExecutor(
            federation,
            faults=dead("R1"),
            policy=RetryPolicy.no_retry(),
            max_replans=0,
        )
        result = executor.run(query)
        assert len(result.rounds) == 1
        assert result.replans == 0
        assert not result.complete

    def test_dead_sources_lists_planned_names(self, replicated):
        federation, query = replicated
        executor = ResilientExecutor(
            federation,
            faults=dead("R2"),
            policy=RetryPolicy.no_retry(),
            max_replans=0,
        )
        result = executor.run(query)
        assert result.rounds[0].dead_sources == ("R2",)


class TestAccounting:
    def test_makespan_and_cost_sum_over_rounds(self, replicated):
        federation, query = replicated
        executor = ResilientExecutor(
            federation,
            faults=dead("R1"),
            policy=RetryPolicy.no_retry(),
        )
        result = executor.run(query)
        assert result.makespan_s == pytest.approx(
            sum(r.result.makespan_s for r in result.rounds)
        )
        assert result.total_cost == pytest.approx(
            sum(r.result.trace.total_cost for r in result.rounds)
        )
        assert "masked: R1" in result.summary()

    def test_breaker_state_survives_across_rounds(self, replicated):
        federation, query = replicated
        from repro.runtime.health import BreakerConfig, BreakerState

        executor = ResilientExecutor(
            federation,
            faults=dead("R1"),
            policy=RetryPolicy.no_retry(),
            breaker=BreakerConfig(failure_threshold=1, cooldown_s=1e6),
        )
        result = executor.run(query)
        assert result.items == DMV_FIG1_ANSWER
        assert executor.engine.health.state_of("R1") is BreakerState.OPEN


class TestValidation:
    def test_negative_max_replans_rejected(self, replicated):
        federation, __ = replicated
        with pytest.raises(CostModelError):
            ResilientExecutor(federation, max_replans=-1)

    def test_explicit_source_subset_honoured(self, replicated):
        federation, query = replicated
        result = ResilientExecutor(federation).run(
            query, source_names=("R1~1", "R2~1", "R3~1")
        )
        assert result.items == DMV_FIG1_ANSWER
        assert result.rounds[0].sources == ("R1~1", "R2~1", "R3~1")
