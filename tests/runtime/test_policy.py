"""Unit tests for retry policies and the completeness report."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.runtime.policy import (
    CompletenessReport,
    OnExhaust,
    RetryPolicy,
    completeness_report,
)
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_multiplier=2.0, backoff_max_s=0.5
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)
        assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.5)

    def test_backoff_rejects_zeroth_retry(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)

    def test_may_retry_counts(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.may_retry(0, 0.0, 1.0)
        assert policy.may_retry(1, 0.0, 1.0)
        assert not policy.may_retry(2, 0.0, 1.0)

    def test_may_retry_deadline(self):
        policy = RetryPolicy(max_retries=10, deadline_s=5.0)
        assert policy.may_retry(0, 100.0, 104.0)
        assert not policy.may_retry(0, 100.0, 105.5)

    def test_no_retry_profile(self):
        policy = RetryPolicy.no_retry()
        assert policy.max_retries == 0
        assert policy.on_exhaust is OnExhaust.SKIP
        assert not policy.may_retry(0, 0.0, 0.0)

    def test_strict_profile_has_bounds(self):
        policy = RetryPolicy.strict(timeout_s=1.0, deadline_s=3.0)
        assert policy.timeout_s == 1.0
        assert policy.deadline_s == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_base_s": float("inf")},
            {"timeout_s": 0.0},
            {"deadline_s": -1.0},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(CostModelError):
            RetryPolicy(**kwargs)


class TestCompletenessReport:
    def test_exact_answer(self):
        report = CompletenessReport(
            expected=frozenset({"a", "b"}), answered=frozenset({"a", "b"})
        )
        assert report.exact
        assert report.completeness == 1.0
        assert not report.missing
        assert not report.spurious

    def test_partial_answer(self):
        report = CompletenessReport(
            expected=frozenset({"a", "b", "c", "d"}),
            answered=frozenset({"a", "b"}),
        )
        assert report.completeness == pytest.approx(0.5)
        assert report.missing == frozenset({"c", "d"})
        assert "2/4 answers" in report.summary()

    def test_spurious_flagged_in_summary(self):
        report = CompletenessReport(
            expected=frozenset({"a"}), answered=frozenset({"a", "z"})
        )
        assert report.spurious == frozenset({"z"})
        assert "spurious!" in report.summary()

    def test_empty_expected_is_vacuously_complete(self):
        report = CompletenessReport(
            expected=frozenset(), answered=frozenset()
        )
        assert report.completeness == 1.0
        assert report.exact

    def test_against_reference(self):
        federation, query = dmv_fig1()
        report = completeness_report(federation, query, DMV_FIG1_ANSWER)
        assert report.exact
        partial = completeness_report(federation, query, frozenset({"J55"}))
        assert partial.completeness == pytest.approx(0.5)


class TestBackoffJitter:
    def test_disabled_by_default(self):
        policy = RetryPolicy(backoff_base_s=0.1)
        assert policy.backoff_jitter == 0.0
        assert policy.backoff_s(1, key="op", seed=3) == pytest.approx(0.1)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_jitter=0.25)
        for retry in range(1, 6):
            for seed in range(5):
                wait = policy.backoff_s(retry, key="semijoin:R1", seed=seed)
                base = min(
                    1.0 * policy.backoff_multiplier ** (retry - 1),
                    policy.backoff_max_s,
                )
                assert base * 0.75 <= wait <= base * 1.25

    def test_deterministic_per_seed_key_and_attempt(self):
        policy = RetryPolicy.jittered()
        a = policy.backoff_s(2, key="load:R1", seed=7)
        b = policy.backoff_s(2, key="load:R1", seed=7)
        assert a == b  # byte-identical, not just approximately equal

    def test_varies_across_seed_key_and_attempt(self):
        policy = RetryPolicy.jittered()
        baseline = policy.backoff_s(1, key="load:R1", seed=7)
        assert policy.backoff_s(1, key="load:R2", seed=7) != baseline
        assert policy.backoff_s(1, key="load:R1", seed=8) != baseline

    def test_jittered_profile(self):
        assert RetryPolicy.jittered(0.3).backoff_jitter == 0.3

    @pytest.mark.parametrize("jitter", [-0.1, 1.5, float("nan")])
    def test_invalid_jitter_rejected(self, jitter):
        with pytest.raises(CostModelError):
            RetryPolicy(backoff_jitter=jitter)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": 1.5},
            {"max_retries": "3"},
            {"on_exhaust": "skip"},
        ],
    )
    def test_wrongly_typed_fields_rejected(self, kwargs):
        with pytest.raises(CostModelError):
            RetryPolicy(**kwargs)


class TestCompletenessAccounting:
    def run_with(self, engine_kwargs):
        from repro.plans.builder import build_filter_plan
        from repro.runtime.engine import RuntimeEngine
        from repro.sources.generators import replicate_federation

        federation, query = dmv_fig1()
        federation = replicate_federation(federation, 2)
        plan = build_filter_plan(query, federation.representative_names)
        engine = RuntimeEngine(federation, **engine_kwargs)
        result = engine.run(plan)
        return completeness_report(
            federation, query, result.items, trace=result.trace
        )

    def test_skipped_ops_counted(self):
        from repro.runtime.faults import FaultInjector, FaultProfile

        report = self.run_with(
            dict(
                faults=FaultInjector(
                    {"R1": FaultProfile.flaky(1.0)}, seed=0
                ),
                policy=RetryPolicy.no_retry(),
            )
        )
        assert report.skipped_ops > 0
        assert report.recovered_ops == 0
        assert "ops skipped" in report.summary()

    def test_recovered_ops_counted(self):
        from repro.runtime.faults import FaultInjector, FaultProfile

        report = self.run_with(
            dict(
                faults=FaultInjector(
                    {"R1": FaultProfile.flaky(1.0)}, seed=0
                ),
                policy=RetryPolicy.no_retry(),
                hedge_delay_s=5.0,
            )
        )
        assert report.exact
        assert report.skipped_ops == 0
        assert report.recovered_ops > 0
        assert "recovered via replicas" in report.summary()

    def test_clean_run_reports_neither(self):
        report = self.run_with({})
        assert report.exact
        assert report.skipped_ops == 0
        assert report.recovered_ops == 0
        assert "skipped" not in report.summary()
