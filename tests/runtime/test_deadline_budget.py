"""Query deadline budgets on the concurrent engine.

The budget is the execution slice of an end-to-end deadline: when it
expires mid-run the engine must cancel in-flight work and return a
*partial* answer (a subset of the true one, never a superset) instead
of raising — and retry backoff and hedge timers must never be
scheduled past it.
"""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.plans.builder import build_filter_plan
from repro.runtime.engine import RuntimeEngine
from repro.runtime.faults import FaultInjector, FaultProfile
from repro.runtime.policy import OnExhaust, RetryPolicy
from repro.runtime.trace import OpStatus
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1


@pytest.fixture
def dmv():
    return dmv_fig1()


def filter_plan(federation, query):
    return build_filter_plan(query, federation.source_names)


class TestBudgetBasics:
    def test_generous_budget_changes_nothing(self, dmv):
        federation, query = dmv
        plan = filter_plan(federation, query)
        baseline = RuntimeEngine(federation).run(plan)
        budgeted = RuntimeEngine(federation).run(plan, budget_s=1e6)
        assert budgeted.items == baseline.items == DMV_FIG1_ANSWER
        assert budgeted.makespan_s == baseline.makespan_s
        assert not budgeted.deadline_expired
        assert budgeted.complete

    def test_deadline_exactly_at_completion_counts_met(self, dmv):
        # Finishing exactly on the deadline is on time, not a miss.
        federation, query = dmv
        plan = filter_plan(federation, query)
        makespan = RuntimeEngine(federation).run(plan).makespan_s
        result = RuntimeEngine(federation).run(plan, budget_s=makespan)
        assert result.items == DMV_FIG1_ANSWER
        assert not result.deadline_expired
        assert result.complete

    def test_zero_budget_degrades_without_wire_traffic(self, dmv):
        federation, query = dmv
        plan = filter_plan(federation, query)
        federation.reset_traffic()
        result = RuntimeEngine(federation).run(plan, budget_s=0.0)
        assert result.deadline_expired
        assert not result.complete
        assert result.items <= DMV_FIG1_ANSWER
        assert result.trace.total_messages == 0
        remote_statuses = {
            span.status for span in result.trace.remote_spans
        }
        assert remote_statuses == {OpStatus.DEADLINE}

    def test_mid_run_expiry_returns_partial_subset(self, dmv):
        federation, query = dmv
        plan = filter_plan(federation, query)
        full = RuntimeEngine(federation).run(plan)
        budget = full.makespan_s / 2
        result = RuntimeEngine(federation).run(plan, budget_s=budget)
        assert result.deadline_expired
        assert result.items <= full.items
        assert result.makespan_s <= budget
        # Nothing raises: the partial answer is a normal return value.
        assert result.deadline_steps

    def test_non_finite_budget_rejected(self, dmv):
        federation, query = dmv
        plan = filter_plan(federation, query)
        with pytest.raises(CostModelError):
            RuntimeEngine(federation).run(plan, budget_s=float("nan"))


class TestBackoffClamp:
    def test_clamped_backoff_never_exceeds_remaining(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=1.0)
        full = policy.backoff_s(3)
        assert policy.clamped_backoff_s(3, None) == full
        assert policy.clamped_backoff_s(3, full + 1.0) == full
        # A sleep that would consume the whole remainder is refused —
        # the retry would only wake to be cancelled.
        assert policy.clamped_backoff_s(3, full / 2) is None
        assert policy.clamped_backoff_s(3, full) is None

    def test_clamped_backoff_refuses_spent_budget(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=1.0)
        assert policy.clamped_backoff_s(1, 0.0) is None
        assert policy.clamped_backoff_s(1, -1.0) is None

    def test_flaky_source_under_tight_budget_stays_inside(self, dmv):
        # The regression the clamp exists for: a flaky source whose
        # exponential backoff alone would overshoot the budget.  The
        # run must end by the deadline with a subset answer, and no
        # attempt may extend past it.
        federation, query = dmv
        plan = filter_plan(federation, query)
        budget = 3.0
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(FaultProfile.flaky(0.8), seed=11),
            policy=RetryPolicy(
                max_retries=8,
                backoff_base_s=4.0,
                on_exhaust=OnExhaust.SKIP,
            ),
        )
        result = engine.run(plan, budget_s=budget)
        assert result.makespan_s <= budget
        assert result.items <= DMV_FIG1_ANSWER
        for span in result.trace.remote_spans:
            assert span.finished_s <= budget + 1e-12


class TestHedgeClamp:
    def test_expiry_mid_hedge_cancels_both_runners(self, dmv):
        # A hedge in flight when the budget expires: primary and
        # substitute are both cancelled, neither extends past the
        # deadline, and the answer stays a subset.
        federation, query = dmv
        plan = filter_plan(federation, query)
        profile = FaultProfile(slowdown_rate=1.0, slowdown_factor=8.0)
        full = RuntimeEngine(
            federation,
            faults=FaultInjector(profile, seed=3),
            hedge_delay_s=0.5,
        ).run(plan)
        budget = full.makespan_s / 2
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(profile, seed=3),
            hedge_delay_s=0.5,
        )
        result = engine.run(plan, budget_s=budget)
        assert result.deadline_expired
        assert result.items <= DMV_FIG1_ANSWER
        assert result.makespan_s <= budget
        for span in result.trace.remote_spans:
            assert span.finished_s <= budget + 1e-12
