"""Unit tests for the fault-injection layer."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.relational.relation import Relation
from repro.relational.schema import dmv_schema
from repro.runtime.faults import (
    AttemptFate,
    DataFate,
    DataFaultProfile,
    FaultInjector,
    FaultProfile,
)
from repro.sources.network import LinkProfile


LINK = LinkProfile(latency_s=0.1, items_per_s=1000.0)


class TestFaultProfile:
    def test_none_is_healthy(self):
        assert FaultProfile.none().healthy

    def test_flaky_and_degraded_are_not_healthy(self):
        assert not FaultProfile.flaky(0.1).healthy
        assert not FaultProfile.degraded(0.1).healthy

    def test_zero_rate_flaky_is_healthy(self):
        assert FaultProfile.flaky(0.0).healthy

    @pytest.mark.parametrize("rate", [-0.1, 1.1, float("nan")])
    def test_invalid_rates_rejected(self, rate):
        with pytest.raises(CostModelError):
            FaultProfile(transient_rate=rate)

    def test_invalid_outage_window_rejected(self):
        with pytest.raises(CostModelError):
            FaultProfile(outages=((5.0, 2.0),))

    def test_in_outage(self):
        profile = FaultProfile(outages=((1.0, 2.0), (5.0, 6.0)))
        assert profile.in_outage(1.5)
        assert profile.in_outage(5.0)
        assert not profile.in_outage(2.0)  # half-open window
        assert not profile.in_outage(3.0)

    def test_slowdown_factor_below_one_rejected(self):
        with pytest.raises(CostModelError):
            FaultProfile(slowdown_rate=0.5, slowdown_factor=0.5)


class TestFaultInjector:
    def test_healthy_profile_never_perturbs(self):
        injector = FaultInjector.none()
        for __ in range(50):
            outcome = injector.judge("S", 0.0, 1.0, LINK)
            assert outcome.fate is AttemptFate.OK
            assert outcome.duration_s == 1.0
        assert injector.attempts == 50
        assert sum(injector.injected.values()) == 0

    def test_always_transient(self):
        injector = FaultInjector(FaultProfile.flaky(1.0), seed=0)
        outcome = injector.judge("S", 0.0, 1.0, LINK)
        assert outcome.fate is AttemptFate.TRANSIENT
        # Fails after one empty round trip, not the full exchange.
        assert outcome.duration_s == pytest.approx(LINK.request_time_s(0, 0))

    def test_outage_beats_randomness(self):
        injector = FaultInjector(
            FaultProfile(outages=((0.0, 10.0),)), seed=0
        )
        outcome = injector.judge("S", 5.0, 1.0, LINK)
        assert outcome.fate is AttemptFate.OUTAGE
        assert outcome.duration_s == pytest.approx(LINK.latency_s)
        after = injector.judge("S", 10.0, 1.0, LINK)
        assert after.fate is AttemptFate.OK

    def test_stall_extends_duration(self):
        injector = FaultInjector(
            FaultProfile(stall_rate=1.0, stall_s=30.0), seed=0
        )
        outcome = injector.judge("S", 0.0, 1.0, LINK)
        assert outcome.fate is AttemptFate.OK  # policy turns it into timeout
        assert outcome.duration_s == pytest.approx(31.0)

    def test_slowdown_multiplies_duration(self):
        injector = FaultInjector(FaultProfile.degraded(1.0, 4.0), seed=0)
        outcome = injector.judge("S", 0.0, 1.0, LINK)
        assert outcome.fate is AttemptFate.OK
        assert outcome.duration_s == pytest.approx(4.0)

    def test_per_source_streams_are_independent_and_deterministic(self):
        def draw(seed):
            injector = FaultInjector(FaultProfile.flaky(0.5), seed=seed)
            return [
                injector.judge(name, 0.0, 1.0, LINK).fate
                for name in ("A", "B", "A", "B", "A")
            ]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8) or draw(7) != draw(9)

    def test_interleaving_does_not_change_a_sources_stream(self):
        a_only = FaultInjector(FaultProfile.flaky(0.5), seed=3)
        fates_alone = [
            a_only.judge("A", 0.0, 1.0, LINK).fate for __ in range(6)
        ]
        mixed = FaultInjector(FaultProfile.flaky(0.5), seed=3)
        fates_mixed = []
        for __ in range(6):
            fates_mixed.append(mixed.judge("A", 0.0, 1.0, LINK).fate)
            mixed.judge("B", 0.0, 1.0, LINK)  # interleaved traffic
        assert fates_alone == fates_mixed

    def test_per_source_mapping_with_default(self):
        injector = FaultInjector(
            {"A": FaultProfile.flaky(1.0)},
            seed=0,
            default=FaultProfile.none(),
        )
        assert injector.judge("A", 0.0, 1.0, LINK).fate.failed
        assert not injector.judge("B", 0.0, 1.0, LINK).fate.failed

    def test_summary_counts(self):
        injector = FaultInjector(FaultProfile.flaky(1.0), seed=0)
        injector.judge("A", 0.0, 1.0, LINK)
        injector.judge("A", 0.0, 1.0, LINK)
        assert "2 attempts" in injector.summary()
        assert "2 injected faults" in injector.summary()
        assert "transient" in injector.summary()

    def test_stalls_and_slowdowns_are_counted(self):
        stalls = FaultInjector(
            FaultProfile(stall_rate=1.0, stall_s=30.0), seed=0
        )
        stalls.judge("A", 0.0, 1.0, LINK)
        assert stalls.injected["stall"] == 1
        slow = FaultInjector(FaultProfile.degraded(1.0, 4.0), seed=0)
        slow.judge("A", 0.0, 1.0, LINK)
        assert slow.injected["slowdown"] == 1
        assert "slowdown" in slow.summary()


class TestDataFaultProfile:
    def test_none_is_healthy(self):
        assert DataFaultProfile.none().healthy

    def test_any_rate_is_unhealthy(self):
        assert not DataFaultProfile(stale_rate=0.1).healthy
        assert not DataFaultProfile.corrupting(0.1).healthy

    @pytest.mark.parametrize("rate", [-0.1, 1.5, float("nan")])
    def test_invalid_rates_rejected(self, rate):
        with pytest.raises(CostModelError):
            DataFaultProfile(stale_rate=rate)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(CostModelError):
            DataFaultProfile(corrupt_rate=0.5, corrupt_fraction=0.0)

    def test_expected_delivery_charges_lossy_fates(self):
        assert DataFaultProfile.none().expected_delivery == 1.0
        # Duplicates lose nothing.
        assert (
            DataFaultProfile(duplicate_rate=1.0).expected_delivery == 1.0
        )
        lossy = DataFaultProfile(truncated_rate=0.5, truncated_fraction=0.5)
        assert lossy.expected_delivery == pytest.approx(0.75)


class TestDataTamper:
    ITEMS = frozenset({"J55", "T21", "T80", "S07"})
    POOL = frozenset({"A01", "B02", "J55"})

    def injector(self, seed=0, **rates):
        profile = FaultProfile(data=DataFaultProfile(**rates))
        return FaultInjector(profile, seed=seed)

    def test_no_data_profile_never_tampers(self):
        injector = FaultInjector(FaultProfile.flaky(0.5), seed=0)
        payload, tamper = injector.tamper("A", self.ITEMS)
        assert payload is self.ITEMS
        assert not tamper.tampered

    def test_corrupt_replaces_values_with_bytes(self):
        injector = self.injector(corrupt_rate=1.0)
        payload, tamper = injector.tamper("A", self.ITEMS)
        assert tamper.fate is DataFate.CORRUPT
        corrupt = [value for value in payload if isinstance(value, bytes)]
        assert len(corrupt) == tamper.corrupted > 0
        assert injector.injected["corrupt"] == 1

    def test_truncated_drops_tuples(self):
        injector = self.injector(truncated_rate=1.0, truncated_fraction=0.5)
        payload, tamper = injector.tamper("A", self.ITEMS)
        assert tamper.fate is DataFate.TRUNCATED
        assert len(payload) == len(self.ITEMS) - tamper.dropped
        assert set(payload) < self.ITEMS

    def test_stale_adds_spurious_from_pool(self):
        injector = self.injector(stale_rate=1.0)
        payload, tamper = injector.tamper("A", self.ITEMS, pool=self.POOL)
        assert tamper.fate is DataFate.STALE
        spurious = set(payload) - self.ITEMS
        assert len(spurious) == tamper.added > 0
        # Only never-matching pool items are candidates.
        assert spurious <= self.POOL - self.ITEMS

    def test_duplicate_appends_copies(self):
        injector = self.injector(duplicate_rate=1.0)
        payload, tamper = injector.tamper("A", self.ITEMS)
        assert tamper.fate is DataFate.DUPLICATE
        assert isinstance(payload, tuple)
        assert len(payload) == len(self.ITEMS) + tamper.duplicated
        assert set(payload) == self.ITEMS

    def test_at_most_one_fate_stale_first(self):
        injector = self.injector(stale_rate=1.0, corrupt_rate=1.0)
        for __ in range(5):
            __, tamper = injector.tamper("A", self.ITEMS, pool=self.POOL)
            assert tamper.fate is DataFate.STALE

    def test_same_seed_same_tampering(self):
        def run(seed):
            injector = self.injector(seed=seed, stale_rate=0.5,
                                     corrupt_rate=0.5)
            return [
                injector.tamper("A", self.ITEMS, pool=self.POOL)
                for __ in range(8)
            ]

        assert run(3) == run(3)
        assert run(3) != run(4) or run(3) != run(5)

    def test_data_stream_does_not_shift_wire_fates(self):
        # The acceptance bar for replay: adding payload faults must
        # leave a source's wire-level outcomes byte-identical.
        wire_only = FaultInjector(FaultProfile.flaky(0.5), seed=9)
        plain = [
            wire_only.judge("A", 0.0, 1.0, LINK).fate for __ in range(10)
        ]
        both = FaultInjector(
            FaultProfile(
                transient_rate=0.5,
                data=DataFaultProfile(stale_rate=0.5, corrupt_rate=0.5),
            ),
            seed=9,
        )
        mixed = []
        for __ in range(10):
            mixed.append(both.judge("A", 0.0, 1.0, LINK).fate)
            both.tamper("A", self.ITEMS, pool=self.POOL)
        assert plain == mixed

    def test_interleaving_does_not_change_a_sources_data_stream(self):
        def tampers(interleave):
            injector = self.injector(seed=5, stale_rate=0.5,
                                     corrupt_rate=0.5)
            out = []
            for __ in range(6):
                out.append(
                    injector.tamper("A", self.ITEMS, pool=self.POOL)
                )
                if interleave:
                    injector.tamper("B", self.ITEMS, pool=self.POOL)
            return out

        assert tampers(False) == tampers(True)

    def relation(self):
        rows = [
            ("J55", "dui", 1990),
            ("T21", "sp", 1991),
            ("T80", "dui", 1992),
            ("S07", "parking", 1993),
        ]
        return Relation("R", dmv_schema(), rows)

    def test_relation_stale_swaps_non_merge_values(self):
        injector = self.injector(stale_rate=1.0)
        payload, tamper = injector.tamper("A", self.relation())
        assert tamper.fate is DataFate.STALE
        assert tamper.diverged > 0
        # Merge keys survive; non-merge values moved between rows.
        assert {row[0] for row in payload.rows} == {
            row[0] for row in self.relation().rows
        }
        assert set(payload.rows) != set(self.relation().rows)

    def test_relation_corrupt_is_schema_violating(self):
        injector = self.injector(corrupt_rate=1.0)
        payload, tamper = injector.tamper("A", self.relation())
        assert tamper.fate is DataFate.CORRUPT
        bad = [
            row for row in payload.rows if isinstance(row[0], bytes)
        ]
        assert len(bad) == tamper.corrupted > 0


class TestOutageOverlaps:
    """Outage windows interacting with retry backoffs and hedge delays."""

    def run_engine(self, outage, **engine_kwargs):
        from repro.plans.builder import build_filter_plan
        from repro.runtime.engine import RuntimeEngine
        from repro.sources.generators import dmv_fig1, replicate_federation

        federation, query = dmv_fig1()
        if engine_kwargs.pop("replicate", False):
            federation = replicate_federation(federation, 2)
        plan = build_filter_plan(query, federation.representative_names)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(
                {"R1": FaultProfile(outages=(outage,))}, seed=0
            ),
            **engine_kwargs,
        )
        return engine.run(plan)

    def r1_attempts(self, result):
        return [
            attempt
            for span in result.trace.remote_spans
            if span.source == "R1"
            for attempt in span.attempts
        ]

    def test_backoffs_inside_window_keep_failing_until_it_ends(self):
        from repro.runtime.policy import RetryPolicy

        outage = (0.0, 4.0)
        result = self.run_engine(
            outage,
            policy=RetryPolicy(max_retries=10, backoff_base_s=1.0),
        )
        attempts = self.r1_attempts(result)
        # Every attempt that started inside the window failed with
        # OUTAGE; the first attempt at/after its end succeeded.
        for attempt in attempts:
            if attempt.start_s < outage[1]:
                assert attempt.fate is AttemptFate.OUTAGE
            else:
                assert attempt.fate is AttemptFate.OK
                assert not attempt.hedge
        assert sum(1 for a in attempts if a.fate is AttemptFate.OUTAGE) >= 2
        assert result.complete

    def test_backoff_longer_than_window_skips_it_entirely(self):
        from repro.runtime.policy import RetryPolicy

        result = self.run_engine(
            (0.0, 0.5),
            policy=RetryPolicy(max_retries=2, backoff_base_s=5.0),
        )
        attempts = self.r1_attempts(result)
        fates = [a.fate for a in attempts]
        # One failure inside the window, then the 5 s backoff lands the
        # single retry far past it.
        assert fates.count(AttemptFate.OUTAGE) == len(fates) - fates.count(
            AttemptFate.OK
        )
        assert result.complete
        for span in result.trace.remote_spans:
            if span.source == "R1":
                assert span.retries <= 1

    def test_budget_exhausted_inside_window_degrades(self):
        from repro.runtime.policy import RetryPolicy
        from repro.sources.generators import DMV_FIG1_ANSWER

        result = self.run_engine(
            (0.0, 1e6),
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.5),
        )
        assert not result.complete
        assert result.items <= DMV_FIG1_ANSWER
        assert all(
            a.fate is AttemptFate.OUTAGE for a in self.r1_attempts(result)
        )

    def test_hedge_rides_out_outage_via_mirror(self):
        from repro.runtime.policy import RetryPolicy
        from repro.sources.generators import DMV_FIG1_ANSWER

        outage_end = 1e6
        result = self.run_engine(
            (0.0, outage_end),
            replicate=True,
            policy=RetryPolicy.no_retry(),
            hedge_delay_s=2.0,
        )
        assert result.items == DMV_FIG1_ANSWER
        assert result.complete
        assert result.makespan_s < outage_end
        assert result.trace.recovered_steps

    def test_jittered_backoff_with_outage_is_deterministic(self):
        from repro.runtime.policy import RetryPolicy

        runs = [
            self.run_engine(
                (0.0, 3.0),
                policy=RetryPolicy(
                    max_retries=8, backoff_base_s=0.7, backoff_jitter=0.5
                ),
            )
            for __ in range(2)
        ]
        assert runs[0].trace == runs[1].trace
        assert runs[0].complete
