"""Availability-model math: hand-computed expectations and properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.estimates import SizeEstimator
from repro.errors import CostModelError
from repro.plans.builder import build_filter_plan
from repro.runtime.availability import (
    AvailabilityModel,
    ObservedAvailability,
    expected_completeness,
)
from repro.runtime.faults import FaultInjector, FaultProfile
from repro.runtime.health import HealthRegistry
from repro.runtime.policy import RetryPolicy
from repro.sources.generators import dmv_fig1, replicate_federation
from repro.sources.statistics import ExactStatistics


def estimator_for(federation):
    return SizeEstimator(ExactStatistics(federation), federation.source_names)


def hand_expected(query, source_groups, estimator, p_of):
    """Independent reimplementation of the closed-form expectation.

    ``source_groups`` maps each planned channel to the members whose
    availability backs it; match fractions are read per group through
    its first member (mirrors hold identical rows).
    """
    overall = 1.0
    for condition in query.conditions:
        reachable = 1.0
        for members in source_groups:
            reachable *= 1.0 - estimator.match_fraction(condition, members[0])
        reachable = 1.0 - reachable
        miss = 1.0
        for members in source_groups:
            down = 1.0
            for member in members:
                down *= 1.0 - p_of(member)
            up = 1.0 - down
            miss *= 1.0 - up * estimator.match_fraction(condition, members[0])
        overall *= min(1.0, (1.0 - miss) / reachable)
    return overall


class TestModelMath:
    def test_retry_folding(self):
        model = AvailabilityModel({"R1": 0.5}, retries=2)
        assert model.p_attempt("R1") == 0.5
        assert model.p_success("R1") == pytest.approx(1 - 0.5**3)
        assert model.p_success("unlisted") == 1.0

    def test_from_faults_transients_fail_attempts(self):
        faults = FaultInjector(FaultProfile.flaky(0.3), seed=0)
        model = AvailabilityModel.from_faults(
            faults, RetryPolicy(max_retries=1), ["R1"]
        )
        assert model.p_attempt("R1") == pytest.approx(0.7)
        assert model.p_success("R1") == pytest.approx(1 - 0.3**2)

    def test_from_faults_stall_depends_on_timeout(self):
        profile = FaultProfile(stall_rate=0.5, stall_s=30.0)
        lenient = AvailabilityModel.attempt_success(
            profile, RetryPolicy(timeout_s=None)
        )
        strict = AvailabilityModel.attempt_success(
            profile, RetryPolicy(timeout_s=10.0)
        )
        assert lenient == pytest.approx(1.0)  # the hang clears eventually
        assert strict == pytest.approx(0.5)  # timeout cuts the stall off

    def test_observed_shrinks_toward_prior(self):
        health = HealthRegistry()
        model = ObservedAvailability(
            health, prior=AvailabilityModel(default=0.8), prior_weight=4.0
        )
        assert model.p_attempt("R1") == pytest.approx(0.8)  # no samples yet
        for __ in range(4):
            health.record("R1", now_s=0.0, ok=False, duration_s=1.0)
        # (4 * 0.8 + 0) / (4 + 4)
        assert model.p_attempt("R1") == pytest.approx(0.4)

    @pytest.mark.parametrize("bad", [-0.1, 1.5, float("nan")])
    def test_bad_probability_rejected(self, bad):
        with pytest.raises(CostModelError):
            AvailabilityModel({"R1": bad})


class TestHandComputedCompleteness:
    """The 2-condition / 3-source case, worked by hand."""

    def test_perfect_availability_is_complete(self):
        federation, query = dmv_fig1()
        plan = build_filter_plan(query, federation.source_names)
        estimate = expected_completeness(
            plan, federation, estimator_for(federation),
            AvailabilityModel.perfect(),
        )
        assert estimate.overall == pytest.approx(1.0)

    def test_no_replicas_matches_hand_formula(self):
        federation, query = dmv_fig1()
        estimator = estimator_for(federation)
        plan = build_filter_plan(query, federation.source_names)
        p = {"R1": 0.5, "R2": 0.8, "R3": 0.9}
        model = AvailabilityModel(p)
        estimate = expected_completeness(plan, federation, estimator, model)
        expected = hand_expected(
            query, [("R1",), ("R2",), ("R3",)], estimator, p.get
        )
        assert estimate.overall == pytest.approx(expected)
        assert 0.0 < estimate.overall < 1.0
        assert len(estimate.per_condition) == 2

    def test_replicas_with_failover_match_hand_formula(self):
        federation, query = dmv_fig1()
        federation = replicate_federation(federation, 2)
        estimator = estimator_for(federation)
        plan = build_filter_plan(query, federation.representative_names)
        p = {
            "R1": 0.5, "R1~1": 0.6,
            "R2": 0.8, "R2~1": 0.3,
            "R3": 0.9, "R3~1": 0.9,
        }
        model = AvailabilityModel(p)
        solo = expected_completeness(plan, federation, estimator, model)
        paired = expected_completeness(
            plan, federation, estimator, model, failover=True
        )
        groups_solo = [("R1",), ("R2",), ("R3",)]
        groups_paired = [("R1", "R1~1"), ("R2", "R2~1"), ("R3", "R3~1")]
        assert solo.overall == pytest.approx(
            hand_expected(query, groups_solo, estimator, p.get)
        )
        assert paired.overall == pytest.approx(
            hand_expected(query, groups_paired, estimator, p.get)
        )
        assert paired.overall > solo.overall

    def test_dual_path_plan_counts_both_members(self):
        # Planning the mirror as real work equals failover credit.
        federation, query = dmv_fig1()
        federation = replicate_federation(federation, 2)
        estimator = estimator_for(federation)
        model = AvailabilityModel(default=0.7)
        dual = build_filter_plan(query, federation.source_names)
        reps = build_filter_plan(query, federation.representative_names)
        planned_both = expected_completeness(
            dual, federation, estimator, model
        )
        failover = expected_completeness(
            reps, federation, estimator, model, failover=True
        )
        assert planned_both.overall == pytest.approx(failover.overall)


probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


class TestReplicaMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(
        base_p=st.tuples(probabilities, probabilities, probabilities),
        mirror_p=st.tuples(probabilities, probabilities, probabilities),
        extra_p=probabilities,
    )
    def test_adding_a_replica_never_decreases_completeness(
        self, base_p, mirror_p, extra_p
    ):
        federation, query = dmv_fig1()
        two = replicate_federation(federation, 2)
        three = replicate_federation(federation, 3)
        plan = build_filter_plan(query, two.representative_names)
        names = ("R1", "R2", "R3")
        attempt_p = {n: p for n, p in zip(names, base_p)}
        attempt_p.update(
            {f"{n}~1": p for n, p in zip(names, mirror_p)}
        )
        with_two = expected_completeness(
            plan, two, estimator_for(two),
            AvailabilityModel(attempt_p), failover=True,
        )
        attempt_p.update({f"{n}~2": extra_p for n in names})
        with_three = expected_completeness(
            plan, three, estimator_for(three),
            AvailabilityModel(attempt_p), failover=True,
        )
        assert with_three.overall >= with_two.overall - 1e-12
