"""Unit tests for per-source health tracking and circuit breakers."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.runtime.health import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HealthRegistry,
    SourceHealth,
)


def make_breaker(**kwargs) -> CircuitBreaker:
    config = BreakerConfig(**kwargs)
    return CircuitBreaker(config, SourceHealth(config.window))


class TestBreakerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"window": 0},
            {"min_volume": -1},
            {"half_open_probes": 0},
            {"failure_rate_to_open": 0.0},
            {"failure_rate_to_open": 1.5},
            {"cooldown_s": -1.0},
            {"cooldown_s": float("inf")},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(CostModelError):
            BreakerConfig(**kwargs)

    def test_presets_valid(self):
        assert BreakerConfig.default().failure_threshold == 3
        aggressive = BreakerConfig.aggressive()
        assert aggressive.failure_threshold == 2
        assert aggressive.cooldown_s == 5.0


class TestSourceHealth:
    def test_rolling_window_statistics(self):
        health = SourceHealth(window=3)
        for ok in (False, False, True, True):
            health.record(ok, 1.0)
        # Window holds the last 3: False, True, True.
        assert health.volume == 3
        assert health.failure_rate == pytest.approx(1 / 3)
        assert health.attempts == 4
        assert health.failures == 2
        assert health.busy_s == pytest.approx(4.0)

    def test_empty_window_rates_are_zero(self):
        health = SourceHealth()
        assert health.failure_rate == 0.0
        assert health.mean_latency_s == 0.0

    def test_mean_latency(self):
        health = SourceHealth(window=10)
        health.record(True, 1.0)
        health.record(True, 3.0)
        assert health.mean_latency_s == pytest.approx(2.0)


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures(self):
        breaker = make_breaker(failure_threshold=3)
        for i in range(2):
            breaker.record_failure(float(i), 0.1)
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2.0, 0.1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1

    def test_success_resets_consecutive_count(self):
        breaker = make_breaker(failure_threshold=2, min_volume=100)
        breaker.record_failure(0.0, 0.1)
        breaker.record_success(1.0, 0.1)
        breaker.record_failure(2.0, 0.1)
        assert breaker.state is BreakerState.CLOSED

    def test_trips_on_windowed_failure_rate(self):
        breaker = make_breaker(
            failure_threshold=100,
            failure_rate_to_open=0.5,
            window=10,
            min_volume=4,
        )
        # Alternate so consecutive failures never accumulate.
        breaker.record_failure(0.0, 0.1)
        breaker.record_success(1.0, 0.1)
        breaker.record_failure(2.0, 0.1)
        assert breaker.state is BreakerState.CLOSED  # volume 3 < min 4
        breaker.record_failure(3.0, 0.1)
        assert breaker.state is BreakerState.OPEN  # rate 3/4 >= 0.5

    def test_open_blocks_until_cooldown_then_half_opens(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure(5.0, 0.1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.reopens_at_s == pytest.approx(15.0)
        assert not breaker.allow(14.9)
        assert breaker.allow(15.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_limits_probes(self):
        breaker = make_breaker(
            failure_threshold=1, cooldown_s=0.0, half_open_probes=1
        )
        breaker.record_failure(0.0, 0.1)
        assert breaker.allow(1.0)  # the one probe
        assert not breaker.allow(1.0)  # second concurrent probe refused
        assert breaker.reopens_at_s is None  # not OPEN: no wake time

    def test_probe_success_closes(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=0.0)
        breaker.record_failure(0.0, 0.1)
        assert breaker.allow(1.0)
        breaker.record_success(2.0, 0.1)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(2.0)

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = make_breaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure(0.0, 0.1)
        assert breaker.allow(10.0)
        breaker.record_failure(11.0, 0.1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.reopens_at_s == pytest.approx(21.0)
        assert breaker.times_opened == 2

    def test_abandon_returns_probe_slot(self):
        breaker = make_breaker(
            failure_threshold=1, cooldown_s=0.0, half_open_probes=1
        )
        breaker.record_failure(0.0, 0.1)
        assert breaker.allow(1.0)
        breaker.abandon()  # the probe was cancelled, not answered
        assert breaker.allow(1.0)  # slot is available again


class TestHealthRegistry:
    def test_disabled_registry_tracks_but_always_allows(self):
        registry = HealthRegistry()
        assert not registry.enabled
        for __ in range(10):
            registry.record("R1", 0.0, ok=False, duration_s=0.1)
        assert registry.allow("R1", 0.0)
        assert registry.state_of("R1") is BreakerState.CLOSED
        assert registry.health_of("R1").failures == 10

    def test_enabled_registry_trips_and_reroutes(self):
        registry = HealthRegistry(BreakerConfig(failure_threshold=2))
        registry.record("R1", 0.0, ok=False, duration_s=0.1)
        registry.record("R1", 1.0, ok=False, duration_s=0.1)
        assert registry.state_of("R1") is BreakerState.OPEN
        assert not registry.allow("R1", 1.0)
        assert registry.allow("R2", 1.0)  # other sources unaffected
        assert registry.reopens_at("R1") == pytest.approx(
            1.0 + BreakerConfig().cooldown_s
        )

    def test_report_lists_sources_and_states(self):
        registry = HealthRegistry(BreakerConfig(failure_threshold=1))
        registry.record("R1", 0.0, ok=False, duration_s=0.1)
        registry.record("R2", 0.0, ok=True, duration_s=0.1)
        report = registry.report()
        assert "R1" in report and "R2" in report
        assert "open" in report


class TestSnapshot:
    def test_snapshot_exposes_per_source_health(self):
        registry = HealthRegistry(BreakerConfig(failure_threshold=2))
        registry.record("R1", 0.0, ok=False, duration_s=0.1)
        registry.record("R1", 1.0, ok=False, duration_s=0.3)
        registry.record("R2", 0.0, ok=True, duration_s=0.2)
        snapshot = registry.snapshot()
        assert sorted(snapshot) == ["R1", "R2"]
        r1 = snapshot["R1"]
        assert r1["attempts"] == 2
        assert r1["failures"] == 2
        assert r1["successes"] == 0
        assert r1["failure_rate"] == pytest.approx(1.0)
        assert r1["busy_s"] == pytest.approx(0.4)
        assert r1["state"] == "open"
        assert r1["times_opened"] == 1
        r2 = snapshot["R2"]
        assert r2["failure_rate"] == pytest.approx(0.0)
        assert r2["state"] == "closed"
        assert r2["times_opened"] == 0

    def test_disabled_breaker_reads_closed(self):
        registry = HealthRegistry()
        registry.record("R1", 0.0, ok=False, duration_s=0.1)
        snapshot = registry.snapshot()
        assert snapshot["R1"]["state"] == "closed"
        assert snapshot["R1"]["times_opened"] == 0


class TestTransitionObserver:
    def test_observer_sees_every_transition(self):
        seen = []
        registry = HealthRegistry(
            BreakerConfig(failure_threshold=1, cooldown_s=5.0)
        )
        registry.observer = lambda now_s, source, old, new: seen.append(
            (now_s, source, old, new)
        )
        registry.record("R1", 0.0, ok=False, duration_s=0.1)  # trips
        assert registry.allow("R1", 6.0)  # cooldown over -> half-open
        registry.record("R1", 6.5, ok=True, duration_s=0.1)  # closes
        assert seen == [
            (0.0, "R1", "closed", "open"),
            (6.0, "R1", "open", "half-open"),
            (6.5, "R1", "half-open", "closed"),
        ]

    def test_observer_attachable_after_breaker_exists(self):
        registry = HealthRegistry(BreakerConfig(failure_threshold=1))
        assert registry.breaker_of("R1") is not None
        seen = []
        registry.observer = lambda *args: seen.append(args)
        registry.record("R1", 0.0, ok=False, duration_s=0.1)
        assert len(seen) == 1


class TestQuarantine:
    """Registry-level data-quality quarantine."""

    def registry(self, **kwargs) -> HealthRegistry:
        from repro.runtime.health import QuarantineConfig

        return HealthRegistry(None, QuarantineConfig(**kwargs))

    def taint(self, registry, name, count, now_s=0.0):
        for __ in range(count):
            registry.record_quality(
                name, now_s, clean=False, delivered=4, kept=2
            )

    def test_config_validation(self):
        from repro.runtime.health import QuarantineConfig

        for kwargs in (
            {"quality_threshold": 0.0},
            {"quality_threshold": 1.5},
            {"min_volume": 0},
            {"cooldown_s": -1.0},
            {"prior_weight": float("nan")},
        ):
            with pytest.raises(CostModelError):
                QuarantineConfig(**kwargs)

    def test_clean_answers_never_quarantine(self):
        registry = self.registry()
        for __ in range(20):
            registry.record_quality(
                "R1", 0.0, clean=True, delivered=4, kept=4
            )
        assert registry.quarantined_names() == ()
        assert registry.quality_score("R1") == 1.0

    def test_persistent_taint_trips_after_min_volume(self):
        registry = self.registry(min_volume=3)
        self.taint(registry, "R1", 2)
        assert registry.quarantined_names() == ()  # volume too low
        self.taint(registry, "R1", 1)
        assert registry.quarantined_names() == ("R1",)
        assert registry.state_of("R1") is BreakerState.QUARANTINED

    def test_prior_shields_a_cold_source(self):
        # One bad answer against a prior of two clean pseudo-answers
        # keeps the score at 2/3 >= a 0.6 threshold.
        registry = self.registry(
            min_volume=1, prior_weight=2.0, quality_threshold=0.6
        )
        self.taint(registry, "R1", 1)
        assert registry.quarantined_names() == ()
        self.taint(registry, "R1", 1)  # 2/4 = 0.5 < 0.6
        assert registry.quarantined_names() == ("R1",)

    def test_sticky_quarantine_never_lifts(self):
        import math

        registry = self.registry(cooldown_s=None)
        self.taint(registry, "R1", 5)
        assert registry.quarantine_lifts_at("R1") == math.inf
        assert not registry.allow("R1", 1e12)

    def test_cooldown_releases_and_rejudges_afresh(self):
        registry = self.registry(cooldown_s=30.0, min_volume=3)
        self.taint(registry, "R1", 5, now_s=0.0)
        assert not registry.allow("R1", 10.0)
        assert registry.quarantine_lifts_at("R1") == 30.0
        assert registry.allow("R1", 30.0)
        assert registry.quarantined_names() == ()
        # Released: judged on post-release volume, not history.
        quality = registry.quality_of("R1")
        assert quality.volume == 0
        assert registry.quality_score("R1") == 1.0
        assert quality.times_quarantined == 1

    def test_quality_observer_sees_enter_and_exit(self):
        registry = self.registry(cooldown_s=10.0, min_volume=3)
        seen = []
        registry.quality_observer = (
            lambda now, name, action, score, answers: seen.append(
                (now, name, action)
            )
        )
        self.taint(registry, "R1", 4, now_s=1.0)
        registry.allow("R1", 20.0)
        assert [entry[2] for entry in seen] == ["enter", "exit"]
        assert seen[0][1] == "R1"

    def test_snapshot_and_report_show_quality(self):
        registry = self.registry()
        self.taint(registry, "R1", 4)
        snapshot = registry.snapshot()["R1"]
        assert snapshot["state"] == "quarantined"
        report = registry.report()
        assert "quarantined" in report
