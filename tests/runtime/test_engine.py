"""Unit tests for the discrete-event concurrent engine."""

from __future__ import annotations

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.errors import ExecutionError
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.mediator.schedule import response_time
from repro.optimize.sj import SJOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.plans.builder import build_filter_plan
from repro.plans.operations import (
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    SelectionOp,
    UnionOp,
)
from repro.plans.plan import Plan
from repro.runtime.engine import RuntimeEngine
from repro.runtime.faults import AttemptFate, FaultInjector, FaultProfile
from repro.runtime.policy import OnExhaust, RetryPolicy
from repro.runtime.trace import OpStatus
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    SyntheticConfig,
    build_synthetic,
    dmv_fig1,
    synthetic_query,
)
from repro.sources.remote import FailureInjector
from repro.sources.statistics import ExactStatistics


@pytest.fixture
def dmv_kit():
    federation, query = dmv_fig1()
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    return federation, query, estimator


@pytest.fixture
def synthetic_kit():
    config = SyntheticConfig(
        n_sources=5,
        n_entities=150,
        coverage=(0.3, 0.6),
        overhead_range=(5.0, 20.0),
        receive_range=(1.0, 3.0),
        seed=31,
    )
    federation = build_synthetic(config)
    query = synthetic_query(config, m=3, seed=17)
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    return federation, query, estimator


def plans_for(federation, query, estimator):
    cost_model = ChargeCostModel.for_federation(federation, estimator)
    names = federation.source_names
    return {
        "FILTER": build_filter_plan(query, names),
        "SJ": SJOptimizer().optimize(query, names, cost_model, estimator).plan,
        "SJA": SJAOptimizer().optimize(query, names, cost_model, estimator).plan,
    }


class TestZeroFaultCrossValidation:
    """The acceptance criterion: simulated == predicted under zero faults."""

    @pytest.mark.parametrize("kit_name", ["dmv_kit", "synthetic_kit"])
    def test_makespan_matches_schedule(self, kit_name, request):
        federation, query, estimator = request.getfixturevalue(kit_name)
        expected = reference_answer(federation, query)
        engine = RuntimeEngine(federation)
        for label, plan in plans_for(federation, query, estimator).items():
            federation.reset_traffic()
            predicted = response_time(plan, Executor(federation).execute(plan))
            federation.reset_traffic()
            simulated = engine.run(plan)
            assert simulated.makespan_s == pytest.approx(
                predicted.makespan_s, abs=1e-12
            ), f"{label} plan diverged"
            assert simulated.items == expected, f"{label} wrong answer"
            assert simulated.complete

    def test_same_cost_and_messages_as_sequential(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        federation.reset_traffic()
        sequential = Executor(federation).execute(plan)
        federation.reset_traffic()
        concurrent = RuntimeEngine(federation).run(plan)
        assert concurrent.trace.total_cost == pytest.approx(
            sequential.total_cost
        )
        assert concurrent.trace.total_messages == sequential.total_messages

    def test_same_source_ops_never_overlap(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        result = RuntimeEngine(federation).run(plan)
        for spans in result.trace.by_source().values():
            ordered = sorted(spans, key=lambda s: s.started_s)
            for earlier, later in zip(ordered, ordered[1:]):
                assert later.started_s >= earlier.finished_s - 1e-12

    def test_different_sources_overlap(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        result = RuntimeEngine(federation).run(plan)
        first_finish = min(s.finished_s for s in result.trace.remote_spans)
        overlapping = [
            s for s in result.trace.remote_spans if s.started_s < first_finish
        ]
        assert len(overlapping) == len(federation.source_names)


class TestRetries:
    def test_transient_failures_retried_to_success(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(FaultProfile.flaky(0.5), seed=5),
            policy=RetryPolicy(max_retries=8, backoff_base_s=0.05),
        )
        result = engine.run(plan)
        assert result.items == DMV_FIG1_ANSWER
        assert result.trace.total_retries > 0
        assert result.complete

    def test_backoff_gap_between_attempts(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        policy = RetryPolicy(max_retries=8, backoff_base_s=0.25)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(FaultProfile.flaky(0.5), seed=5),
            policy=policy,
        )
        result = engine.run(plan)
        retried = [s for s in result.trace.remote_spans if s.retries]
        assert retried
        for span in retried:
            for a, b in zip(span.attempts, span.attempts[1:]):
                gap = b.start_s - a.end_s
                assert gap >= policy.backoff_s(a.attempt) - 1e-12

    def test_failed_attempts_are_charged(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        federation.reset_traffic()
        clean_cost = RuntimeEngine(federation).run(plan).trace.total_cost
        federation.reset_traffic()
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(FaultProfile.flaky(0.5), seed=5),
            policy=RetryPolicy(max_retries=8, backoff_base_s=0.05),
        )
        faulty = engine.run(plan)
        assert faulty.trace.total_retries > 0
        assert faulty.trace.total_cost > clean_cost

    def test_legacy_failure_injector_is_a_transient(self, dmv_kit):
        federation, query, __ = dmv_kit
        federation.source("R1").failure = FailureInjector(
            failure_rate=1.0, seed=0, max_failures=2
        )
        try:
            plan = build_filter_plan(query, federation.source_names)
            result = RuntimeEngine(federation).run(plan)
        finally:
            federation.source("R1").failure = None
        assert result.items == DMV_FIG1_ANSWER
        fates = [
            a.fate
            for s in result.trace.remote_spans
            for a in s.attempts
        ]
        assert fates.count(AttemptFate.TRANSIENT) == 2


class TestDegradationAndFailure:
    def test_skip_degrades_to_partial_answer(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(
                {"R1": FaultProfile.flaky(1.0)}, seed=0
            ),
            policy=RetryPolicy.no_retry(),
        )
        result = engine.run(plan)
        assert not result.complete
        assert result.degraded_steps
        # R1's ops degraded to empty sets: subset of the truth, never more.
        assert result.items <= DMV_FIG1_ANSWER

    def test_fail_mode_raises(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(FaultProfile.flaky(1.0), seed=0),
            policy=RetryPolicy.no_retry(on_exhaust=OnExhaust.FAIL),
        )
        with pytest.raises(ExecutionError, match="failed after 0 retries"):
            engine.run(plan)

    def test_timeout_cuts_off_stalls(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(
                FaultProfile(stall_rate=1.0, stall_s=60.0), seed=0
            ),
            policy=RetryPolicy(
                max_retries=0, timeout_s=2.0, on_exhaust=OnExhaust.SKIP
            ),
        )
        result = engine.run(plan)
        fates = {
            a.fate for s in result.trace.remote_spans for a in s.attempts
        }
        assert fates == {AttemptFate.TIMEOUT}
        for span in result.trace.remote_spans:
            assert span.attempts[-1].duration_s == pytest.approx(2.0)

    def test_outage_window_fails_fast_then_recovers(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(
                {"R1": FaultProfile(outages=((0.0, 5.0),))}, seed=0
            ),
            policy=RetryPolicy(max_retries=10, backoff_base_s=2.0),
        )
        result = engine.run(plan)
        assert result.items == DMV_FIG1_ANSWER
        outage_fates = [
            a.fate
            for s in result.trace.remote_spans
            if s.source == "R1"
            for a in s.attempts
        ]
        assert AttemptFate.OUTAGE in outage_fates
        assert outage_fates[-1] is AttemptFate.OK

    def test_degraded_load_yields_empty_relation(self, dmv_kit):
        federation, query, __ = dmv_kit
        c1, c2 = query.conditions
        plan = Plan(
            [
                LoadOp("T1", "R1"),
                LocalSelectionOp("A", c1, "T1"),
                LocalSelectionOp("B", c2, "T1"),
                IntersectOp("X", ("A", "B")),
                SelectionOp("Y", c1, "R2"),
                UnionOp("Z", ("X", "Y")),
            ],
            result="Z",
        )
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector({"R1": FaultProfile.flaky(1.0)}, seed=0),
            policy=RetryPolicy.no_retry(),
        )
        result = engine.run(plan)
        load_span = result.trace.spans[0]
        assert load_span.status is OpStatus.DEGRADED
        assert load_span.output_size == 0
        # R2's selection still contributes its c1 matches.
        assert result.items == frozenset({"T21"})


class TestDeterminismAndProjection:
    def test_identical_runs_replay_exactly(self, synthetic_kit):
        federation, query, estimator = synthetic_kit
        plan = plans_for(federation, query, estimator)["SJA"]

        def run():
            federation.reset_traffic()
            engine = RuntimeEngine(
                federation,
                faults=FaultInjector(FaultProfile.flaky(0.3), seed=99),
                policy=RetryPolicy(max_retries=3, backoff_base_s=0.1),
            )
            return engine.run(plan)

        first, second = run(), run()
        assert first.items == second.items
        assert first.makespan_s == second.makespan_s
        assert first.trace.spans == second.trace.spans

    def test_to_execution_result_projection(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        result = RuntimeEngine(federation).run(plan)
        projected = result.to_execution_result()
        assert projected.items == result.items
        assert len(projected.steps) == len(plan)
        assert projected.total_cost == pytest.approx(result.trace.total_cost)
        assert projected.total_messages == result.trace.total_messages

    def test_result_repr_and_summary(self, dmv_kit):
        federation, query, __ = dmv_kit
        plan = build_filter_plan(query, federation.source_names)
        result = RuntimeEngine(federation).run(plan)
        assert "2 items" in repr(result)
        assert "makespan" in result.summary()
