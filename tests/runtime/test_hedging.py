"""Unit tests for hedged dispatch and breaker rerouting in the engine."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.mediator.executor import Executor
from repro.mediator.schedule import response_time
from repro.plans.builder import build_filter_plan
from repro.runtime.engine import RuntimeEngine
from repro.runtime.faults import AttemptFate, FaultInjector, FaultProfile
from repro.runtime.health import BreakerConfig, BreakerState
from repro.runtime.policy import RetryPolicy
from repro.runtime.trace import OpStatus
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    dmv_fig1,
    replicate_federation,
)


@pytest.fixture
def replicated():
    federation, query = dmv_fig1()
    return replicate_federation(federation, 2), query


def representative_plan(federation, query):
    return build_filter_plan(query, federation.representative_names)


class TestHedgeOnFailure:
    def test_dead_source_recovered_via_mirror(self, replicated):
        federation, query = replicated
        plan = representative_plan(federation, query)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector({"R1": FaultProfile.flaky(1.0)}, seed=0),
            policy=RetryPolicy.no_retry(),
            hedge_delay_s=5.0,
        )
        result = engine.run(plan)
        assert result.items == DMV_FIG1_ANSWER
        assert result.complete
        assert result.recovered_steps
        recovered = [
            s for s in result.trace.spans if s.status is OpStatus.RECOVERED
        ]
        assert recovered
        for span in recovered:
            assert span.served_by == "R1~1"
            assert span.source == "R1"  # planned source is unchanged

    def test_hedge_does_not_consume_retry_budget(self, replicated):
        federation, query = replicated
        plan = representative_plan(federation, query)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector({"R1": FaultProfile.flaky(1.0)}, seed=0),
            policy=RetryPolicy.no_retry(),
            hedge_delay_s=5.0,
        )
        result = engine.run(plan)
        for span in result.trace.spans:
            if span.status is OpStatus.RECOVERED:
                assert span.retries == 0
                assert any(a.hedge for a in span.attempts)

    def test_without_substitutes_hedging_degrades_like_skip(self):
        federation, query = dmv_fig1()  # no replicas, no containment
        plan = build_filter_plan(query, federation.source_names)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector({"R1": FaultProfile.flaky(1.0)}, seed=0),
            policy=RetryPolicy.no_retry(),
            hedge_delay_s=1.0,
        )
        result = engine.run(plan)
        assert not result.complete
        assert result.trace.hedge_attempts == 0
        assert result.items <= DMV_FIG1_ANSWER


class TestHedgeOnDelay:
    def test_slow_primary_loses_race_and_is_cancelled(self, replicated):
        federation, query = replicated
        plan = representative_plan(federation, query)
        stall = FaultProfile(stall_rate=1.0, stall_s=60.0)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector({"R1": stall}, seed=0),
            policy=RetryPolicy.no_retry(),
            hedge_delay_s=1.0,
        )
        result = engine.run(plan)
        assert result.items == DMV_FIG1_ANSWER
        assert result.complete
        assert result.makespan_s < 60.0  # did not wait out the stall
        fates = [
            a.fate
            for s in result.trace.remote_spans
            for a in s.attempts
        ]
        assert AttemptFate.CANCELLED in fates

    def test_cancelled_losers_stay_charged(self, replicated):
        federation, query = replicated
        plan = representative_plan(federation, query)
        federation.reset_traffic()
        clean_cost = RuntimeEngine(federation).run(plan).trace.total_cost
        federation.reset_traffic()
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(
                {"R1": FaultProfile(stall_rate=1.0, stall_s=60.0)}, seed=0
            ),
            policy=RetryPolicy.no_retry(),
            hedge_delay_s=1.0,
        )
        hedged = engine.run(plan)
        assert hedged.trace.hedge_attempts > 0
        # The cancelled attempt's bytes were already on the wire.
        assert hedged.trace.total_cost > clean_cost

    def test_large_delay_never_hedges_under_zero_faults(self, replicated):
        federation, query = replicated
        plan = representative_plan(federation, query)
        baseline = RuntimeEngine(federation).run(plan)
        hedging = RuntimeEngine(federation, hedge_delay_s=1e6).run(plan)
        assert hedging.trace.hedge_attempts == 0
        assert hedging.makespan_s == pytest.approx(baseline.makespan_s)
        assert hedging.items == baseline.items

    def test_zero_fault_cross_validation_with_hedging_enabled(
        self, replicated
    ):
        # Hedging may only fire when an attempt outlives the delay; with
        # zero faults and a generous delay the static schedule holds.
        federation, query = replicated
        plan = representative_plan(federation, query)
        predicted = response_time(plan, Executor(federation).execute(plan))
        federation.reset_traffic()
        engine = RuntimeEngine(
            federation, hedge_delay_s=1e6, breaker=BreakerConfig.default()
        )
        simulated = engine.run(plan)
        assert simulated.makespan_s == pytest.approx(
            predicted.makespan_s, abs=1e-12
        )
        assert simulated.items == DMV_FIG1_ANSWER


class TestBreakerRerouting:
    def test_open_breaker_reroutes_to_mirror(self, replicated):
        federation, query = replicated
        plan = representative_plan(federation, query)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector({"R1": FaultProfile.flaky(1.0)}, seed=0),
            policy=RetryPolicy.no_retry(),
            breaker=BreakerConfig(failure_threshold=1, cooldown_s=1e6),
        )
        first = engine.run(plan)
        assert engine.health.state_of("R1") is BreakerState.OPEN
        # Health persists on the engine: a second run of the same plan
        # never touches R1 — every R1 op is rerouted and recovered.
        second = engine.run(plan)
        assert second.items == DMV_FIG1_ANSWER
        assert second.complete
        r1_steps = {
            s.step for s in second.trace.remote_spans if s.source == "R1"
        }
        assert r1_steps == set(second.trace.recovered_steps)
        assert first.items <= second.items

    def test_breaker_counts_opens(self, replicated):
        federation, query = replicated
        plan = representative_plan(federation, query)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector({"R1": FaultProfile.flaky(1.0)}, seed=0),
            policy=RetryPolicy.no_retry(),
            breaker=BreakerConfig(failure_threshold=1, cooldown_s=1e6),
        )
        engine.run(plan)
        assert engine.health.breaker_of("R1").times_opened >= 1
        assert "open" in engine.health.report()


class TestLoserAccounting:
    """Hedge losers must never leak samples into the health registry.

    Regression for a double-finish bug: when a task's retry was parked
    behind an open breaker while its hedge was still racing, a winning
    hedge finished the task but left it on the blocked list — the next
    drain re-launched the *finished* task, and that phantom attempt's
    failure was recorded against the winning source's replica group.
    """

    AUDIT_PROFILE = FaultProfile(
        transient_rate=0.35, stall_rate=0.3, stall_s=40.0
    )
    AUDIT_POLICY = dict(max_retries=2, timeout_s=20.0, backoff_base_s=0.1)

    def run_audited(self, seed):
        federation, query = dmv_fig1()
        federation = replicate_federation(federation, 2)
        plan = representative_plan(federation, query)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(self.AUDIT_PROFILE, seed=seed),
            policy=RetryPolicy(**self.AUDIT_POLICY),
            hedge_delay_s=1.0,
            breaker=BreakerConfig.aggressive(),
        )
        return federation, engine, engine.run(plan)

    def trace_stats(self, result):
        """Per-source (attempts, failures) from non-cancelled spans."""
        stats: dict[str, list[int]] = {}
        for span in result.trace.remote_spans:
            for attempt in span.attempts:
                if attempt.fate is AttemptFate.CANCELLED:
                    continue
                entry = stats.setdefault(attempt.source, [0, 0])
                entry[0] += 1
                entry[1] += attempt.fate.failed
        return stats

    @pytest.mark.parametrize("seed", [8, 11])
    def test_health_matches_trace_exactly(self, seed):
        # Seeds that historically produced a phantom failure against
        # the winning mirror (health said 3a/1f, trace said 2a/0f).
        federation, engine, result = self.run_audited(seed)
        stats = self.trace_stats(result)
        for name in federation.source_names:
            health = engine.health.health_of(name)
            attempts, failures = stats.get(name, (0, 0))
            assert (health.attempts, health.failures) == (
                attempts,
                failures,
            ), name

    @pytest.mark.parametrize("seed", [14, 15])
    def test_blocked_retry_plus_winning_hedge_does_not_crash(self, seed):
        # The same double-finish re-propagated a task's completion,
        # marking a union ready before all inputs existed (seeds that
        # historically raised TypeError deep in union_many).
        __, __, result = self.run_audited(seed)
        assert result.items <= DMV_FIG1_ANSWER

    def test_cancelled_loser_records_no_health_sample(self, replicated):
        # The direct satellite property: a pure stall-loser that is
        # cancelled by a winning hedge contributes zero attempts and
        # zero failures to its source's rolling health window.
        federation, query = replicated
        plan = representative_plan(federation, query)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(
                {"R1": FaultProfile(stall_rate=1.0, stall_s=60.0)}, seed=0
            ),
            policy=RetryPolicy.no_retry(),
            hedge_delay_s=1.0,
        )
        result = engine.run(plan)
        cancelled = [
            a
            for s in result.trace.remote_spans
            for a in s.attempts
            if a.fate is AttemptFate.CANCELLED
        ]
        assert cancelled  # the stalled primaries lost their races
        health = engine.health.health_of("R1")
        assert health.attempts == 0
        assert health.failures == 0


class TestDeterminism:
    def make_engine(self, federation):
        return RuntimeEngine(
            federation,
            faults=FaultInjector(FaultProfile.flaky(0.4), seed=7),
            policy=RetryPolicy(max_retries=2, backoff_jitter=0.5),
            hedge_delay_s=2.0,
            breaker=BreakerConfig.aggressive(),
        )

    def test_same_seed_same_trace(self):
        runs = []
        for __ in range(2):
            federation, query = dmv_fig1()
            federation = replicate_federation(federation, 2)
            plan = representative_plan(federation, query)
            runs.append(self.make_engine(federation).run(plan))
        first, second = runs
        assert first.trace == second.trace
        assert first.items == second.items
        assert first.trace.timeline() == second.trace.timeline()

    def test_different_seed_may_differ_but_stays_sound(self):
        federation, query = dmv_fig1()
        federation = replicate_federation(federation, 2)
        plan = representative_plan(federation, query)
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(FaultProfile.flaky(0.4), seed=8),
            policy=RetryPolicy(max_retries=2),
            hedge_delay_s=2.0,
        )
        result = engine.run(plan)
        assert result.items <= DMV_FIG1_ANSWER  # never spurious


class TestValidation:
    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan")])
    def test_bad_hedge_delay_rejected(self, bad):
        federation, __ = dmv_fig1()
        with pytest.raises(CostModelError):
            RuntimeEngine(federation, hedge_delay_s=bad)
