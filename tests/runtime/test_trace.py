"""Unit tests for runtime trace structures and rendering."""

from __future__ import annotations

import pytest

from repro.plans.builder import build_filter_plan
from repro.runtime.engine import RuntimeEngine
from repro.runtime.faults import AttemptFate, FaultInjector, FaultProfile
from repro.runtime.policy import RetryPolicy
from repro.runtime.trace import AttemptSpan, OpStatus
from repro.sources.generators import dmv_fig1


@pytest.fixture
def clean_run():
    federation, query = dmv_fig1()
    plan = build_filter_plan(query, federation.source_names)
    return RuntimeEngine(federation).run(plan), plan


@pytest.fixture
def faulty_run():
    federation, query = dmv_fig1()
    plan = build_filter_plan(query, federation.source_names)
    engine = RuntimeEngine(
        federation,
        faults=FaultInjector(FaultProfile.flaky(0.6), seed=5),
        policy=RetryPolicy(max_retries=5, backoff_base_s=0.05),
    )
    return engine.run(plan)


class TestSpans:
    def test_attempt_span_duration(self):
        span = AttemptSpan(
            attempt=1, start_s=1.0, end_s=3.5, fate=AttemptFate.OK,
            cost=10.0, items_sent=0, items_received=5, rows_loaded=0,
            messages=1,
        )
        assert span.duration_s == pytest.approx(2.5)

    def test_clean_run_spans_cover_every_step(self, clean_run):
        result, plan = clean_run
        assert len(result.trace.spans) == len(plan)
        assert [s.step for s in result.trace.spans] == list(
            range(1, len(plan) + 1)
        )
        for span in result.trace.spans:
            assert span.status is OpStatus.OK
            assert span.queued_s <= span.started_s <= span.finished_s

    def test_remote_spans_have_one_attempt_each_when_clean(self, clean_run):
        result, __ = clean_run
        for span in result.trace.remote_spans:
            assert len(span.attempts) == 1
            assert span.retries == 0
            assert span.messages >= 1

    def test_local_spans_are_instantaneous_and_free(self, clean_run):
        result, __ = clean_run
        locals_ = [
            s for s in result.trace.spans if not s.operation.remote
        ]
        assert locals_
        for span in locals_:
            assert span.attempts == ()
            assert span.busy_s == 0.0
            assert span.cost == 0.0


class TestAggregates:
    def test_total_cost_matches_traffic(self):
        federation, query = dmv_fig1()
        plan = build_filter_plan(query, federation.source_names)
        federation.reset_traffic()
        result = RuntimeEngine(federation).run(plan)
        assert result.trace.total_cost == pytest.approx(
            federation.total_traffic_cost()
        )
        assert result.trace.total_messages == federation.total_messages()

    def test_utilization_bounded_by_one(self, clean_run):
        result, __ = clean_run
        for fraction in result.trace.per_source_utilization().values():
            assert 0.0 < fraction <= 1.0 + 1e-12

    def test_by_source_partitions_remote_spans(self, clean_run):
        result, __ = clean_run
        grouped = result.trace.by_source()
        assert sum(len(v) for v in grouped.values()) == len(
            result.trace.remote_spans
        )


class TestRendering:
    def test_timeline_row_per_remote_op(self, clean_run):
        result, __ = clean_run
        lines = result.trace.timeline().splitlines()
        # one per remote op + the makespan footer
        assert len(lines) == len(result.trace.remote_spans) + 1
        assert "makespan" in lines[-1]
        assert all("|" in line for line in lines[:-1])

    def test_timeline_marks_failed_attempts(self, faulty_run):
        assert faulty_run.trace.total_retries > 0
        assert "x" in faulty_run.trace.timeline()

    def test_timeline_fixed_width(self, clean_run):
        result, __ = clean_run
        rows = result.trace.timeline(width=40).splitlines()[:-1]
        assert len({len(row) for row in rows}) == 1

    def test_utilization_report_lists_every_source(self, clean_run):
        result, __ = clean_run
        report = result.trace.utilization_report()
        for name in ("R1", "R2", "R3"):
            assert name in report

    def test_summary_mentions_key_figures(self, clean_run):
        result, __ = clean_run
        summary = result.trace.summary()
        assert "makespan" in summary
        assert "remote ops" in summary
        assert "retries" in summary


class TestEdgeCases:
    """Degenerate traces the renderers must survive: zero-duration
    attempts, overlapping hedge attempts, and traces with no completed
    or no remote operations at all."""

    @staticmethod
    def remote_span(step=1, attempts=(), status=OpStatus.OK, output=0):
        from repro.plans.operations import LoadOp
        from repro.runtime.trace import OpSpan

        starts = [a.start_s for a in attempts] or [0.0]
        ends = [a.end_s for a in attempts] or [0.0]
        return OpSpan(
            step=step,
            operation=LoadOp(target_register=f"T_R{step}", source=f"R{step}"),
            queued_s=min(starts),
            started_s=min(starts),
            finished_s=max(ends),
            attempts=tuple(attempts),
            status=status,
            output_size=output,
        )

    @staticmethod
    def attempt(start, end, fate=AttemptFate.OK, source="", hedge=False):
        return AttemptSpan(
            attempt=1, start_s=start, end_s=end, fate=fate, cost=1.0,
            items_sent=0, items_received=0, rows_loaded=1, messages=1,
            source=source, hedge=hedge,
        )

    def test_zero_duration_attempt_still_visible(self):
        from repro.runtime.trace import RuntimeTrace

        span = self.remote_span(attempts=[self.attempt(1.0, 1.0)])
        trace = RuntimeTrace(spans=(span,), makespan_s=2.0)
        row = trace.timeline(width=20).splitlines()[0]
        assert "#" in row  # a zero-width attempt renders at least 1 cell

    def test_zero_makespan_trace_renders(self):
        from repro.runtime.trace import RuntimeTrace

        span = self.remote_span(attempts=[self.attempt(0.0, 0.0)])
        trace = RuntimeTrace(spans=(span,), makespan_s=0.0)
        assert "#" in trace.timeline()
        assert trace.per_source_utilization() == {"R1": 0.0}
        assert "R1" in trace.utilization_report()

    def test_overlapping_hedge_attempts(self):
        from repro.runtime.trace import RuntimeTrace

        primary = self.attempt(
            0.0, 4.0, fate=AttemptFate.CANCELLED, source="R1"
        )
        hedge = self.attempt(2.0, 3.0, source="R1b", hedge=True)
        span = self.remote_span(
            attempts=[primary, hedge], status=OpStatus.OK, output=3
        )
        trace = RuntimeTrace(spans=(span,), makespan_s=4.0)
        row = trace.timeline(width=8).splitlines()[0]
        assert "c" in row and "#" in row
        # the winning overlapped attempt overwrites the cancelled cells
        assert span.served_by == "R1b"
        assert span.hedged
        busy = trace.busy_by_serving_source()
        assert busy["R1"] == pytest.approx(4.0)
        assert busy["R1b"] == pytest.approx(1.0)
        report = trace.utilization_report()
        assert "R1b" in report

    def test_no_completed_attempts_degraded(self):
        from repro.runtime.trace import RuntimeTrace

        span = self.remote_span(
            attempts=[
                self.attempt(0.0, 1.0, fate=AttemptFate.TIMEOUT),
                self.attempt(1.5, 2.5, fate=AttemptFate.TRANSIENT),
            ],
            status=OpStatus.DEGRADED,
        )
        trace = RuntimeTrace(spans=(span,), makespan_s=3.0)
        timeline = trace.timeline()
        assert "x" in timeline and "DEGRADED" in timeline
        assert "#" not in timeline.splitlines()[0]
        assert span.served_by == "R1"  # falls back to the planned source

    def test_no_remote_operations(self):
        from repro.plans.operations import UnionOp
        from repro.runtime.trace import OpSpan, RuntimeTrace

        local = OpSpan(
            step=1,
            operation=UnionOp(target_register="X1", inputs=("A", "B")),
            queued_s=0.0,
            started_s=0.0,
            finished_s=0.0,
            attempts=(),
            status=OpStatus.OK,
            output_size=2,
        )
        trace = RuntimeTrace(spans=(local,), makespan_s=0.0)
        assert trace.timeline() == "(no remote operations)"
        assert trace.remote_spans == ()
        assert trace.total_cost == 0.0
        assert "0 remote ops" in trace.summary()

    def test_empty_trace(self):
        from repro.runtime.trace import RuntimeTrace

        trace = RuntimeTrace(spans=(), makespan_s=0.0)
        assert trace.timeline() == "(no remote operations)"
        assert trace.utilization_report().splitlines()[0].startswith(
            "source"
        )
        assert trace.per_source_utilization() == {}
