"""Unit tests for plan classification (the Sec. 2.5 taxonomy)."""

from __future__ import annotations

import random

import pytest

from repro.optimize.postopt import apply_difference_pruning
from repro.plans.builder import (
    IntersectPolicy,
    StagedChoice,
    build_filter_plan,
    build_staged_plan,
    uniform_choices,
)
from repro.plans.classify import (
    PlanClass,
    classify,
    is_filter_plan,
    is_semijoin_adaptive_plan,
    is_semijoin_plan,
    is_simple_plan,
)
from repro.plans.operations import (
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan
from repro.plans.space import random_simple_plan
from repro.query.fusion import FusionQuery

SOURCES = ["R1", "R2"]


@pytest.fixture
def query3():
    return FusionQuery.from_strings("L", ["V = 'a'", "V = 'b'", "V = 'c'"])


class TestClassification:
    def test_filter_plan(self, query3):
        plan = build_filter_plan(query3, SOURCES)
        assert classify(plan) is PlanClass.FILTER

    def test_semijoin_plan(self, query3):
        plan = build_staged_plan(
            query3,
            [0, 1, 2],
            uniform_choices(3, 2, [False, True, False]),
            SOURCES,
        )
        assert classify(plan) is PlanClass.SEMIJOIN

    def test_semijoin_adaptive_plan(self, query3):
        choices = [
            [StagedChoice.SELECTION] * 2,
            [StagedChoice.SEMIJOIN, StagedChoice.SELECTION],
            [StagedChoice.SELECTION] * 2,
        ]
        plan = build_staged_plan(query3, [0, 1, 2], choices, SOURCES)
        assert classify(plan) is PlanClass.SEMIJOIN_ADAPTIVE

    def test_pure_semijoin_with_always_policy_still_semijoin(self, query3):
        plan = build_staged_plan(
            query3,
            [0, 1, 2],
            uniform_choices(3, 2, [False, True, True]),
            SOURCES,
            intersect_policy=IntersectPolicy.ALWAYS,
        )
        assert classify(plan) is PlanClass.SEMIJOIN

    def test_simple_but_not_staged(self, query3):
        """A semijoin whose binding set skips a stage is merely simple."""
        c1, c2, c3 = query3.conditions
        plan = Plan(
            [
                SelectionOp("X1_1", c1, "R1"),
                UnionOp("X1", ("X1_1",)),
                SelectionOp("X2_1", c2, "R1"),
                UnionOp("X2", ("X2_1",)),
                SemijoinOp("X3_1", c3, "R1", "X1"),  # binds X1, not X2
                UnionOp("X3", ("X3_1",)),
            ],
            result="X3",
        )
        assert is_simple_plan(plan)
        assert classify(plan) is PlanClass.SIMPLE

    def test_extended_after_difference_pruning(self, query3):
        plan = build_staged_plan(
            query3,
            [0, 1, 2],
            [
                [StagedChoice.SELECTION] * 2,
                [StagedChoice.SELECTION, StagedChoice.SEMIJOIN],
                [StagedChoice.SELECTION] * 2,
            ],
            SOURCES,
        )
        pruned = apply_difference_pruning(plan)
        assert classify(pruned) is PlanClass.EXTENDED


class TestNesting:
    """Filter ⊂ semijoin ⊂ semijoin-adaptive ⊂ simple (Sec. 2.5)."""

    def test_filter_is_also_semijoin_and_adaptive(self, query3):
        plan = build_filter_plan(query3, SOURCES)
        assert is_filter_plan(plan)
        assert is_semijoin_plan(plan)
        assert is_semijoin_adaptive_plan(plan)
        assert is_simple_plan(plan)

    def test_semijoin_is_adaptive_but_not_filter(self, query3):
        plan = build_staged_plan(
            query3,
            [0, 1, 2],
            uniform_choices(3, 2, [False, True, False]),
            SOURCES,
        )
        assert not is_filter_plan(plan)
        assert is_semijoin_plan(plan)
        assert is_semijoin_adaptive_plan(plan)

    def test_adaptive_is_not_semijoin(self, query3):
        choices = [
            [StagedChoice.SELECTION] * 2,
            [StagedChoice.SEMIJOIN, StagedChoice.SELECTION],
            [StagedChoice.SELECTION] * 2,
        ]
        plan = build_staged_plan(query3, [0, 1, 2], choices, SOURCES)
        assert not is_semijoin_plan(plan)
        assert is_semijoin_adaptive_plan(plan)

    def test_sampled_simple_plans_are_simple(self, query3):
        rng = random.Random(0)
        for __ in range(20):
            plan = random_simple_plan(query3, SOURCES, rng)
            assert is_simple_plan(plan)
            assert classify(plan) in (
                PlanClass.FILTER,
                PlanClass.SEMIJOIN,
                PlanClass.SEMIJOIN_ADAPTIVE,
                PlanClass.SIMPLE,
            )
