"""Unit tests for the generic static plan coster."""

from __future__ import annotations

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.costs.model import UniformCostModel
from repro.plans.builder import (
    build_filter_plan,
    build_staged_plan,
    uniform_choices,
)
from repro.plans.cost import estimate_plan_cost
from repro.plans.operations import (
    DifferenceOp,
    LoadOp,
    LocalSelectionOp,
    SelectionOp,
    UnionOp,
)
from repro.plans.plan import Plan
from repro.sources.generators import dmv_fig1
from repro.sources.statistics import ExactStatistics


@pytest.fixture
def kit():
    federation, query = dmv_fig1()
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    model = ChargeCostModel.for_federation(federation, estimator)
    return federation, query, model, estimator


class TestFilterPlanCost:
    def test_total_equals_sum_of_selection_costs(self, kit):
        federation, query, model, estimator = kit
        plan = build_filter_plan(query, federation.source_names)
        breakdown = estimate_plan_cost(plan, model, estimator)
        expected = sum(
            model.sq_cost(condition, source)
            for condition in query.conditions
            for source in federation.source_names
        )
        assert breakdown.total == pytest.approx(expected)
        assert breakdown.remote_total() == pytest.approx(expected)

    def test_local_ops_are_free(self, kit):
        federation, query, model, estimator = kit
        plan = build_filter_plan(query, federation.source_names)
        breakdown = estimate_plan_cost(plan, model, estimator)
        for step in breakdown.steps:
            if not step.operation.remote:
                assert step.cost == 0.0

    def test_by_source_partitions_total(self, kit):
        federation, query, model, estimator = kit
        plan = build_filter_plan(query, federation.source_names)
        breakdown = estimate_plan_cost(plan, model, estimator)
        assert sum(breakdown.by_source().values()) == pytest.approx(
            breakdown.total
        )


class TestSemijoinPlanCost:
    def test_semijoin_stage_uses_prefix_size(self, kit):
        federation, query, model, estimator = kit
        plan = build_staged_plan(
            query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            federation.source_names,
        )
        breakdown = estimate_plan_cost(plan, model, estimator)
        x1 = estimator.union_selection_size(query.conditions[0])
        semijoin_steps = [
            step
            for step in breakdown.steps
            if step.operation.remote and step.operation.kind.value == "sjq"
        ]
        for step in semijoin_steps:
            expected = model.sjq_cost(
                step.operation.condition, step.operation.source, x1
            )
            assert step.cost == pytest.approx(expected)


class TestSizePropagation:
    def test_union_size_never_exceeds_universe(self, kit):
        federation, query, model, estimator = kit
        plan = build_filter_plan(query, federation.source_names)
        breakdown = estimate_plan_cost(plan, model, estimator)
        universe = estimator.statistics.universe_size()
        for step in breakdown.steps:
            assert step.output_size <= universe + 1e-9

    def test_intersection_shrinks(self, kit):
        federation, query, model, estimator = kit
        plan = build_filter_plan(query, federation.source_names)
        breakdown = estimate_plan_cost(plan, model, estimator)
        sizes = {step.operation.target: step.output_size for step in breakdown.steps}
        # final X2 (after intersect) <= X1
        assert sizes["X2"] <= sizes["X1"] + 1e-9

    def test_difference_size_formula(self, kit):
        federation, query, model, estimator = kit
        c1, c2 = query.conditions
        plan = Plan(
            [
                SelectionOp("A", c1, "R1"),
                SelectionOp("B", c2, "R1"),
                DifferenceOp("D", "A", "B"),
                UnionOp("X", ("D",)),
            ],
            result="X",
        )
        breakdown = estimate_plan_cost(plan, model, estimator)
        sizes = {s.operation.target: s.output_size for s in breakdown.steps}
        universe = estimator.statistics.universe_size()
        expected = universe * (sizes["A"] / universe) * (
            1 - sizes["B"] / universe
        )
        assert sizes["D"] == pytest.approx(expected)


class TestExtendedOps:
    def test_load_and_local_selection(self, kit):
        federation, query, model, estimator = kit
        c1 = query.conditions[0]
        plan = Plan(
            [
                LoadOp("T", "R1"),
                LocalSelectionOp("X", c1, "T"),
                UnionOp("ANS", ("X",)),
            ],
            result="ANS",
        )
        breakdown = estimate_plan_cost(plan, model, estimator)
        assert breakdown.total == pytest.approx(model.lq_cost("R1"))
        sizes = {s.operation.target: s.output_size for s in breakdown.steps}
        assert sizes["X"] == pytest.approx(
            estimator.sq_output_size(c1, "R1")
        )

    def test_uniform_model_works_too(self, kit):
        federation, query, __, estimator = kit
        plan = build_filter_plan(query, federation.source_names)
        breakdown = estimate_plan_cost(plan, UniformCostModel(sq=7), estimator)
        assert breakdown.total == pytest.approx(7 * 6)  # m*n selections
