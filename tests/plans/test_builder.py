"""Unit tests for the staged-plan builder, checked against Fig. 2."""

from __future__ import annotations

import pytest

from repro.errors import PlanValidationError
from repro.plans.builder import (
    IntersectPolicy,
    StagedChoice,
    all_selection_choices,
    build_filter_plan,
    build_staged_plan,
    uniform_choices,
)
from repro.plans.operations import OpKind
from repro.query.fusion import FusionQuery

SOURCES = ["R1", "R2"]


@pytest.fixture
def query3():
    """The Fig. 2 query: three conditions, two sources."""
    return FusionQuery.from_strings(
        "L", ["V = 'c1val'", "V = 'c2val'", "V = 'c3val'"]
    )


class TestFilterPlan:
    def test_matches_fig_2a_shape(self, query3):
        """Fig. 2(a): 6 selections, 3 unions, 2 intersections, 11 steps."""
        plan = build_filter_plan(query3, SOURCES)
        counts = plan.count_by_kind()
        assert counts[OpKind.SELECTION] == 6
        assert counts[OpKind.UNION] == 3
        assert counts[OpKind.INTERSECT] == 2
        assert len(plan) == 11
        assert plan.result == "X3"

    def test_step_sequence_matches_fig_2a(self, query3):
        plan = build_filter_plan(query3, SOURCES)
        rendered = [op.render(plan.condition_labels()) for op in plan]
        assert rendered == [
            "X1_1 := sq(c1, R1)",
            "X1_2 := sq(c1, R2)",
            "X1 := X1_1 ∪ X1_2",
            "X2_1 := sq(c2, R1)",
            "X2_2 := sq(c2, R2)",
            "X2 := X2_1 ∪ X2_2",
            "X2 := X1 ∩ X2",
            "X3_1 := sq(c3, R1)",
            "X3_2 := sq(c3, R2)",
            "X3 := X3_1 ∪ X3_2",
            "X3 := X2 ∩ X3",
        ]


class TestSemijoinPlan:
    def test_matches_fig_2b_shape(self, query3):
        """Fig. 2(b): c2 by semijoins, c1/c3 by selections, 10 steps."""
        plan = build_staged_plan(
            query3,
            ordering=[0, 1, 2],
            choices=uniform_choices(3, 2, [False, True, False]),
            source_names=SOURCES,
            intersect_policy=IntersectPolicy.AUTO,
        )
        rendered = [op.render(plan.condition_labels()) for op in plan]
        assert rendered == [
            "X1_1 := sq(c1, R1)",
            "X1_2 := sq(c1, R2)",
            "X1 := X1_1 ∪ X1_2",
            "X2_1 := sjq(c2, R1, X1)",
            "X2_2 := sjq(c2, R2, X1)",
            "X2 := X2_1 ∪ X2_2",
            "X3_1 := sq(c3, R1)",
            "X3_2 := sq(c3, R2)",
            "X3 := X3_1 ∪ X3_2",
            "X3 := X2 ∩ X3",
        ]


class TestSemijoinAdaptivePlan:
    def test_matches_fig_2c_shape(self, query3):
        """Fig. 2(c): c2 mixed (sjq at R1, sq at R2), c3 by selections."""
        choices = [
            [StagedChoice.SELECTION, StagedChoice.SELECTION],
            [StagedChoice.SEMIJOIN, StagedChoice.SELECTION],
            [StagedChoice.SELECTION, StagedChoice.SELECTION],
        ]
        plan = build_staged_plan(
            query3,
            ordering=[0, 1, 2],
            choices=choices,
            source_names=SOURCES,
            intersect_policy=IntersectPolicy.AUTO,
        )
        rendered = [op.render(plan.condition_labels()) for op in plan]
        assert rendered == [
            "X1_1 := sq(c1, R1)",
            "X1_2 := sq(c1, R2)",
            "X1 := X1_1 ∪ X1_2",
            "X2_1 := sjq(c2, R1, X1)",
            "X2_2 := sq(c2, R2)",
            "X2 := X2_1 ∪ X2_2",
            "X2 := X1 ∩ X2",
            "X3_1 := sq(c3, R1)",
            "X3_2 := sq(c3, R2)",
            "X3 := X3_1 ∪ X3_2",
            "X3 := X2 ∩ X3",
        ]
        assert len(plan) == 11


class TestPolicies:
    def test_always_policy_adds_intersect_to_pure_semijoin_stage(self, query3):
        plan = build_staged_plan(
            query3,
            ordering=[0, 1, 2],
            choices=uniform_choices(3, 2, [False, True, True]),
            source_names=SOURCES,
            intersect_policy=IntersectPolicy.ALWAYS,
        )
        assert plan.count_by_kind()[OpKind.INTERSECT] == 2

    def test_auto_policy_omits_intersect_on_pure_semijoin_stage(self, query3):
        plan = build_staged_plan(
            query3,
            ordering=[0, 1, 2],
            choices=uniform_choices(3, 2, [False, True, True]),
            source_names=SOURCES,
            intersect_policy=IntersectPolicy.AUTO,
        )
        assert plan.count_by_kind().get(OpKind.INTERSECT, 0) == 0


class TestOrdering:
    def test_ordering_permutes_conditions(self, query3):
        plan = build_staged_plan(
            query3,
            ordering=[2, 0, 1],
            choices=all_selection_choices(3, 2),
            source_names=SOURCES,
        )
        first_remote = plan.remote_operations[0]
        assert first_remote.condition == query3.conditions[2]

    def test_stage_annotations(self, query3):
        plan = build_staged_plan(
            query3,
            ordering=[0, 1, 2],
            choices=all_selection_choices(3, 2),
            source_names=SOURCES,
        )
        assert len(plan.stages) == 3
        assert plan.stages[0].input_register == ""
        assert plan.stages[1].input_register == "X1"
        assert plan.stages[2].source_registers == ("X3_1", "X3_2")


class TestValidationErrors:
    def test_bad_ordering(self, query3):
        with pytest.raises(PlanValidationError, match="permutation"):
            build_staged_plan(
                query3, [0, 0, 1], all_selection_choices(3, 2), SOURCES
            )

    def test_wrong_choice_shape(self, query3):
        with pytest.raises(PlanValidationError, match="stages x"):
            build_staged_plan(
                query3, [0, 1, 2], all_selection_choices(2, 2), SOURCES
            )

    def test_first_stage_must_be_selections(self, query3):
        choices = all_selection_choices(3, 2)
        choices[0][0] = StagedChoice.SEMIJOIN
        with pytest.raises(PlanValidationError, match="first stage"):
            build_staged_plan(query3, [0, 1, 2], choices, SOURCES)

    def test_uniform_choices_validation(self):
        with pytest.raises(PlanValidationError):
            uniform_choices(3, 2, [True, False, False])
        with pytest.raises(PlanValidationError):
            uniform_choices(3, 2, [False, False])
