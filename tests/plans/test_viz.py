"""Unit tests for plan/schedule visualization."""

from __future__ import annotations

import re

import pytest

from repro.mediator.executor import Executor
from repro.mediator.schedule import response_time
from repro.plans.builder import (
    build_filter_plan,
    build_staged_plan,
    uniform_choices,
)
from repro.plans.viz import plan_to_dot, schedule_gantt
from repro.sources.generators import dmv_fig1


@pytest.fixture
def kit():
    federation, query = dmv_fig1()
    plan = build_staged_plan(
        query,
        [0, 1],
        uniform_choices(2, 3, [False, True]),
        federation.source_names,
    )
    return federation, query, plan


class TestDot:
    def test_structure(self, kit):
        __, query, plan = kit
        dot = plan_to_dot(plan, name="p1")
        assert dot.startswith('digraph "p1"')
        assert dot.rstrip().endswith("}")
        # one node per op + the answer node
        node_definitions = re.findall(r"^  op\d+ \[label=", dot, re.M)
        assert len(node_definitions) == len(plan)
        assert "sjq(c2, R1, X1)" in dot
        assert "doublecircle" in dot

    def test_edges_follow_register_flow(self, kit):
        __, __, plan = kit
        dot = plan_to_dot(plan)
        # the union of stage 1 feeds every stage-2 semijoin: X1 edges
        assert len(re.findall(r'label="X1"', dot)) >= 3

    def test_quotes_escaped(self):
        from repro.query.fusion import FusionQuery

        query = FusionQuery.from_strings("L", ["V = 'it''s'"])
        plan = build_filter_plan(query, ["R1"])
        dot = plan_to_dot(plan)
        assert '\\"' not in dot or "digraph" in dot  # parses as one string
        assert dot.count("{") == dot.count("}")


class TestGantt:
    def test_rows_and_makespan(self, kit):
        federation, __, plan = kit
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        chart = schedule_gantt(schedule, width=40)
        lines = chart.splitlines()
        remote_count = plan.remote_op_count
        assert len(lines) == remote_count + 1
        assert "makespan" in lines[-1]
        for line in lines[:-1]:
            bar = line.split("|")[1]
            assert len(bar) == 40
            assert "#" in bar

    def test_semijoin_bars_start_after_selections(self, kit):
        federation, __, plan = kit
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        chart = schedule_gantt(schedule, width=40)
        sq_lines = [line for line in chart.splitlines() if "sq->" in line]
        sjq_lines = [line for line in chart.splitlines() if "sjq->" in line]
        last_sq_end = max(line.split("|")[1].rfind("#") for line in sq_lines)
        first_sjq_start = min(
            line.split("|")[1].find("#") for line in sjq_lines
        )
        assert first_sjq_start >= last_sq_end
