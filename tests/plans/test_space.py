"""Unit tests for plan-space sizes, enumeration, and sampling."""

from __future__ import annotations

import math
import random

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.plans.space import (
    canonical_semijoin_key,
    choices_from_stages,
    count_distinct_semijoin_plans,
    enumerate_adaptive_specs,
    enumerate_semijoin_specs,
    random_simple_plan,
    raw_adaptive_space_size,
    raw_semijoin_space_size,
    staged_plan_cost,
)
from repro.query.fusion import FusionQuery
from repro.sources.generators import dmv_fig1
from repro.sources.statistics import ExactStatistics


class TestSpaceSizes:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_raw_semijoin_size_formula(self, m):
        assert raw_semijoin_space_size(m) == math.factorial(m) * 2 ** (m - 1)
        assert (
            len(list(enumerate_semijoin_specs(m)))
            == raw_semijoin_space_size(m)
        )

    @pytest.mark.parametrize("m,n", [(1, 2), (2, 2), (2, 3), (3, 2)])
    def test_raw_adaptive_size_formula(self, m, n):
        assert raw_adaptive_space_size(m, n) == math.factorial(m) * 2 ** (
            n * (m - 1)
        )
        assert (
            len(list(enumerate_adaptive_specs(m, n)))
            == raw_adaptive_space_size(m, n)
        )

    def test_adaptive_space_dwarfs_semijoin_space(self):
        """The Sec. 3 point: SJA searches a much larger space."""
        m, n = 3, 10
        assert raw_adaptive_space_size(m, n) > 1000 * raw_semijoin_space_size(m)

    def test_degenerate_sizes(self):
        assert raw_semijoin_space_size(0) == 0
        assert raw_adaptive_space_size(0, 5) == 0
        assert raw_adaptive_space_size(2, 0) == 0


class TestCanonicalDedup:
    def test_distinct_count_below_raw(self):
        # Equivalent specs exist from m = 2 onward (swapping two
        # selection-evaluated leading conditions).
        for m in (2, 3, 4):
            distinct = count_distinct_semijoin_plans(m)
            assert distinct < raw_semijoin_space_size(m)
            assert distinct >= math.factorial(m)  # all-selection per ordering collapse...

    def test_key_identifies_selection_commutation(self):
        # Orderings [0,1] and [1,0] with all-selection choices are
        # equivalent: same per-condition treatment, no semijoins.
        key_a = canonical_semijoin_key((0, 1), (False, False))
        key_b = canonical_semijoin_key((1, 0), (False, False))
        assert key_a == key_b

    def test_key_distinguishes_semijoin_predecessors(self):
        key_a = canonical_semijoin_key((0, 1), (False, True))
        key_b = canonical_semijoin_key((1, 0), (False, True))
        assert key_a != key_b


class TestStagedCost:
    @pytest.fixture
    def kit(self):
        federation, query = dmv_fig1()
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        return federation, query, model, estimator

    def test_all_selection_cost_is_filter_cost(self, kit):
        federation, query, model, estimator = kit
        cost = staged_plan_cost(
            query,
            (0, 1),
            choices_from_stages((False, False), 3),
            federation.source_names,
            model,
            estimator,
        )
        filter_cost = sum(
            model.sq_cost(condition, source)
            for condition in query.conditions
            for source in federation.source_names
        )
        assert cost == pytest.approx(filter_cost)

    def test_ordering_invariance_of_all_selection_specs(self, kit):
        federation, query, model, estimator = kit
        choices = choices_from_stages((False, False), 3)
        a = staged_plan_cost(
            query, (0, 1), choices, federation.source_names, model, estimator
        )
        b = staged_plan_cost(
            query, (1, 0), choices, federation.source_names, model, estimator
        )
        assert a == pytest.approx(b)

    def test_semijoin_stage_costed_with_prefix(self, kit):
        federation, query, model, estimator = kit
        cost = staged_plan_cost(
            query,
            (0, 1),
            choices_from_stages((False, True), 3),
            federation.source_names,
            model,
            estimator,
        )
        x1 = estimator.union_selection_size(query.conditions[0])
        expected = sum(
            model.sq_cost(query.conditions[0], source)
            for source in federation.source_names
        ) + sum(
            model.sjq_cost(query.conditions[1], source, x1)
            for source in federation.source_names
        )
        assert cost == pytest.approx(expected)


class TestRandomSimplePlans:
    def test_deterministic_given_seed(self):
        query = FusionQuery.from_strings("L", ["V = 'a'", "V = 'b'", "V = 'c'"])
        a = random_simple_plan(query, ["R1", "R2"], random.Random(5))
        b = random_simple_plan(query, ["R1", "R2"], random.Random(5))
        assert a == b

    def test_produces_valid_plans(self):
        query = FusionQuery.from_strings("L", ["V = 'a'", "V = 'b'", "V = 'c'"])
        rng = random.Random(1)
        for __ in range(30):
            plan = random_simple_plan(query, ["R1", "R2", "R3"], rng)
            assert plan.result == "X3"
            assert len(plan.stages) == 3
