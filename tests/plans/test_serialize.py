"""Unit tests for plan serialization."""

from __future__ import annotations

import pytest

from repro.errors import PlanValidationError
from repro.mediator.executor import Executor
from repro.optimize.postopt import (
    apply_difference_pruning,
    apply_source_loading,
)
from repro.optimize.sja import SJAOptimizer
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.plans.builder import build_filter_plan
from repro.plans.serialize import (
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from repro.sources.generators import DMV_FIG1_ANSWER


@pytest.fixture
def dmv_plans(dmv_federation, dmv_query, dmv_cost_model, dmv_estimator):
    """A representative set: filter, SJA, pruned, loaded."""
    filter_plan = build_filter_plan(dmv_query, dmv_federation.source_names)
    sja_plan = SJAOptimizer().optimize(
        dmv_query, dmv_federation.source_names, dmv_cost_model, dmv_estimator
    ).plan
    sja_plus_plan = SJAPlusOptimizer().optimize(
        dmv_query, dmv_federation.source_names, dmv_cost_model, dmv_estimator
    ).plan
    return [filter_plan, sja_plan, sja_plus_plan]


class TestRoundTrip:
    def test_dict_roundtrip_exact(self, dmv_plans):
        for plan in dmv_plans:
            rebuilt = plan_from_dict(plan_to_dict(plan))
            assert rebuilt == plan
            assert rebuilt.description == plan.description
            assert rebuilt.stages == plan.stages
            if plan.query is not None:
                assert rebuilt.query == plan.query

    def test_json_roundtrip(self, dmv_plans):
        for plan in dmv_plans:
            assert plan_from_json(plan_to_json(plan)) == plan

    def test_extended_ops_roundtrip(
        self, dmv_query, dmv_cost_model, dmv_estimator, dmv_federation
    ):
        from repro.costs.model import TableCostModel
        from repro.plans.builder import StagedChoice, build_staged_plan

        base = build_staged_plan(
            dmv_query,
            [0, 1],
            [
                [StagedChoice.SELECTION] * 3,
                [
                    StagedChoice.SELECTION,
                    StagedChoice.SEMIJOIN,
                    StagedChoice.SEMIJOIN,
                ],
            ],
            dmv_federation.source_names,
        )
        pruned = apply_difference_pruning(base)
        loaded = apply_source_loading(
            pruned,
            TableCostModel(default_sq=100.0, lq_table={"R3": 1.0}),
            dmv_estimator,
        )
        assert plan_from_dict(plan_to_dict(loaded)) == loaded

    def test_deserialized_plan_executes(self, dmv_plans, dmv_federation):
        executor = Executor(dmv_federation)
        for plan in dmv_plans:
            rebuilt = plan_from_json(plan_to_json(plan))
            assert executor.execute(rebuilt).items == DMV_FIG1_ANSWER


class TestErrors:
    def test_unknown_op_kind(self):
        with pytest.raises(PlanValidationError, match="unknown operation"):
            plan_from_dict(
                {"operations": [{"op": "teleport", "target": "X"}], "result": "X"}
            )

    def test_missing_key(self):
        with pytest.raises(PlanValidationError, match="missing key"):
            plan_from_dict(
                {"operations": [{"op": "sq", "target": "X"}], "result": "X"}
            )

    def test_invalid_plan_rejected_on_rebuild(self):
        # structurally broken: result register never defined
        with pytest.raises(PlanValidationError):
            plan_from_dict(
                {
                    "operations": [
                        {"op": "sq", "target": "X", "condition": "V = 'a'",
                         "source": "R1"}
                    ],
                    "result": "Y",
                }
            )
