"""Unit tests for the Plan container and its validation."""

from __future__ import annotations

import pytest

from repro.errors import PlanValidationError
from repro.plans.operations import (
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    OpKind,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan
from repro.query.fusion import FusionQuery
from repro.relational.parser import parse_condition

DUI = parse_condition("V = 'dui'")
SP = parse_condition("V = 'sp'")


def simple_plan():
    return Plan(
        [
            SelectionOp("X1_1", DUI, "R1"),
            SelectionOp("X1_2", DUI, "R2"),
            UnionOp("X1", ("X1_1", "X1_2")),
            SemijoinOp("X2_1", SP, "R1", "X1"),
            UnionOp("X2", ("X2_1",)),
        ],
        result="X2",
    )


class TestValidation:
    def test_valid_plan_constructs(self):
        plan = simple_plan()
        assert len(plan) == 5
        assert plan.remote_op_count == 3

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanValidationError):
            Plan([], result="X")

    def test_undefined_read_rejected(self):
        with pytest.raises(PlanValidationError, match="undefined"):
            Plan([UnionOp("X", ("Y",))], result="X")

    def test_undefined_result_rejected(self):
        with pytest.raises(PlanValidationError, match="never defined"):
            Plan([SelectionOp("X", DUI, "R1")], result="Z")

    def test_relation_result_rejected(self):
        with pytest.raises(PlanValidationError, match="relation"):
            Plan([LoadOp("T", "R1")], result="T")

    def test_local_selection_needs_relation_register(self):
        with pytest.raises(PlanValidationError, match="holds items"):
            Plan(
                [
                    SelectionOp("X", DUI, "R1"),
                    LocalSelectionOp("Y", SP, "X"),
                ],
                result="Y",
            )

    def test_set_op_cannot_read_relation_register(self):
        with pytest.raises(PlanValidationError, match="holds relation"):
            Plan(
                [
                    LoadOp("T", "R1"),
                    SelectionOp("X", DUI, "R1"),
                    UnionOp("Y", ("T", "X")),
                ],
                result="Y",
            )

    def test_register_reassignment_allowed(self):
        # The paper's own idiom: X2 := X2 ∩ X1.
        plan = Plan(
            [
                SelectionOp("X1", DUI, "R1"),
                SelectionOp("X2", SP, "R1"),
                IntersectOp("X2", ("X1", "X2")),
            ],
            result="X2",
        )
        assert plan.result == "X2"


class TestIntrospection:
    def test_count_by_kind(self):
        counts = simple_plan().count_by_kind()
        assert counts[OpKind.SELECTION] == 2
        assert counts[OpKind.SEMIJOIN] == 1
        assert counts[OpKind.UNION] == 2

    def test_sources_used(self):
        assert simple_plan().sources_used() == frozenset({"R1", "R2"})

    def test_equality_and_hash(self):
        assert simple_plan() == simple_plan()
        assert hash(simple_plan()) == hash(simple_plan())

    def test_iteration(self):
        assert len(list(simple_plan())) == 5

    def test_with_description(self):
        renamed = simple_plan().with_description("test plan")
        assert renamed.description == "test plan"
        assert renamed == simple_plan()  # description not part of equality


class TestPretty:
    def test_pretty_with_condition_labels(self):
        query = FusionQuery("L", (DUI, SP))
        plan = Plan(
            [
                SelectionOp("X1_1", DUI, "R1"),
                UnionOp("X1", ("X1_1",)),
                SemijoinOp("X2_1", SP, "R1", "X1"),
                UnionOp("X2", ("X2_1",)),
            ],
            result="X2",
            query=query,
        )
        text = plan.pretty()
        assert "sq(c1, R1)" in text
        assert "sjq(c2, R1, X1)" in text
        assert "result: X2" in text

    def test_pretty_without_labels(self):
        text = simple_plan().pretty()
        assert "sq(V = 'dui', R1)" in text

    def test_pretty_numbers_steps(self):
        text = simple_plan().pretty()
        assert text.splitlines()[0].startswith("1)")
