"""Unit tests for plan operations."""

from __future__ import annotations

import pytest

from repro.plans.operations import (
    DifferenceOp,
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    OpKind,
    RegisterType,
    SelectionOp,
    SemijoinOp,
    SIMPLE_OP_KINDS,
    UnionOp,
)
from repro.relational.parser import parse_condition

DUI = parse_condition("V = 'dui'")


class TestReadWriteSets:
    def test_selection(self):
        op = SelectionOp("X1", DUI, "R1")
        assert op.target == "X1"
        assert op.reads() == ()
        assert op.remote
        assert op.kind is OpKind.SELECTION

    def test_semijoin(self):
        op = SemijoinOp("X2", DUI, "R1", "X1")
        assert op.reads() == ("X1",)
        assert op.remote

    def test_load_produces_relation_register(self):
        op = LoadOp("T1", "R1")
        assert op.result_type is RegisterType.RELATION
        assert op.remote

    def test_local_selection(self):
        op = LocalSelectionOp("X1", DUI, "T1")
        assert op.reads() == ("T1",)
        assert not op.remote
        assert op.result_type is RegisterType.ITEMS

    def test_union_intersect_difference(self):
        union = UnionOp("X", ("A", "B"))
        intersect = IntersectOp("Y", ("X", "C"))
        diff = DifferenceOp("Z", "Y", "X")
        assert union.reads() == ("A", "B")
        assert intersect.reads() == ("X", "C")
        assert diff.reads() == ("Y", "X")
        assert not union.remote

    def test_union_requires_inputs(self):
        with pytest.raises(ValueError):
            UnionOp("X", ())
        with pytest.raises(ValueError):
            IntersectOp("X", ())


class TestRendering:
    def test_selection_render_with_labels(self):
        op = SelectionOp("X1_1", DUI, "R1")
        assert op.render() == "X1_1 := sq(V = 'dui', R1)"
        assert op.render({DUI: "c1"}) == "X1_1 := sq(c1, R1)"

    def test_semijoin_render(self):
        op = SemijoinOp("X2_1", DUI, "R1", "X1")
        assert op.render({DUI: "c2"}) == "X2_1 := sjq(c2, R1, X1)"

    def test_load_render(self):
        assert LoadOp("T1", "R3").render() == "T1 := lq(R3)"

    def test_local_selection_render(self):
        op = LocalSelectionOp("X3", DUI, "T1")
        assert op.render({DUI: "c1"}) == "X3 := sq(c1, T1)"

    def test_set_op_renders(self):
        assert UnionOp("X", ("A", "B")).render() == "X := A ∪ B"
        assert IntersectOp("X", ("A", "B")).render() == "X := A ∩ B"
        assert DifferenceOp("X", "A", "B").render() == "X := A − B"


class TestSimpleKinds:
    def test_simple_op_kinds_match_section_2_3(self):
        assert SIMPLE_OP_KINDS == {
            OpKind.SELECTION,
            OpKind.SEMIJOIN,
            OpKind.UNION,
            OpKind.INTERSECT,
        }
        assert OpKind.DIFFERENCE not in SIMPLE_OP_KINDS
        assert OpKind.LOAD not in SIMPLE_OP_KINDS

    def test_operations_are_values(self):
        a = SelectionOp("X", DUI, "R1")
        b = SelectionOp("X", DUI, "R1")
        assert a == b
        assert hash(a) == hash(b)
