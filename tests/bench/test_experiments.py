"""Smoke tests for the fast experiment runners.

The heavyweight sweeps (F3/F4/C2/C4...) run in ``benchmarks/``; here we
execute the fast experiments directly so the plain test suite covers
their code paths and pins the headline facts each report must state.
"""

from __future__ import annotations

import pytest

from repro.bench.extensions import run_correlation, run_phases
from repro.bench.figures import run_fig1, run_fig2, run_fig5
from repro.bench.claims import run_claim_sja_optimal


class TestFigureRunners:
    def test_fig1_states_the_paper_answer(self):
        report = run_fig1()
        assert "J55, T21" in report
        assert "R1 (3 rows)" in report
        assert "SELECT u1.L FROM U u1, U u2" in report

    def test_fig2_classifies_all_three(self):
        report = run_fig2()
        for expected in ("filter", "semijoin", "semijoin-adaptive"):
            assert expected in report

    def test_fig5_shows_all_four_plans(self):
        report = run_fig5()
        for plan_name in ("P1", "P2a", "P2b", "P3"):
            assert plan_name in report
        # both answers stay correct through postoptimization
        assert report.count("J55, T21") >= 4


class TestClaimRunners:
    def test_sja_optimality_claim_holds(self):
        report = run_claim_sja_optimal()
        assert "False" not in report

    def test_correlation_report_quantifies_lift(self):
        report = run_correlation()
        assert "lift" in report
        assert "pairwise-corrected" in report

    def test_phases_report_covers_both_strategies(self):
        report = run_phases()
        assert "two-phase" in report
        assert "one-phase" in report


class TestReportShape:
    @pytest.mark.parametrize(
        "runner", [run_fig2, run_correlation], ids=["F2", "C7"]
    )
    def test_reports_are_single_strings_with_header(self, runner):
        report = runner()
        assert isinstance(report, str)
        assert report.startswith("===")
