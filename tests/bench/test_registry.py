"""Unit tests for the experiment registry and harness plumbing."""

from __future__ import annotations

import pytest

from repro.bench.harness import kit_for_federation, make_kit, run_optimizers
from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.optimize.filter import FilterOptimizer
from repro.sources.generators import SyntheticConfig, dmv_fig1


class TestRegistry:
    def test_all_design_md_experiments_registered(self):
        expected = {
            "F1", "F2", "F3", "F4", "F5",
            "C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8",
            "E1", "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12",
            "A1", "P1",
        }
        assert set(EXPERIMENTS) == expected

    def test_every_entry_has_description_and_runner(self):
        for experiment_id, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("ZZ", save=False)

    def test_run_experiment_returns_report(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        report = run_experiment("F2", save=True)
        assert "plan classes" in report
        assert (tmp_path / "F2.txt").exists()
        # a traffic-metrics snapshot lands next to every saved report
        assert (tmp_path / "F2.metrics.json").exists()


class TestHarness:
    def test_make_kit_shapes(self):
        config = SyntheticConfig(n_sources=3, n_entities=100, seed=0)
        kit = make_kit(config, m=2)
        assert kit.query.arity == 2
        assert len(kit.source_names) == 3

    def test_kit_for_federation(self):
        federation, query = dmv_fig1()
        kit = kit_for_federation(federation, query)
        assert kit.source_names == ("R1", "R2", "R3")

    def test_run_optimizers_verifies_and_accounts(self):
        federation, query = dmv_fig1()
        kit = kit_for_federation(federation, query)
        runs = run_optimizers(kit, [FilterOptimizer()])
        assert len(runs) == 1
        run = runs[0]
        assert run.correct
        assert run.actual_cost > 0
        assert run.messages == 6
        # harness resets traffic afterwards
        assert federation.total_messages() == 0
