"""The BENCH_*.json trajectory aggregator."""

from __future__ import annotations

import json

import pytest

from benchmarks.trajectory import (
    HEADLINE_METRIC,
    TRACKED_BENCHES,
    aggregate,
    load_rows,
    write_trajectory,
)


def _write(tmp_path, bench: str, rows: list[dict]) -> None:
    (tmp_path / f"BENCH_{bench}.json").write_text(
        json.dumps(rows, indent=2) + "\n", encoding="utf-8"
    )


class TestLoadRows:
    def test_missing_files_are_skipped(self, tmp_path):
        assert load_rows(str(tmp_path)) == []

    def test_reads_normalized_rows(self, tmp_path):
        _write(
            tmp_path,
            "R8",
            [{"bench": "R8", "scenario": "calm", "p95_s": 0.2}],
        )
        rows = load_rows(str(tmp_path))
        assert len(rows) == 1
        assert rows[0]["scenario"] == "calm"

    def test_rejects_rows_missing_keys(self, tmp_path):
        _write(tmp_path, "R9", [{"scenario": "shed"}])
        with pytest.raises(ValueError, match="missing normalized key"):
            load_rows(str(tmp_path))

    def test_rejects_mismatched_bench(self, tmp_path):
        _write(tmp_path, "R9", [{"bench": "R8", "scenario": "x"}])
        with pytest.raises(ValueError, match="does not match"):
            load_rows(str(tmp_path))

    def test_rejects_non_list_document(self, tmp_path):
        (tmp_path / "BENCH_R7.json").write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError, match="expected a list"):
            load_rows(str(tmp_path))


class TestAggregate:
    def test_keys_scenarios_by_bench_and_scenario(self):
        document = aggregate(
            [
                {"bench": "R8", "scenario": "calm", "p95_s": 0.2},
                {"bench": "R11", "scenario": "calm", "latency_burn_rate": 0.0},
            ]
        )
        assert set(document["scenarios"]) == {"R8/calm", "R11/calm"}
        assert document["benches"]["R8"]["headline"] == {"calm": 0.2}

    def test_rejects_duplicate_scenarios(self):
        rows = [
            {"bench": "R9", "scenario": "shed"},
            {"bench": "R9", "scenario": "shed"},
        ]
        with pytest.raises(ValueError, match="duplicate scenario"):
            aggregate(rows)


class TestWriteTrajectory:
    def test_round_trips_to_disk(self, tmp_path):
        _write(
            tmp_path,
            "R11",
            [
                {
                    "bench": "R11",
                    "scenario": "calm",
                    "latency_burn_rate": 0.0,
                }
            ],
        )
        path = write_trajectory(str(tmp_path))
        document = json.loads(
            (tmp_path / "BENCH_TRAJECTORY.json").read_text()
        )
        assert path.endswith("BENCH_TRAJECTORY.json")
        assert document["benches"]["R11"]["scenarios"] == 1

    def test_every_tracked_bench_has_a_headline_metric(self):
        assert set(HEADLINE_METRIC) == set(TRACKED_BENCHES)
