"""Unit tests for report formatting and persistence."""

from __future__ import annotations

import math
import os

import pytest

from repro.bench.report import (
    Table,
    format_cell,
    join_sections,
    results_dir,
    write_report,
)


class TestFormatCell:
    def test_floats(self):
        assert format_cell(2.5) == "2.500"
        assert format_cell(12.34) == "12.3"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(0.0) == "0"
        assert format_cell(math.inf) == "inf"

    def test_non_floats(self):
        assert format_cell(3) == "3"
        assert format_cell("x") == "x"
        assert format_cell(True) == "True"


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add_row(["a", 1])
        table.add_row(["longer", 123456.0])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert all("|" in line for line in lines[1:2])
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows same width

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row([1])

    def test_notes_appended(self):
        table = Table("demo", ["a"])
        table.add_row([1])
        table.add_note("hello")
        assert "note: hello" in table.render()

    def test_empty_table_renders(self):
        table = Table("empty", ["a", "b"])
        assert "empty" in table.render()


class TestSections:
    def test_join_sections_skips_empty(self):
        assert join_sections("a", "", "b") == "a\n\nb"


class TestPersistence:
    def test_write_report_respects_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_report("unit", "content")
        assert os.path.dirname(path) == str(tmp_path)
        with open(path) as handle:
            assert handle.read() == "content\n"

    def test_results_dir_created(self, tmp_path, monkeypatch):
        target = tmp_path / "nested"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(target))
        assert results_dir() == str(target)
        assert target.is_dir()
