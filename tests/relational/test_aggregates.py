"""Unit tests for decomposable aggregates and their partial states."""

from __future__ import annotations

import pytest

from repro.relational.aggregates import (
    AggregateSpec,
    aggregate_rows,
    finalize_partials,
    merge_partials,
    partial_aggregate_rows,
    partials_to_wire,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema, dmv_schema

ROWS = [
    ("J55", "dui", 1993),
    ("T21", "sp", 1994),
    ("T80", "dui", 1991),
    ("S07", "sp", 1990),
]


@pytest.fixture
def relation():
    return Relation("R", dmv_schema(), ROWS)


class TestAggregateSpec:
    def test_label(self):
        assert AggregateSpec("count").label == "COUNT(*)"
        assert AggregateSpec("sum", "D").label == "SUM(D)"

    def test_func_is_normalized(self):
        assert AggregateSpec("AVG", "D").func == "avg"

    def test_unknown_func_rejected(self):
        from repro.errors import ConditionError

        with pytest.raises(ConditionError):
            AggregateSpec("median", "D")

    def test_count_star_is_attributeless(self):
        assert AggregateSpec("count").attribute is None

    def test_sum_requires_numeric(self):
        with pytest.raises(Exception):
            AggregateSpec("sum", "V").validate_against_schema(dmv_schema())

    def test_sum_accepts_int(self):
        AggregateSpec("sum", "D").validate_against_schema(dmv_schema())


class TestAggregateRows:
    def test_global_group(self, relation):
        result = aggregate_rows(
            relation,
            (AggregateSpec("count"), AggregateSpec("avg", "D")),
        )
        assert result.groups == (((), (4, 1992.0)),)

    def test_group_by(self, relation):
        result = aggregate_rows(
            relation,
            (AggregateSpec("count"), AggregateSpec("max", "D")),
            group_by=("V",),
        )
        assert dict(result.groups) == {
            ("dui",): (2, 1993),
            ("sp",): (2, 1994),
        }

    def test_items_filter(self, relation):
        result = aggregate_rows(
            relation,
            (AggregateSpec("count"),),
            items=frozenset({"J55", "T80"}),
        )
        assert result.groups == (((), (2,)),)

    def test_column_names_and_as_dicts(self, relation):
        result = aggregate_rows(
            relation, (AggregateSpec("count"),), group_by=("V",)
        )
        assert result.column_names == ("V", "COUNT(*)")
        assert {d["V"]: d["COUNT(*)"] for d in result.as_dicts()} == {
            "dui": 2,
            "sp": 2,
        }

    def test_pretty_renders_every_group(self, relation):
        text = aggregate_rows(
            relation, (AggregateSpec("count"),), group_by=("V",)
        ).pretty()
        assert "dui" in text and "sp" in text and "COUNT(*)" in text


class TestNullSemantics:
    @pytest.fixture
    def nullable(self):
        schema = Schema(
            (
                Attribute("L", DataType.STRING),
                Attribute("D", DataType.INT, nullable=True),
            ),
            merge_attribute="L",
        )
        return Relation("N", schema, [("a", None), ("b", None)])

    def test_sum_avg_min_max_of_all_nulls_is_null(self, nullable):
        result = aggregate_rows(
            nullable,
            (
                AggregateSpec("sum", "D"),
                AggregateSpec("avg", "D"),
                AggregateSpec("min", "D"),
                AggregateSpec("max", "D"),
            ),
        )
        assert result.groups == (((), (None, None, None, None)),)

    def test_count_star_counts_null_rows(self, nullable):
        result = aggregate_rows(nullable, (AggregateSpec("count"),))
        assert result.groups == (((), (2,)),)

    def test_count_attribute_skips_nulls(self, nullable):
        result = aggregate_rows(nullable, (AggregateSpec("count", "D"),))
        assert result.groups == (((), (0,)),)

    def test_empty_relation_has_no_groups(self):
        result = aggregate_rows(
            Relation("E", dmv_schema(), []), (AggregateSpec("count"),)
        )
        assert result.groups == ()


class TestPartials:
    def test_merge_is_decomposition(self, relation):
        specs = (AggregateSpec("count"), AggregateSpec("sum", "D"))
        left = Relation("A", relation.schema, ROWS[:2])
        right = Relation("B", relation.schema, ROWS[2:])
        merged = merge_partials(
            partial_aggregate_rows(left, specs),
            partial_aggregate_rows(right, specs),
            specs,
        )
        whole = partial_aggregate_rows(relation, specs)
        assert finalize_partials(merged, specs) == finalize_partials(
            whole, specs
        )

    def test_wire_format_is_sorted_and_plain(self, relation):
        specs = (AggregateSpec("count"),)
        partials = partial_aggregate_rows(relation, specs, group_by=("V",))
        wire = partials_to_wire(partials)
        assert wire == sorted(wire, key=lambda t: repr(t[0]))
        assert all(isinstance(entry, tuple) for entry in wire)

    def test_groups_sorted_by_key_repr(self, relation):
        result = aggregate_rows(
            relation, (AggregateSpec("count"),), group_by=("V",)
        )
        keys = [key for key, _ in result.groups]
        assert keys == sorted(keys, key=repr)
