"""Unit tests for the condition parser."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.relational.conditions import (
    And,
    Between,
    Comparison,
    FalseCondition,
    InSet,
    IsNull,
    Like,
    Not,
    Or,
    TrueCondition,
)
from repro.relational.parser import parse_condition, tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("V = 'dui' AND D >= 1994")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "ident", "op", "string", "keyword", "ident", "op", "number", "eof",
        ]

    def test_string_escaping(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_numbers(self):
        assert tokenize("3")[0].value == 3
        assert tokenize("3.5")[0].value == 3.5
        assert tokenize("-2")[0].value == -2

    def test_diamond_operator_canonicalized(self):
        assert tokenize("a <> 1")[1].text == "!="

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'abc")

    def test_garbage_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a = #")


class TestParsePrimary:
    def test_comparison(self):
        assert parse_condition("V = 'dui'") == Comparison("V", "=", "dui")
        assert parse_condition("D >= 1994") == Comparison("D", ">=", 1994)
        assert parse_condition("D <> 3") == Comparison("D", "!=", 3)

    def test_qualified_attribute_stripped(self):
        assert parse_condition("u1.V = 'dui'") == Comparison("V", "=", "dui")

    def test_between(self):
        assert parse_condition("D BETWEEN 1990 AND 1995") == Between(
            "D", 1990, 1995
        )

    def test_in(self):
        assert parse_condition("V IN ('dui', 'sp')") == InSet(
            "V", ["dui", "sp"]
        )

    def test_not_in(self):
        assert parse_condition("V NOT IN ('dui')") == Not(InSet("V", ["dui"]))

    def test_like(self):
        assert parse_condition("V LIKE 'd%'") == Like("V", "d%")

    def test_not_like(self):
        assert parse_condition("V NOT LIKE 'd%'") == Not(Like("V", "d%"))

    def test_is_null(self):
        assert parse_condition("V IS NULL") == IsNull("V")
        assert parse_condition("V IS NOT NULL") == IsNull("V", negated=True)

    def test_boolean_literals(self):
        assert parse_condition("TRUE") == TrueCondition()
        assert parse_condition("false") == FalseCondition()

    def test_boolean_value_literal(self):
        assert parse_condition("flag = TRUE") == Comparison("flag", "=", True)


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        cond = parse_condition("a = 1 OR b = 2 AND c = 3")
        assert isinstance(cond, Or)
        assert isinstance(cond.operands[1], And)

    def test_parentheses_override(self):
        cond = parse_condition("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(cond, And)
        assert isinstance(cond.operands[0], Or)

    def test_not_precedence(self):
        cond = parse_condition("NOT a = 1 AND b = 2")
        assert isinstance(cond, And)
        assert isinstance(cond.operands[0], Not)

    def test_nested_not(self):
        cond = parse_condition("NOT NOT a = 1")
        assert cond == Not(Not(Comparison("a", "=", 1)))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "V = 'dui'",
            "D >= 1994",
            "V = 'dui' AND D >= 1994",
            "V = 'dui' OR V = 'sp'",
            "NOT (V = 'dui')",
            "D BETWEEN 1990 AND 1995",
            "V LIKE 'd%'",
            "V IS NULL",
            "V IS NOT NULL",
        ],
    )
    def test_parse_sql_roundtrip(self, text):
        condition = parse_condition(text)
        assert parse_condition(condition.to_sql()) == condition


class TestErrors:
    def test_empty_condition(self):
        with pytest.raises(ParseError, match="empty"):
            parse_condition("   ")

    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_condition("a = 1 b = 2")

    def test_missing_literal(self):
        with pytest.raises(ParseError, match="literal"):
            parse_condition("a = ")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_condition("(a = 1")

    def test_dangling_not(self):
        with pytest.raises(ParseError, match="NOT must be followed"):
            parse_condition("a NOT = 1")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_condition("a = $")
        assert excinfo.value.position == 4
