"""Unit tests for the condition AST and its evaluation semantics."""

from __future__ import annotations

import pytest

from repro.errors import ConditionError
from repro.relational.conditions import (
    And,
    Between,
    Comparison,
    FalseCondition,
    InSet,
    IsNull,
    Like,
    Not,
    Or,
    TrueCondition,
    validate_against,
    walk,
)

ROW = {"L": "J55", "V": "dui", "D": 1993, "NOTE": None}


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", "dui", True),
            ("=", "sp", False),
            ("!=", "sp", True),
            ("<", "e", True),
            ("<=", "dui", True),
            (">", "a", True),
            (">=", "dui", True),
        ],
    )
    def test_string_comparisons(self, op, value, expected):
        assert Comparison("V", op, value).evaluate(ROW) is expected

    @pytest.mark.parametrize(
        "op,value,expected",
        [("=", 1993, True), ("<", 1994, True), (">=", 1994, False)],
    )
    def test_numeric_comparisons(self, op, value, expected):
        assert Comparison("D", op, value).evaluate(ROW) is expected

    def test_null_comparison_is_false(self):
        assert Comparison("NOTE", "=", "x").evaluate(ROW) is False
        assert Comparison("NOTE", "!=", "x").evaluate(ROW) is False

    def test_cross_domain_comparison_is_false(self):
        assert Comparison("D", "=", "1993").evaluate(ROW) is False
        assert Comparison("V", "<", 5).evaluate(ROW) is False

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionError):
            Comparison("V", "~", "x")

    def test_non_scalar_literal_rejected(self):
        with pytest.raises(ConditionError):
            Comparison("V", "=", ["a"])

    def test_missing_attribute_raises(self):
        with pytest.raises(ConditionError, match="lacks attribute"):
            Comparison("Z", "=", 1).evaluate(ROW)

    def test_to_sql(self):
        assert Comparison("V", "=", "dui").to_sql() == "V = 'dui'"
        assert Comparison("D", ">=", 1994).to_sql() == "D >= 1994"
        assert Comparison("V", "=", "d'ui").to_sql() == "V = 'd''ui'"
        assert Comparison("V", "=", "x").to_sql("u1") == "u1.V = 'x'"


class TestOtherPredicates:
    def test_between_inclusive(self):
        assert Between("D", 1993, 1995).evaluate(ROW)
        assert Between("D", 1990, 1993).evaluate(ROW)
        assert not Between("D", 1994, 1999).evaluate(ROW)

    def test_between_null_is_false(self):
        assert not Between("NOTE", 1, 2).evaluate(ROW)

    def test_in_set(self):
        assert InSet("V", ["dui", "sp"]).evaluate(ROW)
        assert not InSet("V", ["sp"]).evaluate(ROW)

    def test_in_set_requires_values(self):
        with pytest.raises(ConditionError):
            InSet("V", [])

    def test_in_set_hashable(self):
        assert hash(InSet("V", ["a", "b"])) == hash(InSet("V", ["b", "a"]))

    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("dui", True),
            ("d%", True),
            ("%ui", True),
            ("d_i", True),
            ("s%", False),
            ("%", True),
            ("du", False),
        ],
    )
    def test_like(self, pattern, expected):
        assert Like("V", pattern).evaluate(ROW) is expected

    def test_like_non_string_is_false(self):
        assert not Like("D", "19%").evaluate(ROW)

    def test_is_null(self):
        assert IsNull("NOTE").evaluate(ROW)
        assert not IsNull("V").evaluate(ROW)
        assert IsNull("V", negated=True).evaluate(ROW)


class TestBooleanCombinators:
    def test_and_or_not(self):
        dui = Comparison("V", "=", "dui")
        recent = Comparison("D", ">=", 1994)
        assert (dui & recent).evaluate(ROW) is False
        assert (dui | recent).evaluate(ROW) is True
        assert (~recent).evaluate(ROW) is True

    def test_and_flattening_and_simplification(self):
        a = Comparison("V", "=", "dui")
        b = Comparison("D", "<", 2000)
        combined = And.of(a, And.of(b, TrueCondition()))
        assert combined == And((a, b))
        assert And.of(a, FalseCondition()) == FalseCondition()
        assert And.of(TrueCondition(), TrueCondition()) == TrueCondition()
        assert And.of(a) == a

    def test_or_flattening_and_simplification(self):
        a = Comparison("V", "=", "dui")
        b = Comparison("V", "=", "sp")
        assert Or.of(a, Or.of(b)) == Or((a, b))
        assert Or.of(a, TrueCondition()) == TrueCondition()
        assert Or.of(FalseCondition(), FalseCondition()) == FalseCondition()

    def test_direct_construction_arity(self):
        with pytest.raises(ConditionError):
            And((Comparison("V", "=", "x"),))
        with pytest.raises(ConditionError):
            Or((Comparison("V", "=", "x"),))

    def test_and_sql_parenthesizes_or(self):
        a = Comparison("V", "=", "dui")
        b = Or((Comparison("D", "=", 1993), Comparison("D", "=", 1994)))
        assert And((a, b)).to_sql() == "V = 'dui' AND (D = 1993 OR D = 1994)"

    def test_conjuncts(self):
        a = Comparison("V", "=", "dui")
        b = Comparison("D", "<", 2000)
        assert And((a, b)).conjuncts() == (a, b)
        assert a.conjuncts() == (a,)


class TestStructure:
    def test_attributes(self):
        cond = And(
            (
                Comparison("V", "=", "dui"),
                Or((Comparison("D", "<", 1994), IsNull("NOTE"))),
            )
        )
        assert cond.attributes() == frozenset({"V", "D", "NOTE"})

    def test_walk_visits_all_nodes(self):
        cond = Not(And((Comparison("V", "=", "x"), Comparison("D", "<", 1))))
        kinds = [type(node).__name__ for node in walk(cond)]
        assert kinds == ["Not", "And", "Comparison", "Comparison"]

    def test_validate_against(self):
        cond = Comparison("V", "=", "dui")
        validate_against(cond, ["L", "V", "D"])
        with pytest.raises(ConditionError, match="unknown attributes"):
            validate_against(cond, ["L", "D"])

    def test_conditions_are_hashable_and_equal_by_value(self):
        a = Comparison("V", "=", "dui")
        b = Comparison("V", "=", "dui")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
