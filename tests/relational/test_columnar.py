"""Unit tests for the columnar substrate: tables, masks, flags, set ops."""

from __future__ import annotations

import pytest

from repro.errors import ConditionError
from repro.relational import columnar
from repro.relational.columnar import (
    ColumnarTable,
    count_matching,
    difference_items,
    intersect_items,
    numpy_available,
    predicate_mask,
    select_items,
    semijoin_items,
    set_columnar_enabled,
    set_numpy_enabled,
    substrate_summary,
    table_for,
    union_items,
)
from repro.relational.parser import parse_condition
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema, dmv_schema

ROWS = [
    ("J55", "dui", 1993),
    ("T21", "sp", 1994),
    ("T80", "dui", 1993),
    ("S07", "park", 1990),
]


@pytest.fixture
def relation():
    return Relation("R", dmv_schema(), ROWS)


@pytest.fixture
def table(relation):
    return relation.columnar()


@pytest.fixture(params=[False, True], ids=["python", "numpy"])
def numpy_mode(request):
    if request.param and not numpy_available():
        pytest.skip("numpy not available")
    prev = set_numpy_enabled(request.param)
    yield request.param
    set_numpy_enabled(prev)


class TestColumnarTable:
    def test_columns_are_transposed(self, table):
        assert list(table.column("L")) == ["J55", "T21", "T80", "S07"]
        assert list(table.column("V")) == ["dui", "sp", "dui", "park"]
        assert list(table.column("D")) == [1993, 1994, 1993, 1990]
        assert table.length == 4

    def test_missing_column_is_none(self, table):
        assert table.column("nope") is None

    def test_merge_column(self, table):
        assert list(table.merge_column) == ["J55", "T21", "T80", "S07"]

    def test_cached_on_relation(self, relation):
        assert relation.columnar() is relation.columnar()

    def test_empty_relation(self):
        table = Relation("E", dmv_schema(), []).columnar()
        assert table.length == 0
        assert select_items(table, parse_condition("V = 'dui'")) == frozenset()


class TestTableFor:
    def test_returns_view_when_enabled(self, relation):
        assert isinstance(table_for(relation), ColumnarTable)

    def test_disabled_returns_none(self, relation):
        prev = set_columnar_enabled(False)
        try:
            assert table_for(relation) is None
        finally:
            set_columnar_enabled(prev)

    def test_ragged_relation_returns_none(self):
        ragged = Relation.unchecked(
            "bad", dmv_schema(), [("J55", "dui", 1993), ("T21",)]
        )
        assert table_for(ragged) is None

    def test_flag_restore(self):
        prev = set_columnar_enabled(False)
        set_columnar_enabled(prev)
        assert table_for(Relation("R", dmv_schema(), ROWS)) is not None


class TestPredicateMask:
    def test_comparison(self, table, numpy_mode):
        mask = predicate_mask(table, parse_condition("V = 'dui'"))
        assert list(mask) == [True, False, True, False]

    def test_and_or_not_are_mask_algebra(self, table, numpy_mode):
        cond = parse_condition("(V = 'dui' AND D >= 1993) OR NOT V = 'park'")
        expected = [True, True, True, False]
        assert list(predicate_mask(table, cond)) == expected

    def test_between(self, table, numpy_mode):
        mask = predicate_mask(table, parse_condition("D BETWEEN 1990 AND 1993"))
        assert list(mask) == [True, False, True, True]

    def test_in_set_and_like(self, table, numpy_mode):
        assert list(
            predicate_mask(table, parse_condition("V IN ('sp', 'park')"))
        ) == [False, True, False, True]
        assert list(
            predicate_mask(table, parse_condition("V LIKE 'd%'"))
        ) == [True, False, True, False]

    def test_missing_attribute_comparison_raises(self, table, numpy_mode):
        with pytest.raises(ConditionError):
            predicate_mask(table, parse_condition("ZZ = 'x'"))

    def test_count_matching(self, table, numpy_mode):
        assert count_matching(table, parse_condition("V = 'dui'")) == 2

    def test_nulls_never_match(self, numpy_mode):
        schema = Schema(
            (
                Attribute("L", DataType.STRING),
                Attribute("D", DataType.INT, nullable=True),
            ),
            merge_attribute="L",
        )
        relation = Relation("N", schema, [("a", 1), ("b", None), ("c", 3)])
        table = relation.columnar()
        assert list(predicate_mask(table, parse_condition("D >= 0"))) == [
            True,
            False,
            True,
        ]
        assert list(
            predicate_mask(table, parse_condition("D IS NULL"))
        ) == [False, True, False]

    def test_huge_int_literal_matches_python(self, numpy_mode):
        # Beyond 2**53 float64 rounds; the numpy path must not be used
        # (or must agree exactly) for such literals.
        schema = Schema(
            (
                Attribute("L", DataType.STRING),
                Attribute("D", DataType.INT),
            ),
            merge_attribute="L",
        )
        big = 2**53 + 1
        relation = Relation("B", schema, [("a", big), ("b", big - 1)])
        cond = parse_condition(f"D = {big}")
        assert select_items(relation.columnar(), cond) == frozenset({"a"})


class TestSemijoin:
    def test_probes_before_predicate(self, table, numpy_mode):
        result = semijoin_items(
            table, parse_condition("V = 'dui'"), frozenset({"J55", "S07"})
        )
        assert result == frozenset({"J55"})

    def test_empty_bindings(self, table, numpy_mode):
        assert (
            semijoin_items(table, parse_condition("V = 'dui'"), frozenset())
            == frozenset()
        )


class TestSetOps:
    def test_union(self):
        assert union_items(
            [frozenset("ab"), frozenset("bc"), frozenset()]
        ) == frozenset("abc")

    def test_union_empty(self):
        assert union_items([]) == frozenset()

    def test_intersect(self):
        assert intersect_items(
            [frozenset("abc"), frozenset("bcd"), frozenset("cbx")]
        ) == frozenset("bc")

    def test_intersect_empty_list_raises(self):
        with pytest.raises(ValueError):
            intersect_items([])

    def test_difference(self):
        assert difference_items(frozenset("abc"), frozenset("b")) == frozenset(
            "ac"
        )
        assert difference_items(frozenset("abc"), frozenset()) == frozenset(
            "abc"
        )


class TestSubstrateSummary:
    def test_mentions_state(self):
        assert "columnar substrate" in substrate_summary()

    def test_numpy_flag_roundtrip(self):
        prev = set_numpy_enabled(False)
        assert "python" in substrate_summary() or "row" in substrate_summary()
        set_numpy_enabled(prev)


class TestParityWithRowPath:
    CONDITIONS = [
        "V = 'dui'",
        "V != 'dui' AND D < 1994",
        "D BETWEEN 1991 AND 1994 OR V = 'park'",
        "V IN ('dui', 'sp') AND NOT D = 1993",
        "V LIKE '%u%'",
        "V IS NOT NULL",
    ]

    @pytest.mark.parametrize("text", CONDITIONS)
    def test_three_paths_agree(self, relation, text, numpy_mode):
        condition = parse_condition(text)
        columnar_result = select_items(relation.columnar(), condition)
        schema = relation.schema
        merge_pos = schema.merge_position
        row_result = frozenset(
            row[merge_pos]
            for row in relation
            if condition.evaluate(schema.row_to_dict(row))
        )
        assert columnar_result == row_result
