"""Unit tests for schemas, attributes, and data types."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, DataType, Schema, dmv_schema


class TestDataType:
    def test_string_accepts_str_only(self):
        assert DataType.STRING.accepts("x")
        assert not DataType.STRING.accepts(3)
        assert not DataType.STRING.accepts(None)

    def test_int_rejects_bool(self):
        assert DataType.INT.accepts(3)
        assert not DataType.INT.accepts(True)

    def test_float_accepts_int(self):
        assert DataType.FLOAT.accepts(3)
        assert DataType.FLOAT.accepts(3.5)
        assert not DataType.FLOAT.accepts(True)

    def test_bool_accepts_bool_only(self):
        assert DataType.BOOL.accepts(True)
        assert not DataType.BOOL.accepts(1)


class TestAttribute:
    def test_str_rendering(self):
        assert str(Attribute("V")) == "V:string"
        assert str(Attribute("D", DataType.INT, nullable=True)) == "D:int?"

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")
        with pytest.raises(SchemaError):
            Attribute("bad name")

    def test_validate_value_type_mismatch(self):
        with pytest.raises(SchemaError, match="expects int"):
            Attribute("D", DataType.INT).validate_value("1993")

    def test_validate_value_nullability(self):
        Attribute("V", nullable=True).validate_value(None)
        with pytest.raises(SchemaError, match="not nullable"):
            Attribute("V").validate_value(None)


class TestSchema:
    def test_dmv_schema_shape(self):
        schema = dmv_schema()
        assert schema.names == ("L", "V", "D")
        assert schema.merge_attribute == "L"
        assert schema.merge_position == 0
        assert len(schema) == 3

    def test_position_lookup_and_cache(self):
        schema = dmv_schema()
        assert schema.position("V") == 1
        assert schema.position("V") == 1  # cached path
        with pytest.raises(SchemaError):
            schema.position("missing")

    def test_contains(self):
        schema = dmv_schema()
        assert "V" in schema
        assert "Z" not in schema

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema((Attribute("L"), Attribute("L")), merge_attribute="L")

    def test_merge_attribute_must_exist(self):
        with pytest.raises(SchemaError, match="not among"):
            Schema((Attribute("L"),), merge_attribute="M")

    def test_merge_attribute_must_not_be_nullable(self):
        with pytest.raises(SchemaError, match="not be nullable"):
            Schema(
                (Attribute("L", nullable=True), Attribute("V")),
                merge_attribute="L",
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema((), merge_attribute="L")

    def test_validate_row_arity(self):
        with pytest.raises(SchemaError, match="2 values"):
            dmv_schema().validate_row(("J55", "dui"))

    def test_validate_row_types(self):
        with pytest.raises(SchemaError):
            dmv_schema().validate_row(("J55", "dui", "1993"))
        dmv_schema().validate_row(("J55", "dui", 1993))

    def test_row_dict_roundtrip(self):
        schema = dmv_schema()
        row = ("J55", "dui", 1993)
        assert schema.dict_to_row(schema.row_to_dict(row)) == row

    def test_dict_to_row_missing_required(self):
        with pytest.raises(SchemaError, match="missing value"):
            dmv_schema().dict_to_row({"L": "J55", "V": "dui"})

    def test_dict_to_row_fills_nullable(self):
        schema = Schema(
            (Attribute("L"), Attribute("V", nullable=True)),
            merge_attribute="L",
        )
        assert schema.dict_to_row({"L": "J55"}) == ("J55", None)

    def test_dict_to_row_rejects_unknown_keys(self):
        with pytest.raises(SchemaError, match="unknown attributes"):
            dmv_schema().dict_to_row({"L": "J55", "V": "x", "D": 1, "Z": 2})

    def test_compatibility(self):
        assert dmv_schema().compatible_with(dmv_schema())
        other = Schema(
            (Attribute("L"), Attribute("V"), Attribute("D")),  # D is string
            merge_attribute="L",
        )
        assert not dmv_schema().compatible_with(other)
