"""Unit tests for the item-set algebra (the mediator's local operations)."""

from __future__ import annotations

import pytest

from repro.relational.algebra import (
    difference,
    intersect_many,
    local_selection,
    project_items,
    select_items,
    select_rows,
    semijoin_items,
    union_many,
)
from repro.relational.parser import parse_condition
from repro.relational.relation import Relation
from repro.relational.schema import dmv_schema


@pytest.fixture
def r1():
    return Relation(
        "R1",
        dmv_schema(),
        [("J55", "dui", 1993), ("T21", "sp", 1994), ("T80", "dui", 1993)],
    )


class TestSelection:
    def test_select_items(self, r1):
        assert select_items(r1, parse_condition("V = 'dui'")) == frozenset(
            {"J55", "T80"}
        )

    def test_select_items_empty(self, r1):
        assert select_items(r1, parse_condition("V = 'zzz'")) == frozenset()

    def test_select_rows(self, r1):
        rows = select_rows(r1, parse_condition("D = 1993"))
        assert len(rows) == 2

    def test_select_items_deduplicates(self):
        rel = Relation(
            "r", dmv_schema(), [("J55", "dui", 1993), ("J55", "dui", 1994)]
        )
        assert select_items(rel, parse_condition("V = 'dui'")) == frozenset(
            {"J55"}
        )

    def test_local_selection_matches_select_items(self, r1):
        condition = parse_condition("V = 'sp'")
        assert local_selection(r1, condition) == select_items(r1, condition)


class TestSemijoin:
    def test_semijoin_filters_by_items_and_condition(self, r1):
        result = semijoin_items(
            r1, parse_condition("V = 'dui'"), {"J55", "T21"}
        )
        assert result == frozenset({"J55"})

    def test_semijoin_empty_input(self, r1):
        assert semijoin_items(r1, parse_condition("V = 'dui'"), set()) == (
            frozenset()
        )

    def test_semijoin_is_selection_intersected_with_input(self, r1):
        condition = parse_condition("D = 1993")
        items = frozenset({"J55", "T21", "XXX"})
        assert semijoin_items(r1, condition, items) == (
            select_items(r1, condition) & items
        )


class TestSetOps:
    def test_union_many(self):
        assert union_many([{1, 2}, {2, 3}, set()]) == frozenset({1, 2, 3})
        assert union_many([]) == frozenset()

    def test_intersect_many(self):
        assert intersect_many([{1, 2, 3}, {2, 3}, {3, 4}]) == frozenset({3})

    def test_intersect_many_short_circuits_empty(self):
        assert intersect_many([{1}, set(), {1}]) == frozenset()

    def test_intersect_many_rejects_zero_sets(self):
        with pytest.raises(ValueError):
            intersect_many([])

    def test_difference(self):
        assert difference({1, 2, 3}, {2}) == frozenset({1, 3})
        assert difference(set(), {1}) == frozenset()

    def test_project_items(self, r1):
        assert project_items(r1) == frozenset({"J55", "T21", "T80"})
