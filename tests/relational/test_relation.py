"""Unit tests for the Relation container."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema, dmv_schema

ROWS = [("J55", "dui", 1993), ("T21", "sp", 1994), ("T80", "dui", 1993)]


@pytest.fixture
def r1():
    return Relation("R1", dmv_schema(), ROWS)


class TestConstruction:
    def test_rows_validated(self):
        with pytest.raises(SchemaError):
            Relation("bad", dmv_schema(), [("J55", "dui", "not-an-int")])

    def test_empty_relation_allowed(self):
        empty = Relation("empty", dmv_schema())
        assert len(empty) == 0
        assert empty.items() == frozenset()

    def test_is_a_bag(self):
        duplicated = Relation("dup", dmv_schema(), [ROWS[0], ROWS[0]])
        assert len(duplicated) == 2
        assert duplicated.items() == frozenset({"J55"})


class TestAccessors:
    def test_items_are_merge_values(self, r1):
        assert r1.items() == frozenset({"J55", "T21", "T80"})

    def test_column(self, r1):
        assert r1.column("V") == ["dui", "sp", "dui"]

    def test_distinct_excludes_nulls(self):
        schema = Schema(
            (Attribute("L"), Attribute("V", nullable=True)),
            merge_attribute="L",
        )
        rel = Relation("r", schema, [("a", "x"), ("b", None)])
        assert rel.distinct("V") == frozenset({"x"})

    def test_rows_as_dicts(self, r1):
        dicts = r1.rows_as_dicts()
        assert dicts[0] == {"L": "J55", "V": "dui", "D": 1993}

    def test_contains_row(self, r1):
        assert ("J55", "dui", 1993) in r1
        assert ("J55", "sp", 1993) not in r1


class TestDerivation:
    def test_filter(self, r1):
        duis = r1.filter(lambda row: row["V"] == "dui")
        assert len(duis) == 2
        assert duis.items() == frozenset({"J55", "T80"})

    def test_restrict_to_items(self, r1):
        restricted = r1.restrict_to_items({"J55", "ZZZ"})
        assert restricted.items() == frozenset({"J55"})
        assert len(restricted) == 1

    def test_union_all(self, r1):
        r2 = Relation("R2", dmv_schema(), [("T11", "sp", 1993)])
        union = Relation.union_all("U", [r1, r2])
        assert len(union) == 4
        assert union.items() == frozenset({"J55", "T21", "T80", "T11"})

    def test_union_all_requires_compatible_schemas(self, r1):
        other_schema = Schema(
            (Attribute("L"), Attribute("X")), merge_attribute="L"
        )
        other = Relation("other", other_schema, [("a", "b")])
        with pytest.raises(SchemaError, match="incompatible"):
            Relation.union_all("U", [r1, other])

    def test_union_all_empty_rejected(self):
        with pytest.raises(SchemaError):
            Relation.union_all("U", [])

    def test_from_dicts(self):
        rel = Relation.from_dicts(
            "r", dmv_schema(), [{"L": "J55", "V": "dui", "D": 1993}]
        )
        assert rel.rows == (("J55", "dui", 1993),)


class TestEquality:
    def test_order_insensitive_equality(self, r1):
        shuffled = Relation("other", dmv_schema(), list(reversed(ROWS)))
        assert r1 == shuffled

    def test_inequality_on_rows(self, r1):
        fewer = Relation("other", dmv_schema(), ROWS[:2])
        assert r1 != fewer


class TestPretty:
    def test_pretty_includes_name_and_rows(self, r1):
        text = r1.pretty()
        assert "R1 (3 rows)" in text
        assert "J55" in text

    def test_pretty_truncates(self, r1):
        text = r1.pretty(limit=1)
        assert "2 more rows" in text
