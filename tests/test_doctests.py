"""Run the library's embedded doctests.

Docstring examples are part of the public documentation; this test
keeps them executable so they can never rot.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro",
    "repro.bench.report",
    "repro.costs.charge",
    "repro.costs.correlation",
    "repro.costs.estimates",
    "repro.mediator.adaptive",
    "repro.mediator.phases",
    "repro.mediator.reference",
    "repro.mediator.schedule",
    "repro.mediator.session",
    "repro.optimize.filter",
    "repro.optimize.response_time",
    "repro.optimize.sj",
    "repro.optimize.sja",
    "repro.optimize.sja_plus",
    "repro.plans.classify",
    "repro.plans.cost",
    "repro.plans.plan",
    "repro.plans.viz",
    "repro.query.fusion",
    "repro.query.sqlparse",
    "repro.relational.parser",
    "repro.runtime.engine",
    "repro.runtime.faults",
    "repro.runtime.policy",
    "repro.relational.relation",
    "repro.relational.schema",
    "repro.serve.tenants",
    "repro.sources.registry",
    "repro.sources.remote",
    "repro.sources.statistics",
    "repro.sources.table_source",
]

# importlib (not attribute access): package __init__ files re-export
# functions whose names shadow submodule attributes (e.g. classify).
MODULES = [importlib.import_module(name) for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=MODULE_NAMES)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failures"


def test_doctests_exist_somewhere():
    """At least a meaningful number of modules carry runnable examples."""
    attempted = sum(
        doctest.testmod(module, verbose=False).attempted for module in MODULES
    )
    assert attempted >= 15
