"""Unit tests for one-phase vs two-phase record retrieval."""

from __future__ import annotations

import pytest

from repro.mediator.phases import (
    PhaseStrategy,
    answer_with_records,
    estimate_one_phase_cost,
    estimate_two_phase_cost,
)
from repro.mediator.reference import reference_answer
from repro.mediator.session import Mediator
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    SyntheticConfig,
    build_synthetic,
    dmv_fig1,
    synthetic_query,
)


@pytest.fixture
def synthetic():
    config = SyntheticConfig(n_sources=4, n_entities=300, seed=77)
    federation = build_synthetic(config)
    query = synthetic_query(config, m=3, seed=79)
    return federation, query


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy", [PhaseStrategy.TWO_PHASE, PhaseStrategy.ONE_PHASE]
    )
    def test_both_strategies_find_same_entities(self, synthetic, strategy):
        federation, query = synthetic
        mediator = Mediator(federation)
        result = answer_with_records(mediator, query, strategy)
        assert result.items == reference_answer(federation, query)
        assert result.strategy is strategy

    def test_dmv_answer(self):
        federation, query = dmv_fig1()
        result = answer_with_records(Mediator(federation), query)
        assert result.items == DMV_FIG1_ANSWER

    def test_records_belong_to_matches(self, synthetic):
        federation, query = synthetic
        mediator = Mediator(federation)
        for strategy in (PhaseStrategy.TWO_PHASE, PhaseStrategy.ONE_PHASE):
            federation.reset_traffic()
            result = answer_with_records(mediator, query, strategy)
            assert result.records.items() <= result.items

    def test_one_phase_records_subset_of_two_phase(self, synthetic):
        """One-phase keeps qualifying rows; two-phase fetches all rows of
        matched entities — a superset."""
        federation, query = synthetic
        mediator = Mediator(federation)
        two = answer_with_records(mediator, query, PhaseStrategy.TWO_PHASE)
        federation.reset_traffic()
        one = answer_with_records(mediator, query, PhaseStrategy.ONE_PHASE)
        assert set(one.records.rows) <= set(two.records.rows)

    def test_sql_accepted(self):
        federation, query = dmv_fig1()
        result = answer_with_records(Mediator(federation), query.to_sql())
        assert result.items == DMV_FIG1_ANSWER


class TestAutoChoice:
    def test_auto_picks_cheaper_estimate(self, synthetic):
        federation, query = synthetic
        mediator = Mediator(federation)
        result = answer_with_records(mediator, query, PhaseStrategy.AUTO)
        if result.estimated_one_phase < result.estimated_two_phase:
            assert result.strategy is PhaseStrategy.ONE_PHASE
        else:
            assert result.strategy is PhaseStrategy.TWO_PHASE

    def test_estimates_positive(self, synthetic):
        federation, query = synthetic
        mediator = Mediator(federation)
        assert estimate_one_phase_cost(mediator, query) > 0
        assert estimate_two_phase_cost(mediator, query) > 0

    def test_selective_query_prefers_two_phase(self):
        """Highly selective conditions -> tiny answer -> phase 2 cheap."""
        config = SyntheticConfig(
            n_sources=4,
            n_entities=800,
            rows_per_entity=(2, 4),
            load_range=(10.0, 10.0),  # rows are expensive to ship
            seed=101,
        )
        federation = build_synthetic(config)
        from repro.relational.conditions import Comparison

        from repro.query.fusion import FusionQuery

        query = FusionQuery(
            "id",
            (
                Comparison("score", "<", 60),
                Comparison("score", ">=", 940),
            ),
        )
        mediator = Mediator(federation)
        result = answer_with_records(mediator, query, PhaseStrategy.AUTO)
        assert result.strategy is PhaseStrategy.TWO_PHASE

    def test_accounting_matches_traffic(self, synthetic):
        federation, query = synthetic
        mediator = Mediator(federation)
        federation.reset_traffic()
        result = answer_with_records(mediator, query, PhaseStrategy.ONE_PHASE)
        assert result.actual_cost == pytest.approx(
            federation.total_traffic_cost()
        )
