"""Unit tests for the parallel-execution response-time model."""

from __future__ import annotations

import pytest

from repro.costs.estimates import SizeEstimator
from repro.errors import PlanValidationError
from repro.mediator.executor import Executor
from repro.mediator.schedule import (
    estimated_response_time,
    response_time,
)
from repro.plans.builder import (
    build_filter_plan,
    build_staged_plan,
    uniform_choices,
)
from repro.plans.operations import SelectionOp, UnionOp
from repro.plans.plan import Plan
from repro.relational.parser import parse_condition
from repro.sources.generators import dmv_fig1
from repro.sources.statistics import ExactStatistics


@pytest.fixture
def kit():
    federation, query = dmv_fig1()
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    return federation, query, estimator


class TestActualScheduling:
    def test_filter_plan_parallelizes_across_sources(self, kit):
        federation, query, __ = kit
        plan = build_filter_plan(query, federation.source_names)
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        # 6 selections over 3 sources: 2 rounds per source in parallel.
        assert schedule.makespan_s < schedule.total_time_s
        assert schedule.parallel_speedup == pytest.approx(3.0, rel=0.05)

    def test_semijoin_stage_waits_for_binding_set(self, kit):
        federation, query, __ = kit
        plan = build_staged_plan(
            query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            federation.source_names,
        )
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        # Every semijoin starts only after all stage-1 selections finished.
        stage1_finish = max(
            op.finish_s
            for op in schedule.ops
            if op.operation.remote and op.operation.kind.value == "sq"
        )
        for op in schedule.ops:
            if op.operation.remote and op.operation.kind.value == "sjq":
                assert op.start_s >= stage1_finish - 1e-12

    def test_same_source_ops_serialize(self, kit):
        federation, query, __ = kit
        plan = build_filter_plan(query, federation.source_names)
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        by_source: dict[str, list] = {}
        for op in schedule.ops:
            if op.operation.remote:
                by_source.setdefault(op.operation.source, []).append(op)
        for ops in by_source.values():
            ops.sort(key=lambda op: op.start_s)
            for earlier, later in zip(ops, ops[1:]):
                assert later.start_s >= earlier.finish_s - 1e-12

    def test_makespan_bounds(self, kit):
        federation, query, __ = kit
        plan = build_filter_plan(query, federation.source_names)
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        longest_single = max(
            step.elapsed_s for step in execution.steps
        )
        assert longest_single <= schedule.makespan_s <= schedule.total_time_s

    def test_critical_path_ends_at_makespan(self, kit):
        federation, query, __ = kit
        plan = build_staged_plan(
            query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            federation.source_names,
        )
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        path = schedule.critical_path()
        assert path
        assert path[-1].finish_s == pytest.approx(schedule.makespan_s)
        for earlier, later in zip(path, path[1:]):
            assert earlier.finish_s <= later.start_s + 1e-12

    def test_mismatched_trace_rejected(self, kit):
        federation, query, __ = kit
        plan = build_filter_plan(query, federation.source_names)
        execution = Executor(federation).execute(plan)
        execution.steps.pop()
        with pytest.raises(ValueError, match="does not match"):
            response_time(plan, execution)


class TestEstimatedScheduling:
    def test_estimate_matches_actual_with_oracle_stats(self, kit):
        """The filter plan's traffic is exactly predictable, so the
        estimated makespan must equal the measured one."""
        federation, query, estimator = kit
        plan = build_filter_plan(query, federation.source_names)
        execution = Executor(federation).execute(plan)
        actual = response_time(plan, execution)
        estimated = estimated_response_time(plan, federation, estimator)
        assert estimated.makespan_s == pytest.approx(
            actual.makespan_s, rel=0.01
        )

    def test_emulated_semijoins_serialize_in_estimate(self, kit):
        from repro.sources.capabilities import SourceCapabilities

        federation, query, estimator = kit
        for source in federation:
            source.capabilities = SourceCapabilities.selection_only()
        plan = build_staged_plan(
            query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            federation.source_names,
        )
        schedule = estimated_response_time(plan, federation, estimator)
        native_federation, __ = dmv_fig1()
        native = estimated_response_time(
            plan, native_federation, estimator
        )
        # Per-binding round trips dominate: emulation is much slower.
        assert schedule.makespan_s > native.makespan_s


class TestEdgeCases:
    def test_empty_plan_is_unconstructible(self):
        with pytest.raises(PlanValidationError, match="at least one"):
            Plan([], result="X")

    def test_single_op_plan_makespan_is_its_duration(self, kit):
        federation, __, ___ = kit
        condition = parse_condition("V = 'dui'")
        plan = Plan([SelectionOp("X", condition, "R1")], result="X")
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        assert len(schedule.ops) == 1
        assert schedule.makespan_s == pytest.approx(
            execution.steps[0].elapsed_s
        )
        assert schedule.makespan_s == pytest.approx(schedule.total_time_s)
        assert schedule.parallel_speedup == pytest.approx(1.0)

    def test_all_ops_on_one_source_fully_serialize(self, kit):
        federation, __, ___ = kit
        conditions = [
            parse_condition("V = 'dui'"),
            parse_condition("V = 'sp'"),
            parse_condition("D > 1990"),
        ]
        ops = [
            SelectionOp(f"X{i}", condition, "R1")
            for i, condition in enumerate(conditions, start=1)
        ]
        plan = Plan(
            [*ops, UnionOp("X", ("X1", "X2", "X3"))], result="X"
        )
        execution = Executor(federation).execute(plan)
        schedule = response_time(plan, execution)
        # One connection, no overlap: makespan is the sum of durations.
        assert schedule.makespan_s == pytest.approx(schedule.total_time_s)
        assert schedule.parallel_speedup == pytest.approx(1.0)
