"""Unit tests for the adaptive (interleaved) executor."""

from __future__ import annotations

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.adaptive import AdaptiveExecutor
from repro.mediator.reference import reference_answer
from repro.query.fusion import FusionQuery
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    SyntheticConfig,
    build_synthetic,
    dmv_fig1,
    synthetic_query,
)
from repro.sources.remote import FailureInjector
from repro.sources.statistics import ExactStatistics, SampledStatistics


def make_adaptive(federation, statistics=None):
    statistics = statistics or ExactStatistics(federation)
    estimator = SizeEstimator(statistics, federation.source_names)
    model = ChargeCostModel.for_federation(federation, estimator)
    return AdaptiveExecutor(federation, model, estimator)


class TestCorrectness:
    def test_dmv_answer(self):
        federation, query = dmv_fig1()
        result = make_adaptive(federation).execute(query)
        assert result.items == DMV_FIG1_ANSWER

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_reference_on_synthetic(self, seed):
        config = SyntheticConfig(n_sources=4, n_entities=200, seed=seed)
        federation = build_synthetic(config)
        query = synthetic_query(config, m=3, seed=seed + 20)
        result = make_adaptive(federation).execute(query)
        assert result.items == reference_answer(federation, query)

    def test_correct_with_sampled_statistics(self):
        config = SyntheticConfig(n_sources=4, n_entities=300, seed=9)
        federation = build_synthetic(config)
        query = synthetic_query(config, m=3, seed=29)
        executor = make_adaptive(
            federation, SampledStatistics(federation, 0.2, seed=1)
        )
        assert executor.execute(query).items == reference_answer(
            federation, query
        )

    def test_single_condition(self):
        federation, __ = dmv_fig1()
        query = FusionQuery.from_strings("L", ["V = 'sp'"])
        result = make_adaptive(federation).execute(query)
        assert result.items == reference_answer(federation, query)
        assert len(result.stages) == 1


class TestEarlyTermination:
    def test_empty_prefix_stops(self):
        federation, __ = dmv_fig1()
        query = FusionQuery.from_strings(
            "L", ["V = 'nope'", "V = 'sp'", "V = 'dui'"]
        )
        result = make_adaptive(federation).execute(query)
        assert result.items == frozenset()
        assert result.terminated_early
        assert result.stages_skipped == 2
        assert len(result.stages) == 1  # only the empty first stage ran

    def test_summary_mentions_early_stop(self):
        federation, __ = dmv_fig1()
        query = FusionQuery.from_strings("L", ["V = 'nope'", "V = 'sp'"])
        result = make_adaptive(federation).execute(query)
        assert "stopped early" in result.summary()


class TestAdaptivity:
    def test_in_stage_pruning_never_resends_confirmed_items(self):
        """The adaptive executor folds Sec. 4 difference pruning in."""
        from repro.sources.network import LinkProfile

        federation, query = dmv_fig1(
            link=LinkProfile(
                request_overhead=1.0,
                per_item_send=5.0,
                per_item_receive=50.0,
            )
        )
        result = make_adaptive(federation).execute(query)
        assert result.items == DMV_FIG1_ANSWER
        semijoin_records = [
            record
            for source in federation
            for record in source.traffic
            if record.operation == "sjq"
        ]
        if len(semijoin_records) >= 2:
            # later sends are never larger than the first
            sends = [record.items_sent for record in semijoin_records]
            assert sends == sorted(sends, reverse=True)

    def test_stage_costs_accounted(self):
        federation, query = dmv_fig1()
        federation.reset_traffic()
        result = make_adaptive(federation).execute(query)
        assert result.total_cost == pytest.approx(
            federation.total_traffic_cost()
        )

    def test_ordering_adapts_to_actual_sizes(self):
        federation, __ = dmv_fig1()
        query = FusionQuery.from_strings(
            "L", ["V = 'sp'", "V = 'dui'"]
        )
        result = make_adaptive(federation).execute(query)
        # c chosen first is the cheaper/smaller one; with equal charge
        # profiles that is dui (3 items) over sp (4 items).
        assert result.ordering()[0].to_sql() == "V = 'dui'"


class TestRetries:
    def test_transient_failures_survived(self):
        federation, query = dmv_fig1()
        federation.source("R2").failure = FailureInjector(
            1.0, seed=0, max_failures=2
        )
        executor = make_adaptive(federation)
        executor.max_retries = 5
        assert executor.execute(query).items == DMV_FIG1_ANSWER
