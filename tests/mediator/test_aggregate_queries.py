"""End-to-end tests for aggregation fusion queries (PR 10).

The fusion part fixes the qualifying entity set exactly as before; the
aggregate node then summarizes the matching union-view rows, either by
fetching raw tuples or by partial-aggregate pushdown at sources that
declare the capability.  Both paths — and the reference oracle — must
agree bit-for-bit, including float averages.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.mediator.reference import reference_aggregate
from repro.mediator.session import AggregateAnswer, Mediator
from repro.query.aggregate import AggregateQuery
from repro.query.sqlparse import is_aggregate_query, parse_query
from repro.sources.capabilities import SourceCapabilities
from repro.sources.generators import dmv_fig1

AGG_SQL = (
    "SELECT u1.V, COUNT(*), AVG(u1.D) FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp' "
    "GROUP BY u1.V"
)

#: Hand-checked over Fig. 1: qualifying items {J55, T21}; their rows are
#: R1:(J55,dui,1993),(T21,sp,1994); R2:(T21,dui,1996),(J55,sp,1996);
#: R3:(T21,sp,1993).
EXPECTED_GROUPS = {
    ("dui",): (2, 1994.5),
    ("sp",): (3, (1994 + 1996 + 1993) / 3),
}


@pytest.fixture
def analytic_federation():
    federation, __ = dmv_fig1(capabilities=SourceCapabilities.analytic())
    return federation


class TestParsing:
    def test_detects_aggregate_sql(self):
        assert is_aggregate_query(AGG_SQL)
        assert not is_aggregate_query(
            "SELECT u1.L FROM U u1 WHERE u1.V = 'dui'"
        )

    def test_parse_query_returns_aggregate(self):
        query = parse_query(AGG_SQL)
        assert isinstance(query, AggregateQuery)
        assert query.group_by == ("V",)
        assert [spec.label for spec in query.specs] == ["COUNT(*)", "AVG(D)"]
        assert query.merge_attribute == "L"

    def test_fusion_part_matches_plain_query(self):
        query = parse_query(AGG_SQL)
        assert [str(c) for c in query.fusion.conditions] == [
            "V = 'dui'",
            "V = 'sp'",
        ]

    def test_bare_select_attribute_must_be_grouped(self):
        bad = (
            "SELECT u1.V, COUNT(*) FROM U u1, U u2 "
            "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
        )
        with pytest.raises(Exception):
            parse_query(bad)

    def test_to_sql_round_trips(self):
        query = parse_query(AGG_SQL)
        again = parse_query(query.to_sql("U"))
        assert isinstance(again, AggregateQuery)
        assert again.specs == query.specs
        assert again.group_by == query.group_by


class TestFetchPath:
    def test_matches_reference(self, dmv_federation):
        mediator = Mediator(dmv_federation, verify=True)
        answer = mediator.answer_aggregate(AGG_SQL)
        assert isinstance(answer, AggregateAnswer)
        assert answer.verified is True
        assert dict(answer.result.groups) == EXPECTED_GROUPS

    def test_no_pushdown_without_capability(self, dmv_federation):
        mediator = Mediator(dmv_federation, verify=False)
        answer = mediator.answer_aggregate(AGG_SQL, pushdown="force")
        assert answer.aggregate_plan.pushdown_sources == ()
        assert len(answer.aggregate_plan.fetch_sources) == 3

    def test_global_aggregate(self, dmv_federation):
        mediator = Mediator(dmv_federation, verify=True)
        answer = mediator.answer_aggregate(
            "SELECT COUNT(*) FROM U u1, U u2 "
            "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
        )
        assert answer.result.groups == (((), (5,)),)

    def test_summary_mentions_aggregate_phase(self, dmv_federation):
        mediator = Mediator(dmv_federation, verify=True)
        answer = mediator.answer_aggregate(AGG_SQL)
        assert "aggregate phase" in answer.summary()
        assert answer.items == answer.fusion.items


class TestPushdownPath:
    def test_forced_pushdown_matches_fetch_exactly(self, analytic_federation):
        pushed = Mediator(analytic_federation, verify=False).answer_aggregate(
            AGG_SQL, pushdown="force"
        )
        fetched = Mediator(analytic_federation, verify=False).answer_aggregate(
            AGG_SQL, pushdown=False
        )
        assert len(pushed.aggregate_plan.pushdown_sources) == 3
        assert pushed.aggregate_plan.fetch_sources == ()
        # Bit-identical, not approximately equal: both paths merge
        # partials in sorted source order.
        assert pushed.result == fetched.result
        assert pushed.result.groups == fetched.result.groups
        assert dict(pushed.result.groups) == EXPECTED_GROUPS

    def test_pushdown_matches_reference(self, analytic_federation):
        query = parse_query(AGG_SQL)
        answer = Mediator(analytic_federation, verify=False).answer_aggregate(
            query, pushdown="force"
        )
        expected = reference_aggregate(analytic_federation, query)
        assert answer.result == expected

    def test_pushdown_charges_aq_traffic(self, analytic_federation):
        mediator = Mediator(analytic_federation, verify=False)
        answer = mediator.answer_aggregate(AGG_SQL, pushdown="force")
        for source in analytic_federation:
            assert source.table.counters.aggregates == 1
        assert answer.aggregate_plan.estimated_cost > 0

    def test_vote_mode_forces_fetch(self, analytic_federation):
        mediator = Mediator(analytic_federation, verify="vote")
        answer = mediator.answer_aggregate(AGG_SQL, pushdown="force")
        assert answer.aggregate_plan.pushdown_sources == ()
        assert dict(answer.result.groups) == EXPECTED_GROUPS

    def test_cost_based_choice_is_result_invariant(self, analytic_federation):
        # Whatever mix of fetch and pushdown the per-source costing
        # picks, the merged result is the same.
        mediator = Mediator(analytic_federation, verify=False)
        answer = mediator.answer_aggregate(AGG_SQL, pushdown=True)
        assert len(answer.aggregate_plan.tasks) == 3
        assert all(t.estimated_cost > 0 for t in answer.aggregate_plan.tasks)
        assert dict(answer.result.groups) == EXPECTED_GROUPS


class TestVerification:
    def test_verify_catches_mismatch(self, dmv_federation, monkeypatch):
        mediator = Mediator(dmv_federation, verify=True)
        from repro.mediator import session as session_module

        def wrong_reference(federation, query):
            result = reference_aggregate(federation, query)
            return type(result)(
                group_by=result.group_by, specs=result.specs, groups=()
            )

        monkeypatch.setattr(
            session_module, "reference_aggregate", wrong_reference
        )
        with pytest.raises(ExecutionError):
            mediator.answer_aggregate(AGG_SQL)

    def test_rejects_plain_fusion_sql(self, dmv_federation):
        mediator = Mediator(dmv_federation, verify=True)
        with pytest.raises(Exception):
            mediator.answer_aggregate(
                "SELECT u1.L FROM U u1 WHERE u1.V = 'dui'"
            )
