"""Unit tests for the reference evaluator (the correctness oracle)."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.mediator.reference import (
    items_satisfying_anywhere,
    reference_answer,
    reference_answer_via_join,
)
from repro.query.fusion import FusionQuery
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    SyntheticConfig,
    build_synthetic,
    synthetic_query,
)


class TestDMV:
    def test_paper_answer(self, dmv):
        federation, query = dmv
        assert reference_answer(federation, query) == DMV_FIG1_ANSWER

    def test_join_oracle_agrees(self, dmv):
        federation, query = dmv
        assert reference_answer_via_join(federation, query) == (
            DMV_FIG1_ANSWER
        )

    def test_per_condition_sets(self, dmv):
        federation, query = dmv
        union_view = federation.union_view()
        dui_items, sp_items = items_satisfying_anywhere(union_view, query)
        assert dui_items == frozenset({"J55", "T80", "T21"})
        assert sp_items == frozenset({"T21", "J55", "T11", "S07"})

    def test_single_condition_query(self, dmv_federation):
        query = FusionQuery.from_strings("L", ["V = 'dui'"])
        assert reference_answer(dmv_federation, query) == frozenset(
            {"J55", "T80", "T21"}
        )

    def test_unsatisfiable_query(self, dmv_federation):
        query = FusionQuery.from_strings("L", ["V = 'dui'", "V = 'nope'"])
        assert reference_answer(dmv_federation, query) == frozenset()

    def test_validates_schema(self, dmv_federation):
        query = FusionQuery.from_strings("Z", ["V = 'dui'"])
        with pytest.raises(QueryError):
            reference_answer(dmv_federation, query)


class TestOraclesAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_intersection_and_join_oracles_agree_on_synthetic(self, seed):
        config = SyntheticConfig(n_sources=3, n_entities=120, seed=seed)
        federation = build_synthetic(config)
        query = synthetic_query(config, m=3, seed=seed + 50)
        assert reference_answer(federation, query) == (
            reference_answer_via_join(federation, query)
        )
