"""Unit tests for the Mediator facade."""

from __future__ import annotations

import pytest

from repro.errors import NotAFusionQueryError
from repro.mediator.session import Mediator
from repro.optimize.filter import FilterOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1
from repro.sources.statistics import SampledStatistics


class TestAnswer:
    def test_structured_query(self, dmv_mediator, dmv_query):
        answer = dmv_mediator.answer(dmv_query)
        assert answer.items == DMV_FIG1_ANSWER
        assert answer.verified is True

    def test_sql_query(self, dmv_mediator):
        sql = (
            "SELECT u1.L FROM U u1, U u2 "
            "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
        )
        answer = dmv_mediator.answer(sql)
        assert answer.items == DMV_FIG1_ANSWER

    def test_bad_sql_rejected(self, dmv_mediator):
        with pytest.raises(NotAFusionQueryError):
            dmv_mediator.answer("SELECT * FROM U")

    def test_query_validated_against_schema(self, dmv_mediator):
        sql = (
            "SELECT u1.L FROM U u1, U u2 "
            "WHERE u1.L = u2.L AND u1.ZZZ = 'x' AND u2.V = 'sp'"
        )
        with pytest.raises(Exception):
            dmv_mediator.answer(sql)

    def test_summary_mentions_costs(self, dmv_mediator, dmv_query):
        answer = dmv_mediator.answer(dmv_query)
        assert "estimated cost" in answer.summary()
        assert "actual cost" in answer.summary()


class TestConfiguration:
    def test_custom_optimizer(self, dmv_federation, dmv_query):
        mediator = Mediator(
            dmv_federation, optimizer=FilterOptimizer(), verify=True
        )
        answer = mediator.answer(dmv_query)
        assert answer.optimization.optimizer == "FILTER"
        assert answer.items == DMV_FIG1_ANSWER

    def test_custom_statistics(self, dmv_query):
        federation, __ = dmv_fig1()
        mediator = Mediator(
            federation,
            statistics=SampledStatistics(federation, fraction=0.5, seed=0),
            optimizer=SJAOptimizer(),
            verify=True,
        )
        answer = mediator.answer(dmv_query)
        assert answer.items == DMV_FIG1_ANSWER

    def test_plan_without_execution(self, dmv_mediator, dmv_query):
        result = dmv_mediator.plan(dmv_query)
        assert result.plan.result
        # planning must not touch the sources
        assert dmv_mediator.federation.total_messages() == 0

    def test_explain_text(self, dmv_mediator, dmv_query):
        text = dmv_mediator.explain(dmv_query)
        assert "estimated total cost" in text
        assert "c1" in text


class TestPlanCache:
    def test_repeated_queries_hit_the_cache(self, dmv_federation, dmv_query):
        mediator = Mediator(dmv_federation, cache_plans=True, verify=True)
        first = mediator.answer(dmv_query)
        second = mediator.answer(dmv_query)
        assert mediator.plan_cache_hits == 1
        assert first.plan == second.plan
        assert second.items == DMV_FIG1_ANSWER

    def test_different_queries_miss(self, dmv_federation, dmv_query):
        from repro.query.fusion import FusionQuery

        mediator = Mediator(dmv_federation, cache_plans=True)
        mediator.plan(dmv_query)
        mediator.plan(FusionQuery.from_strings("L", ["V = 'sp'"]))
        assert mediator.plan_cache_hits == 0

    def test_cache_off_by_default(self, dmv_mediator, dmv_query):
        dmv_mediator.plan(dmv_query)
        dmv_mediator.plan(dmv_query)
        assert dmv_mediator.plan_cache_hits == 0

    def test_clear_plan_cache(self, dmv_federation, dmv_query):
        mediator = Mediator(dmv_federation, cache_plans=True)
        mediator.plan(dmv_query)
        mediator.clear_plan_cache()
        mediator.plan(dmv_query)
        assert mediator.plan_cache_hits == 0

    def test_explain_also_uses_cache(self, dmv_federation, dmv_query):
        mediator = Mediator(dmv_federation, cache_plans=True)
        mediator.plan(dmv_query)
        mediator.explain(dmv_query)
        assert mediator.plan_cache_hits == 1


class TestTwoPhase:
    def test_fetch_records_returns_full_rows(self, dmv_mediator, dmv_query):
        answer = dmv_mediator.answer(dmv_query)
        records = dmv_mediator.fetch_records(answer.items)
        assert records.items() == DMV_FIG1_ANSWER
        # J55 has one row each at R1/R2; T21 one each at R1/R2/R3 -> 5 rows.
        assert len(records) == 5

    def test_fetch_records_charges_traffic(self, dmv_mediator, dmv_query):
        answer = dmv_mediator.answer(dmv_query)
        before = dmv_mediator.federation.total_traffic_cost()
        dmv_mediator.fetch_records(answer.items)
        assert dmv_mediator.federation.total_traffic_cost() > before


class TestRuntimeBackend:
    def test_unknown_backend_rejected(self, dmv_federation):
        with pytest.raises(ValueError, match="unknown backend"):
            Mediator(dmv_federation, backend="parallel")

    def test_runtime_backend_answers_and_attaches_trace(
        self, dmv_federation, dmv_query
    ):
        mediator = Mediator(dmv_federation, backend="runtime", verify=True)
        answer = mediator.answer(dmv_query)
        assert answer.items == DMV_FIG1_ANSWER
        assert answer.runtime is not None
        assert answer.runtime.makespan_s > 0
        assert "makespan" in answer.summary()

    def test_sequential_backend_has_no_runtime_result(
        self, dmv_mediator, dmv_query
    ):
        answer = dmv_mediator.answer(dmv_query)
        assert answer.runtime is None
        assert "makespan" not in answer.summary()

    def test_degraded_run_does_not_fail_verification(
        self, dmv_federation, dmv_query
    ):
        from repro.runtime import FaultInjector, FaultProfile, RetryPolicy

        mediator = Mediator(
            dmv_federation,
            backend="runtime",
            verify=True,
            faults=FaultInjector({"R1": FaultProfile.flaky(1.0)}, seed=0),
            retry_policy=RetryPolicy.no_retry(),
        )
        answer = mediator.answer(dmv_query)  # must not raise
        assert answer.verified is False
        assert answer.runtime is not None
        assert answer.runtime.degraded_steps
        assert answer.items <= DMV_FIG1_ANSWER

    def test_execute_concurrent_entry_point(self, dmv_mediator, dmv_query):
        optimization = dmv_mediator.plan(dmv_query)
        result = dmv_mediator.execute_concurrent(optimization.plan)
        assert result.items == DMV_FIG1_ANSWER
        assert result.complete


class TestResilientBackend:
    def make_mediator(self, **kwargs):
        from repro.runtime.faults import FaultInjector, FaultProfile
        from repro.runtime.policy import RetryPolicy
        from repro.sources.generators import replicate_federation

        federation, __ = dmv_fig1()
        federation = replicate_federation(federation, 2)
        return Mediator(
            federation,
            backend="runtime",
            faults=FaultInjector({"R1": FaultProfile.flaky(1.0)}, seed=7),
            retry_policy=RetryPolicy.no_retry(),
            **kwargs,
        )

    def test_replanning_recovers_dead_source(self, dmv_query):
        mediator = self.make_mediator(replan=2)
        answer = mediator.answer(dmv_query)
        assert answer.items == DMV_FIG1_ANSWER
        assert answer.resilient is not None
        assert answer.resilient.replans >= 1
        assert "replan round" in answer.summary()

    def test_hedging_recovers_in_flight(self, dmv_query):
        mediator = self.make_mediator(hedge_delay_s=2.0)
        answer = mediator.answer(dmv_query)
        assert answer.items == DMV_FIG1_ANSWER
        assert answer.resilient is None  # no replanning configured
        assert answer.runtime.recovered_steps
        assert "recovered" in answer.summary()

    def test_breaker_true_means_default_config(self, dmv_query):
        mediator = self.make_mediator(breaker=True)
        assert mediator.runtime.health.enabled
        mediator = self.make_mediator(breaker=False)
        assert not mediator.runtime.health.enabled

    def test_health_registry_shared_with_replanner(self, dmv_query):
        mediator = self.make_mediator(replan=2, breaker=True)
        answer = mediator.answer(dmv_query)
        assert answer.items == DMV_FIG1_ANSWER
        # The replanner's engine and the mediator's plain engine share
        # one registry, so the mediator-level view saw the failures.
        assert mediator.replanner.engine.health is mediator.runtime.health
        assert mediator.runtime.health.health_of("R1").failures > 0

    def test_negative_replan_rejected(self):
        from repro.errors import CostModelError

        federation, __ = dmv_fig1()
        with pytest.raises(CostModelError):
            Mediator(federation, backend="runtime", replan=-1)

    def test_masked_resilient_run_passes_verification(self, dmv_query):
        # Both R1 and its mirror dead: the final round plans around the
        # whole group and completes, but ``masked`` explains the losses
        # so verify=True must not raise.
        from repro.runtime.faults import FaultInjector, FaultProfile
        from repro.runtime.policy import RetryPolicy
        from repro.sources.generators import replicate_federation

        federation, __ = dmv_fig1()
        federation = replicate_federation(federation, 2)
        mediator = Mediator(
            federation,
            backend="runtime",
            verify=True,
            faults=FaultInjector(
                {
                    "R1": FaultProfile.flaky(1.0),
                    "R1~1": FaultProfile.flaky(1.0),
                },
                seed=7,
            ),
            retry_policy=RetryPolicy.no_retry(),
            replan=2,
        )
        answer = mediator.answer(dmv_query)
        assert answer.verified is False
        assert answer.items < DMV_FIG1_ANSWER
        assert answer.resilient.masked
