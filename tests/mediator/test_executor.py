"""Unit tests for the plan executor."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.mediator.executor import ExecutionResult, Executor
from repro.plans.builder import build_filter_plan, build_staged_plan, uniform_choices
from repro.plans.operations import (
    DifferenceOp,
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1
from repro.sources.remote import FailureInjector


class TestBasicExecution:
    def test_filter_plan_answer(self, dmv):
        federation, query = dmv
        plan = build_filter_plan(query, federation.source_names)
        result = Executor(federation).execute(plan)
        assert result.items == DMV_FIG1_ANSWER

    def test_semijoin_plan_answer(self, dmv):
        federation, query = dmv
        plan = build_staged_plan(
            query, [0, 1], uniform_choices(2, 3, [False, True]),
            federation.source_names,
        )
        result = Executor(federation).execute(plan)
        assert result.items == DMV_FIG1_ANSWER

    def test_all_plan_steps_traced(self, dmv):
        federation, query = dmv
        plan = build_filter_plan(query, federation.source_names)
        result = Executor(federation).execute(plan)
        assert len(result.steps) == len(plan)
        assert [step.step for step in result.steps] == list(
            range(1, len(plan) + 1)
        )

    def test_actual_cost_matches_traffic_logs(self, dmv):
        federation, query = dmv
        federation.reset_traffic()
        plan = build_filter_plan(query, federation.source_names)
        result = Executor(federation).execute(plan)
        assert result.total_cost == pytest.approx(
            federation.total_traffic_cost()
        )
        assert result.total_messages == federation.total_messages()

    def test_local_steps_cost_nothing(self, dmv):
        federation, query = dmv
        plan = build_filter_plan(query, federation.source_names)
        result = Executor(federation).execute(plan)
        for step in result.steps:
            if not step.operation.remote:
                assert step.actual_cost == 0.0
                assert step.messages == 0

    def test_cost_by_source(self, dmv):
        federation, query = dmv
        plan = build_filter_plan(query, federation.source_names)
        result = Executor(federation).execute(plan)
        per_source = result.cost_by_source()
        assert set(per_source) == set(federation.source_names)
        assert sum(per_source.values()) == pytest.approx(result.total_cost)


class TestExtendedOps:
    def test_load_and_local_selection(self, dmv):
        federation, query = dmv
        c1, c2 = query.conditions
        plan = Plan(
            [
                LoadOp("T1", "R1"),
                LocalSelectionOp("A", c1, "T1"),
                LocalSelectionOp("B", c2, "T1"),
                IntersectOp("X", ("A", "B")),
            ],
            result="X",
        )
        result = Executor(federation).execute(plan)
        # Only R1 locally: nobody has both dui and sp in R1 alone.
        assert result.items == frozenset()
        assert result.total_messages == 1  # the single lq

    def test_difference_op(self, dmv):
        federation, query = dmv
        c1, c2 = query.conditions
        plan = Plan(
            [
                SelectionOp("A", c1, "R1"),
                SelectionOp("B", c2, "R1"),
                DifferenceOp("D", "A", "B"),
                UnionOp("X", ("D",)),
            ],
            result="X",
        )
        result = Executor(federation).execute(plan)
        assert result.items == frozenset({"J55", "T80"})  # dui-only at R1

    def test_semijoin_against_computed_register(self, dmv):
        federation, query = dmv
        c1, c2 = query.conditions
        plan = Plan(
            [
                SelectionOp("A", c1, "R1"),
                SemijoinOp("B", c2, "R2", "A"),
                UnionOp("X", ("B",)),
            ],
            result="X",
        )
        result = Executor(federation).execute(plan)
        assert result.items == frozenset({"J55"})


class TestRetries:
    def test_transient_failures_retried(self, dmv_query):
        federation, query = dmv_fig1()
        federation.source("R1").failure = FailureInjector(
            failure_rate=1.0, seed=0, max_failures=2
        )
        plan = build_filter_plan(query, federation.source_names)
        result = Executor(federation, max_retries=3).execute(plan)
        assert result.items == DMV_FIG1_ANSWER
        assert any(step.retries > 0 for step in result.steps)

    def test_exhausted_retries_raise(self):
        federation, query = dmv_fig1()
        federation.source("R1").failure = FailureInjector(
            failure_rate=1.0, seed=0
        )
        plan = build_filter_plan(query, federation.source_names)
        with pytest.raises(ExecutionError, match="retries"):
            Executor(federation, max_retries=2).execute(plan)


class TestTraceRendering:
    def test_trace_text(self, dmv):
        federation, query = dmv
        plan = build_filter_plan(query, federation.source_names)
        result = Executor(federation).execute(plan)
        text = result.trace(plan)
        assert "sq(c1, R1)" in text
        assert "answer: 2 items" in text


class TestResultSummary:
    def test_summary_and_repr(self):
        federation, query = dmv_fig1()
        plan = build_filter_plan(query, federation.source_names)
        result = Executor(federation).execute(plan)
        summary = result.summary()
        assert "2 items" in summary
        assert f"{len(result.steps)} steps" in summary
        assert "6 messages" in summary
        assert "0 retries" in summary
        assert repr(result) == f"ExecutionResult({summary})"


class TestResilienceCounters:
    """summary() regression: the resilience counters appended in the
    observability pass must show up when nonzero and stay silent when
    zero, leaving the base text untouched."""

    def test_zero_counters_keep_the_base_summary(self):
        result = ExecutionResult(items=frozenset())
        summary = result.summary()
        assert summary == (
            "0 items in 0 steps; cost 0.0, 0 messages, 0 retries, "
            "0.000s on the wire"
        )

    def test_nonzero_counters_are_appended_in_order(self):
        result = ExecutionResult(
            items=frozenset({"a"}),
            hedges=2,
            recovered=1,
            degraded=3,
            breaker_trips=1,
            replans=2,
        )
        summary = result.summary()
        assert summary.endswith(
            "; 2 hedges, 1 recovered, 3 degraded, 1 breaker trips, "
            "2 replans"
        )

    def test_partial_counters_skip_zero_entries(self):
        result = ExecutionResult(items=frozenset(), hedges=1, replans=4)
        summary = result.summary()
        assert summary.endswith("; 1 hedges, 4 replans")
        assert "degraded" not in summary
        assert "breaker" not in summary
