"""Tests for the mediator plan cache (repro.mediator.plan_cache).

The headline guarantee: a repeated fusion query is served with *zero*
optimizer invocations, while any statistics refresh (an
:class:`ObservedStatistics` mining pass) cleanly invalidates the stale
entry.
"""

from __future__ import annotations

import pytest

from repro.errors import OptimizationError
from repro.mediator.executor import Executor
from repro.mediator.plan_cache import (
    DEFAULT_CAPACITY,
    PlanCache,
    query_fingerprint,
    statistics_fingerprint,
)
from repro.mediator.session import Mediator
from repro.obs.recorder import Recorder
from repro.optimize.sja import SJAOptimizer
from repro.plans.builder import build_filter_plan
from repro.query.fusion import FusionQuery
from repro.relational.conditions import Comparison
from repro.sources.generators import dmv_fig1
from repro.sources.observed import ObservedStatistics
from repro.sources.statistics import ExactStatistics


class CountingSJA(SJAOptimizer):
    """SJA optimizer that counts how often optimize() actually runs."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.calls = 0

    def optimize(self, query, source_names, cost_model, estimator):
        self.calls += 1
        return super().optimize(query, source_names, cost_model, estimator)


def warmup_events(federation, query):
    recorder = Recorder(metrics=None)
    plan = build_filter_plan(query, federation.source_names, "warm-up")
    federation.reset_traffic()
    Executor(federation, recorder=recorder).execute(plan)
    return recorder.events


# --- the headline guarantee ----------------------------------------------


def test_repeated_query_skips_the_optimizer():
    federation, query = dmv_fig1()
    optimizer = CountingSJA()
    mediator = Mediator(federation, optimizer=optimizer, plan_cache=True)
    first = mediator.answer(query)
    second = mediator.answer(query)
    assert optimizer.calls == 1
    assert first.items == second.items
    assert mediator.plan_cache.hits == 1
    assert mediator.plan_cache.misses == 1
    assert mediator.plan_cache_hits == 1


def test_condition_order_shares_an_entry():
    federation, query = dmv_fig1()
    permuted = FusionQuery(
        query.merge_attribute, tuple(reversed(query.conditions))
    )
    assert query_fingerprint(query) == query_fingerprint(permuted)
    optimizer = CountingSJA()
    mediator = Mediator(federation, optimizer=optimizer, plan_cache=True)
    mediator.plan(query)
    mediator.plan(permuted)
    assert optimizer.calls == 1
    assert mediator.plan_cache.hits == 1


def test_changed_constant_misses():
    federation, query = dmv_fig1()
    other = FusionQuery(
        query.merge_attribute,
        (Comparison("V", "=", "parking"),) + query.conditions[1:],
    )
    assert query_fingerprint(query) != query_fingerprint(other)
    optimizer = CountingSJA()
    mediator = Mediator(federation, optimizer=optimizer, plan_cache=True)
    mediator.plan(query)
    mediator.plan(other)
    assert optimizer.calls == 2


# --- invalidation on statistics refresh ----------------------------------


def test_observed_statistics_refresh_invalidates():
    federation, query = dmv_fig1()
    statistics = ObservedStatistics(universe=10)
    optimizer = CountingSJA()
    mediator = Mediator(
        federation,
        statistics=statistics,
        optimizer=optimizer,
        plan_cache=True,
    )
    mediator.plan(query)
    mediator.plan(query)
    assert optimizer.calls == 1

    before = statistics.fingerprint()
    mined = statistics.observe(warmup_events(federation, query))
    assert mined > 0
    assert statistics.fingerprint() != before

    mediator.plan(query)  # stale entry must not be served
    assert optimizer.calls == 2
    mediator.plan(query)  # the refreshed plan caches again
    assert optimizer.calls == 2


def test_fruitless_observe_keeps_the_fingerprint():
    statistics = ObservedStatistics()
    before = statistics.fingerprint()
    assert statistics.observe([]) == 0
    assert statistics.fingerprint() == before


def test_immutable_providers_fingerprint_by_identity():
    federation, __ = dmv_fig1()
    exact = ExactStatistics(federation)
    assert statistics_fingerprint(exact) == statistics_fingerprint(exact)
    assert statistics_fingerprint(exact) != statistics_fingerprint(
        ExactStatistics(federation)
    )


# --- LRU mechanics --------------------------------------------------------


def queries_for(federation, n):
    violations = ["dui", "sp", "parking", "reckless"]
    return [
        FusionQuery("L", (Comparison("V", "=", violations[i]),))
        for i in range(n)
    ]


def test_lru_evicts_the_coldest_entry():
    federation, __ = dmv_fig1()
    statistics = ExactStatistics(federation)
    sources = federation.source_names
    cache = PlanCache(capacity=2)
    q1, q2, q3 = queries_for(federation, 3)
    results = {}
    for query in (q1, q2, q3):
        optimization = SJAOptimizer().optimize(
            query,
            sources,
            Mediator(federation).cost_model,
            Mediator(federation).estimator,
        )
        results[query] = optimization
    cache.put(q1, sources, statistics, results[q1])
    cache.put(q2, sources, statistics, results[q2])
    assert cache.get(q1, sources, statistics) is results[q1]  # refresh q1
    cache.put(q3, sources, statistics, results[q3])  # evicts q2, not q1
    assert len(cache) == 2
    assert cache.get(q2, sources, statistics) is None
    assert cache.get(q1, sources, statistics) is results[q1]
    assert cache.get(q3, sources, statistics) is results[q3]


def test_clear_resets_entries_and_counters():
    federation, query = dmv_fig1()
    mediator = Mediator(federation, plan_cache=True)
    mediator.plan(query)
    mediator.plan(query)
    assert len(mediator.plan_cache) == 1
    assert mediator.plan_cache.hit_rate == 0.5
    mediator.clear_plan_cache()
    assert len(mediator.plan_cache) == 0
    assert mediator.plan_cache.hits == 0
    assert mediator.plan_cache.misses == 0
    assert mediator.plan_cache.hit_rate == 0.0


def test_capacity_must_be_positive():
    with pytest.raises(OptimizationError, match="capacity"):
        PlanCache(capacity=0)


# --- mediator wiring ------------------------------------------------------


def test_mediator_coerces_plan_cache_argument():
    federation, __ = dmv_fig1()
    assert Mediator(federation).plan_cache is None
    assert Mediator(federation, plan_cache=False).plan_cache is None
    enabled = Mediator(federation, plan_cache=True)
    assert enabled.plan_cache.capacity == DEFAULT_CAPACITY
    sized = Mediator(federation, plan_cache=4)
    assert sized.plan_cache.capacity == 4
    legacy = Mediator(federation, cache_plans=True)
    assert legacy.plan_cache is not None
    assert legacy.cache_plans


def test_summary_reports_usage():
    federation, query = dmv_fig1()
    mediator = Mediator(federation, plan_cache=PlanCache(capacity=8))
    mediator.plan(query)
    mediator.plan(query)
    summary = mediator.plan_cache.summary()
    assert "1/8 entries" in summary
    assert "1 hits / 1 misses" in summary
