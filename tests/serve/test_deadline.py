"""End-to-end deadlines on the serving tier.

Covers the deadline primitives (:mod:`repro.serve.deadline`), shedding
at admission, queue-expiry and execution-cut partial answers, the
deadline counters and events, replay determinism, and the anytime
planning budget as seen from a ticket.
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlineInfeasibleError
from repro.serve import (
    Deadline,
    MediatorService,
    QueueWaitEstimator,
    TenantSpec,
    WorkloadSpec,
    generate_arrivals,
    run_workload,
    valid_deadline,
)
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1

DMV_SQL = (
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
)

TENANTS = [TenantSpec("bronze", weight=1.0), TenantSpec("gold", weight=3.0)]


def overload_arrivals(count=24, deadline_s=1.0, seed=2100):
    spec = WorkloadSpec(
        queries=(DMV_SQL,),
        tenants=tuple(TENANTS),
        count=count,
        rate_qps=50.0,
        seed=seed,
        deadline_s=deadline_s,
    )
    return generate_arrivals(spec)


def overloaded_service(federation, shed_policy, seed=2100, **kwargs):
    return MediatorService(
        federation,
        mode="deterministic",
        tenants=TENANTS,
        pool_slots=1,
        queue_limit=64,
        seed=seed,
        shed_policy=shed_policy,
        **kwargs,
    )


class TestDeadlinePrimitives:
    def test_valid_deadline(self):
        assert valid_deadline(1.0)
        assert valid_deadline(1e-6)
        assert not valid_deadline(0.0)
        assert not valid_deadline(-1.0)
        assert not valid_deadline(float("inf"))
        assert not valid_deadline(float("nan"))

    def test_deadline_expiry_boundary(self):
        # Reaching the deadline exactly is on time; only strictly
        # after it counts as expired.
        deadline = Deadline(submitted_s=1.0, budget_s=2.0)
        assert deadline.expires_at_s == 3.0
        assert deadline.remaining_s(1.0) == 2.0
        assert not deadline.expired(3.0)
        assert deadline.expired(3.1)

    def test_estimator_falls_back_tenant_to_global_to_zero(self):
        estimator = QueueWaitEstimator(width=2)
        assert estimator.mean_service_s("gold") == 0.0
        estimator.observe("bronze", 2.0)
        assert estimator.mean_service_s("gold") == 2.0  # global fallback
        estimator.observe("gold", 4.0)
        assert estimator.mean_service_s("gold") == 4.0

    def test_estimator_ignores_unusable_samples(self):
        estimator = QueueWaitEstimator()
        estimator.observe("t", float("nan"))
        estimator.observe("t", float("inf"))
        estimator.observe("t", -1.0)
        assert estimator.mean_service_s("t") == 0.0

    def test_estimator_prediction_scales_with_backlog_and_width(self):
        estimator = QueueWaitEstimator(width=2)
        estimator.observe("t", 1.0)
        # backlog/width queue drains plus the query's own service time.
        assert estimator.predict_completion_s("t", backlog=4) == pytest.approx(
            4 / 2 * 1.0 + 1.0
        )
        # A known plan makespan longer than the mean dominates the tail.
        assert estimator.predict_completion_s(
            "t", backlog=0, plan_makespan_s=3.0
        ) == pytest.approx(3.0)


class TestAdmissionShedding:
    def test_unusable_deadline_is_refused_outright(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="deterministic")
        for bad in (0.0, -1.0, float("inf")):
            with pytest.raises(DeadlineInfeasibleError) as excinfo:
                service.submit(DMV_SQL, deadline_s=bad)
            assert excinfo.value.reason == "deadline"
        assert service.admission.rejected_total["deadline"] == 3
        sheds = service.recorder.events.of_type("shed")
        assert len(sheds) == 3
        assert {e.fields["reason"] for e in sheds} == {"invalid"}

    def test_infeasible_deadline_is_shed_with_prediction(
        self, dmv_federation
    ):
        service = overloaded_service(dmv_federation, "deadline")
        report = run_workload(service, overload_arrivals())
        assert report.shed_deadline > 0
        assert report.deadline_misses == 0
        sheds = service.recorder.events.of_type("shed")
        assert sheds
        for event in sheds:
            assert event.fields["reason"] == "infeasible"
            assert event.fields["predicted"] > event.fields["deadline"]

    def test_shed_policy_none_admits_everything(self, dmv_federation):
        service = overloaded_service(dmv_federation, "none")
        report = run_workload(service, overload_arrivals())
        assert report.shed_deadline == 0
        assert report.completed == report.submitted

    def test_generous_deadline_answers_in_full(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="deterministic")
        ticket = service.submit(DMV_SQL, deadline_s=1e6)
        service.run_until_idle()
        assert ticket.status == "done"
        assert ticket.items == DMV_FIG1_ANSWER
        assert not ticket.partial
        assert not ticket.deadline_missed
        assert service.deadline_met_count == 1
        assert service.deadline_miss_count == 0


class TestGracefulDegradation:
    def test_execution_cut_returns_partial_subset(self, dmv_federation):
        # A deadline shorter than the query's makespan: the engine cuts
        # execution at the budget and the ticket carries a partial
        # answer, never an exception and never extra tuples.
        baseline = MediatorService(dmv_federation, mode="deterministic")
        full = baseline.submit(DMV_SQL)
        baseline.run_until_idle()
        budget = full.latency_s / 2
        service = MediatorService(
            dmv_federation, mode="deterministic", shed_policy="none"
        )
        ticket = service.submit(DMV_SQL, deadline_s=budget)
        service.run_until_idle()
        assert ticket.status == "done"
        assert ticket.partial
        assert ticket.incomplete_conditions
        assert set(ticket.items) <= set(full.items)
        assert not ticket.deadline_missed
        cuts = service.recorder.events.of_type("deadline")
        assert [e.fields["stage"] for e in cuts] == ["execution"]

    def test_queue_expiry_completes_as_empty_partial(self, dmv_federation):
        # Under overload with shedding off, queries whose budget dies
        # in the queue still complete — empty, partial, counted missed.
        service = overloaded_service(dmv_federation, "none")
        report = run_workload(service, overload_arrivals())
        assert report.failed == 0
        missed = [
            t
            for t in service.tickets
            if t.status == "done" and t.deadline_missed
        ]
        assert missed
        for ticket in missed:
            assert ticket.partial
            assert ticket.items == frozenset()
        stages = {
            e.fields["stage"]
            for e in service.recorder.events.of_type("deadline")
        }
        assert "queue" in stages

    def test_workload_report_deadline_columns(self, dmv_federation):
        service = overloaded_service(dmv_federation, "none")
        report = run_workload(service, overload_arrivals())
        assert report.deadline_misses > 0
        assert report.partial_answers > 0
        assert report.shed_queue == report.rejected.get("queue_full", 0)
        assert report.shed_quota == report.rejected.get("quota", 0)
        assert "deadlines:" in report.summary()


class TestReplayDeterminism:
    def test_same_seed_replays_byte_identically(self, dmv_federation):
        arrivals = overload_arrivals()
        streams = []
        for __ in range(2):
            service = overloaded_service(dmv_federation, "deadline")
            run_workload(service, arrivals)
            streams.append(service.recorder.events.to_jsonl())
        assert streams[0] == streams[1]
        assert '"type":"shed"' in streams[0]
        assert '"type":"deadline"' in streams[0]


class TestAnytimePlanning:
    def test_planning_budget_flag_reaches_the_ticket(self, dmv_federation):
        service = MediatorService(
            dmv_federation,
            mode="deterministic",
            planning_budget=1,
            plan_cache=False,
        )
        ticket = service.submit(DMV_SQL)
        service.run_until_idle()
        assert ticket.status == "done"
        assert ticket.planning_budget_exhausted
        assert ticket.items == DMV_FIG1_ANSWER

    def test_generous_planning_budget_not_flagged(self, dmv_federation):
        service = MediatorService(
            dmv_federation,
            mode="deterministic",
            planning_budget=10_000,
            plan_cache=False,
        )
        ticket = service.submit(DMV_SQL)
        service.run_until_idle()
        assert not ticket.planning_budget_exhausted


class TestThreadMode:
    def test_deadlines_in_thread_mode(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", workers=2, tenants=TENANTS
        )
        try:
            with pytest.raises(DeadlineInfeasibleError):
                service.submit(DMV_SQL, deadline_s=-1.0, tenant="gold")
            ticket = service.submit(DMV_SQL, deadline_s=1e6, tenant="gold")
            service.drain()
            assert ticket.status == "done"
            assert ticket.items == DMV_FIG1_ANSWER
            assert not ticket.deadline_missed
            assert service.deadline_met_count == 1
        finally:
            service.close()
