"""Integration tests for MediatorService in both execution modes."""

from __future__ import annotations

import pytest

from repro.errors import (
    QueueFullError,
    QuotaExceededError,
    ServiceClosedError,
    ServiceError,
    UnknownTenantError,
)
from repro.obs.events import EventLog
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.runtime.faults import FaultProfile
from repro.serve import (
    ChurnWave,
    MediatorService,
    QueryTicket,
    TenantSpec,
)
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1
from repro.sources.observed import ObservedStatistics

DMV_SQL = (
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
)


class CountingOptimizer(SJAPlusOptimizer):
    """SJA+ that counts how often the search actually runs."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def optimize(self, *args, **kwargs):
        self.calls += 1
        return super().optimize(*args, **kwargs)


class TestDeterministicMode:
    def test_single_query_answers_correctly(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="deterministic")
        ticket = service.submit(DMV_SQL)
        service.run_until_idle()
        assert ticket.status == "done"
        assert ticket.items == DMV_FIG1_ANSWER
        assert ticket.latency_s > 0

    def test_concurrent_in_flight_queries(self, dmv_federation):
        """Four queries submitted together overlap on the virtual clock."""
        service = MediatorService(
            dmv_federation, mode="deterministic", pool_slots=4, queue_limit=8
        )
        tickets = [service.submit(DMV_SQL, at_s=0.0) for __ in range(4)]
        service.run_until_idle()
        assert all(t.status == "done" for t in tickets)
        assert service.max_in_flight >= 4

    def test_shared_plan_cache_skips_optimizer(self, dmv_federation):
        """Repeated queries hit the shared cache: one optimization total."""
        optimizer = CountingOptimizer()
        service = MediatorService(
            dmv_federation,
            mode="deterministic",
            mediator_options={"optimizer": optimizer},
        )
        for i in range(5):
            service.submit(DMV_SQL, at_s=float(i))
        service.run_until_idle()
        assert optimizer.calls == 1
        assert service.plan_cache.hits == 4
        assert service.plan_cache.misses == 1

    def test_shared_health_registry_accumulates_across_queries(
        self, dmv_federation
    ):
        service = MediatorService(
            dmv_federation,
            mode="deterministic",
            faults={"R2": FaultProfile.flaky(1.0)},
            breaker=True,
            seed=3,
        )
        assert service._det_mediator.runtime.health is service.health
        for i in range(5):
            service.submit(DMV_SQL, at_s=float(i * 100))
        service.run_until_idle()
        snap = service.health.snapshot()
        # Evidence from several queries accumulated in one registry,
        # and the always-failing source tripped its shared breaker.
        assert snap["R2"]["failures"] >= 3
        assert snap["R2"]["times_opened"] >= 1

    def test_backpressure_rejects_instead_of_deadlocking(
        self, dmv_federation
    ):
        service = MediatorService(
            dmv_federation, mode="deterministic",
            pool_slots=1, queue_limit=2,
        )
        admitted = [service.submit(DMV_SQL, at_s=0.0) for __ in range(3)]
        with pytest.raises(QueueFullError):
            service.submit(DMV_SQL, at_s=0.0)
        service.run_until_idle()
        assert [t.status for t in admitted] == ["done"] * 3
        assert service.admission.rejected_total == {"queue_full": 1}

    def test_quota_enforced_on_outstanding_queries(self, dmv_federation):
        service = MediatorService(
            dmv_federation,
            mode="deterministic",
            tenants=[TenantSpec("small", quota=1), TenantSpec("big")],
            pool_slots=8,
            queue_limit=8,
        )
        service.submit(DMV_SQL, tenant="small", at_s=0.0)
        with pytest.raises(QuotaExceededError):
            service.submit(DMV_SQL, tenant="small", at_s=0.0)
        service.submit(DMV_SQL, tenant="big", at_s=0.0)
        service.run_until_idle()
        service.submit(DMV_SQL, tenant="small")  # quota released
        service.run_until_idle()
        assert service.completed_count == 3

    def test_weighted_fairness_under_saturation(self, dmv_federation):
        """1:3 weights dispatch ~1:3 while the queue stays saturated."""
        service = MediatorService(
            dmv_federation,
            mode="deterministic",
            tenants=[
                TenantSpec("light", weight=1.0),
                TenantSpec("heavy", weight=3.0),
            ],
            pool_slots=1,  # serialize dispatch so order is observable
            queue_limit=32,
        )
        for __ in range(4):
            service.submit(DMV_SQL, tenant="light", at_s=0.0)
        for __ in range(12):
            service.submit(DMV_SQL, tenant="heavy", at_s=0.0)
        service.run_until_idle()
        order = [
            t.tenant
            for t in sorted(service.tickets, key=lambda t: t.dispatched_s)
        ]
        window = order[:12]
        # Expected ratio 3 heavy : 1 light, with slack for startup.
        assert 7 <= window.count("heavy") <= 10
        assert 2 <= window.count("light") <= 5

    def test_closed_service_rejects_submissions(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="deterministic")
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(DMV_SQL)

    def test_unknown_tenant_rejected(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="deterministic")
        with pytest.raises(UnknownTenantError):
            service.submit(DMV_SQL, tenant="nope")

    def test_past_arrival_rejected(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="deterministic")
        service.submit(DMV_SQL, at_s=5.0)
        with pytest.raises(ServiceError):
            service.submit(DMV_SQL, at_s=1.0)

    def test_mined_statistics_learn_across_queries(self, dmv_federation):
        statistics = ObservedStatistics()
        service = MediatorService(
            dmv_federation,
            mode="deterministic",
            statistics=statistics,
            mine_statistics=True,
        )
        before = statistics.fingerprint()
        service.submit(DMV_SQL, at_s=0.0)
        service.run_until_idle()
        assert statistics.observations > 0
        assert statistics.fingerprint() != before

    def test_event_stream_round_trips_through_schema(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="deterministic")
        service.submit(DMV_SQL)
        service.run_until_idle()
        text = service.recorder.events.to_jsonl()
        parsed = EventLog.from_jsonl(text)  # validates every record
        assert parsed.to_jsonl() == text
        phases = [e["phase"] for e in parsed.of_type("serve")]
        assert phases == ["admitted", "dispatched", "completed"]


def _run_replay(federation, seed):
    service = MediatorService(
        federation,
        mode="deterministic",
        seed=seed,
        pool_slots=2,
        queue_limit=8,
        tenants=[TenantSpec("a", weight=1.0), TenantSpec("b", weight=3.0)],
        faults=FaultProfile.flaky(0.2),
        churn=ChurnWave(0.5, 2.0, sources=("R2",), rate=0.6),
        breaker=True,
    )
    import random

    rng = random.Random(seed)
    clock = 0.0
    rejections = 0
    for __ in range(10):
        clock += rng.expovariate(4.0)
        tenant = "a" if rng.random() < 0.25 else "b"
        try:
            service.submit(DMV_SQL, tenant=tenant, at_s=clock)
        except QueueFullError:
            rejections += 1
    service.run_until_idle()
    answers = [
        (t.seq, t.status, tuple(sorted(t.items or ())))
        for t in service.tickets
    ]
    return service.recorder.events.to_jsonl(), answers, rejections


class TestDeterministicReplay:
    def test_same_seed_replays_byte_identically(self, dmv_federation):
        events1, answers1, rej1 = _run_replay(dmv_federation, seed=42)
        events2, answers2, rej2 = _run_replay(dmv_federation, seed=42)
        assert events1 == events2
        assert answers1 == answers2
        assert rej1 == rej2

    def test_different_seed_diverges(self, dmv_federation):
        events1, __, __ = _run_replay(dmv_federation, seed=42)
        events2, __, __ = _run_replay(dmv_federation, seed=43)
        assert events1 != events2


class TestThreadMode:
    def test_concurrent_execution_end_to_end(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", workers=3,
            pool_slots=4, queue_limit=32,
        )
        try:
            tickets = [service.submit(DMV_SQL) for __ in range(9)]
            service.drain(timeout_s=60.0)
        finally:
            service.close()
        assert all(t.status == "done" for t in tickets)
        assert all(t.items == DMV_FIG1_ANSWER for t in tickets)
        # Shared cache: at most one optimization per distinct worker
        # racing the first miss, then hits for everything else.
        assert service.plan_cache.hits >= 6

    def test_thread_mode_serving_metrics(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", workers=2, queue_limit=32
        )
        try:
            for __ in range(4):
                service.submit(DMV_SQL)
            service.drain(timeout_s=60.0)
        finally:
            service.close()
        completed = service.metrics.counter(
            "repro_serve_completed_total", tenant="default", outcome="ok"
        )
        assert completed.value == 4.0
        exported = service.metrics.to_json()
        assert any("repro_serve_latency_s" in key for key in exported)

    def test_thread_mode_backpressure(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", workers=1,
            pool_slots=1, queue_limit=1,
        )
        try:
            service.submit(DMV_SQL)
            saw_rejection = False
            for __ in range(50):
                try:
                    service.submit(DMV_SQL)
                except QueueFullError:
                    saw_rejection = True
                    break
            service.drain(timeout_s=60.0)
        finally:
            service.close()
        assert saw_rejection
        assert service.failed_count == 0

    def test_drain_is_thread_mode_only(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="deterministic")
        with pytest.raises(ServiceError):
            service.drain()

    def test_at_s_is_deterministic_mode_only(self, dmv_federation):
        service = MediatorService(dmv_federation, mode="threads", workers=1)
        try:
            with pytest.raises(ServiceError):
                service.submit(DMV_SQL, at_s=1.0)
        finally:
            service.close()

    def test_unknown_mode_rejected(self, dmv_federation):
        with pytest.raises(ServiceError):
            MediatorService(dmv_federation, mode="asyncio")


class TestUntrustedServing:
    """Data faults + verification + quarantine through the service."""

    def make_service(self, **kwargs):
        from repro.optimize import FilterOptimizer
        from repro.runtime.faults import DataFaultProfile
        from repro.sources.generators import replicate_federation

        federation, __ = dmv_fig1()
        federation = replicate_federation(federation, 2)
        liar = DataFaultProfile(stale_rate=0.6, corrupt_rate=1.0)
        service = MediatorService(
            federation,
            mode="deterministic",
            data_faults={f"R{i}~1": liar for i in (1, 2, 3)},
            mediator_options={
                "optimizer": FilterOptimizer(),
                "load_balance": True,
                "replan": 2,
            },
            **kwargs,
        )
        return service

    def test_verified_service_quarantines_liars_for_all_queries(self):
        service = self.make_service(verify="vote", quarantine=True)
        tickets = []
        for step in range(8):
            tickets.append(service.submit(DMV_SQL, at_s=float(step)))
            service.run_until_idle()
        assert all(t.status == "done" for t in tickets)
        quarantined = set(service.health.quarantined_names())
        assert quarantined
        assert all(name.endswith("~1") for name in quarantined)
        # Post-quarantine queries come back complete and exact.
        assert tickets[-1].items == DMV_FIG1_ANSWER

    def test_unverified_service_leaves_no_quality_evidence(self):
        service = self.make_service()
        for step in range(4):
            service.submit(DMV_SQL, at_s=float(step))
        service.run_until_idle()
        assert service.health.quarantined_names() == ()
        assert service.health.quality_of("R1~1").answers == 0

    def test_per_source_data_faults_merge_into_wire_profiles(self):
        from repro.runtime.faults import DataFaultProfile

        service = self.make_service(
            faults={"R1~1": FaultProfile.flaky(0.2)}
        )
        ticket = QueryTicket(seq=0, tenant="default", query=DMV_SQL)
        injector = service._injector_for(ticket)
        tampered = injector.profile_for("R1~1")
        assert tampered.transient_rate == 0.2
        assert isinstance(tampered.data, DataFaultProfile)
        assert injector.profile_for("R2~1").data is not None
        assert injector.profile_for("R1").data is None


class TestPlanningWallClock:
    """Satellite: thread mode arms wall clocks from measured latency."""

    def arm(self, service, deadline_s=None):
        from repro.obs import Recorder

        mediator = service._make_mediator(Recorder())
        ticket = QueryTicket(
            seq=0, tenant="default", query=DMV_SQL,
            submitted_s=0.0, deadline_s=deadline_s,
        )
        service._arm_planning(mediator, ticket, now_s=0.0)
        return mediator.planning_budget

    def test_thread_mode_arms_wall_clock_from_ewma(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", planning_budget=64
        )
        try:
            service._observe_plan_latency(0.05)
            budget = self.arm(service)
            assert budget.wall_clock_s is not None
            # Full pressure (empty queue): twice the observed EWMA.
            assert budget.wall_clock_s == pytest.approx(0.1)
        finally:
            service.close()

    def test_wall_clock_floor_survives_cache_hits(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", planning_budget=64
        )
        try:
            for __ in range(20):
                service._observe_plan_latency(1e-6)
            budget = self.arm(service)
            assert budget.wall_clock_s == 0.01
        finally:
            service.close()

    def test_unmeasured_thread_mode_arms_subsets_only(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", planning_budget=64
        )
        try:
            budget = self.arm(service)
            assert budget.max_subsets == 64
            assert budget.wall_clock_s is None
        finally:
            service.close()

    def test_deterministic_mode_never_arms_wall_clock(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="deterministic", planning_budget=64
        )
        service._observe_plan_latency(0.05)
        budget = self.arm(service)
        assert budget.max_subsets == 64
        assert budget.wall_clock_s is None

    def test_ewma_tracks_observed_latencies(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", planning_budget=64
        )
        try:
            service._observe_plan_latency(0.10)
            service._observe_plan_latency(0.20)
            # alpha = 0.3: 0.7 * 0.10 + 0.3 * 0.20
            assert service._plan_latency_ewma == pytest.approx(0.13)
        finally:
            service.close()

    def test_thread_mode_measures_latency_end_to_end(self, dmv_federation):
        service = MediatorService(
            dmv_federation, mode="threads", planning_budget=64, workers=2
        )
        try:
            ticket = service.submit(DMV_SQL)
            service.drain(timeout_s=30.0)
            assert ticket.items == DMV_FIG1_ANSWER
            assert service._plan_latency_ewma is not None
            assert service._plan_latency_ewma > 0.0
        finally:
            service.close()
