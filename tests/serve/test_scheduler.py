"""Unit tests for TenantSpec and the stride FairScheduler."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError, UnknownTenantError
from repro.serve.tenants import FairScheduler, TenantSpec


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("t")
        assert spec.weight == 1.0
        assert spec.quota is None

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("inf")])
    def test_bad_weight_rejected(self, weight):
        with pytest.raises(CostModelError):
            TenantSpec("t", weight=weight)

    def test_bad_quota_rejected(self):
        with pytest.raises(CostModelError):
            TenantSpec("t", quota=0)

    def test_empty_name_rejected(self):
        with pytest.raises(CostModelError):
            TenantSpec("")


class TestFairScheduler:
    def test_needs_tenants(self):
        with pytest.raises(CostModelError):
            FairScheduler([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CostModelError):
            FairScheduler([TenantSpec("a"), TenantSpec("a")])

    def test_unknown_tenant_push(self):
        sched = FairScheduler([TenantSpec("a")])
        with pytest.raises(UnknownTenantError):
            sched.push("nope", 1)

    def test_fifo_within_tenant(self):
        sched = FairScheduler([TenantSpec("a")])
        for i in range(5):
            sched.push("a", i)
        assert [sched.pop()[1] for __ in range(5)] == [0, 1, 2, 3, 4]

    def test_weighted_ratio_under_saturation(self):
        """Tenants with 1:3 weights are dispatched 1:3 over any
        saturated window."""
        sched = FairScheduler(
            [TenantSpec("a", weight=1.0), TenantSpec("b", weight=3.0)]
        )
        for i in range(30):
            sched.push("a", f"a{i}")
            sched.push("b", f"b{i}")
        first = [sched.pop()[0] for __ in range(24)]
        assert first.count("b") == 18
        assert first.count("a") == 6

    def test_deterministic_tie_break(self):
        """Equal weights and passes: name order decides, every run."""
        order1 = []
        order2 = []
        for out in (order1, order2):
            sched = FairScheduler([TenantSpec("z"), TenantSpec("a")])
            for i in range(3):
                sched.push("z", i)
                sched.push("a", i)
            while True:
                popped = sched.pop()
                if popped is None:
                    break
                out.append(popped[0])
        assert order1 == order2
        assert order1[0] == "a"

    def test_eligible_filter_skips_without_charging(self):
        sched = FairScheduler(
            [TenantSpec("a", weight=1.0), TenantSpec("b", weight=1.0)]
        )
        sched.push("a", "blocked")
        sched.push("b", "ok")
        tenant, item = sched.pop(eligible=lambda it: it != "blocked")
        assert (tenant, item) == ("b", "ok")
        # "a" was skipped, not charged: it still wins the next pop.
        sched.push("b", "later")
        assert sched.pop()[0] == "a"

    def test_pop_empty_returns_none(self):
        sched = FairScheduler([TenantSpec("a")])
        assert sched.pop() is None

    def test_len_and_pending(self):
        sched = FairScheduler([TenantSpec("a"), TenantSpec("b")])
        sched.push("a", 1)
        sched.push("a", 2)
        sched.push("b", 3)
        assert len(sched) == 3
        assert sched.pending("a") == 2
        assert sched.pending("b") == 1
