"""The columnar substrate must be invisible to traces and replays.

PR 10 rewired the data plane under the mediator; nothing downstream —
executed plans, recorded traces, serving-tier span trees — may change.
These tests run the same work with the substrate on and off and demand
byte-identical artifacts.
"""

from __future__ import annotations

import pytest

from repro.mediator.session import Mediator
from repro.relational import columnar
from repro.serve import MediatorService, WorkloadSpec, generate_arrivals, run_workload
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1

DMV_SQL = (
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
)


@pytest.fixture
def substrate_off():
    prev = columnar.set_columnar_enabled(False)
    yield
    columnar.set_columnar_enabled(prev)


def _single_query_artifacts() -> tuple:
    federation, query = dmv_fig1()
    mediator = Mediator(federation, verify=False)
    answer = mediator.answer(query)
    return (
        answer.items,
        answer.plan.pretty(),
        repr(answer.execution.steps),
        answer.summary(),
    )


def _serving_artifacts(seed: int = 77) -> tuple:
    federation, __ = dmv_fig1()
    service = MediatorService(federation, mode="deterministic", seed=seed)
    spec = WorkloadSpec(queries=(DMV_SQL,), count=8, rate_qps=5.0, seed=seed)
    report = run_workload(service, generate_arrivals(spec))
    return (
        report.completed,
        service.spans.to_chrome_json(),
        tuple(sorted(service.metrics.to_json().items())),
    )


def test_single_query_trace_is_byte_identical(substrate_off):
    off = _single_query_artifacts()
    prev = columnar.set_columnar_enabled(True)
    try:
        on = _single_query_artifacts()
    finally:
        columnar.set_columnar_enabled(prev)
    assert on == off
    assert on[0] == DMV_FIG1_ANSWER


def test_same_seed_serving_replay_is_byte_identical(substrate_off):
    off = _serving_artifacts()
    prev = columnar.set_columnar_enabled(True)
    try:
        on = _serving_artifacts()
    finally:
        columnar.set_columnar_enabled(prev)
    assert on[0] == off[0] == 8
    assert on[1] == off[1]
    assert on[2] == off[2]


def test_numpy_toggle_is_also_invisible():
    if not columnar.numpy_available():
        pytest.skip("numpy not available")
    prev = columnar.set_numpy_enabled(False)
    try:
        without = _single_query_artifacts()
    finally:
        columnar.set_numpy_enabled(prev)
    prev = columnar.set_numpy_enabled(True)
    try:
        with_np = _single_query_artifacts()
    finally:
        columnar.set_numpy_enabled(prev)
    assert with_np == without


def test_snapshot_reports_substrate():
    federation, __ = dmv_fig1()
    service = MediatorService(federation, mode="deterministic", seed=1)
    assert "columnar substrate" in service.snapshot()["substrate"]
