"""Multi-thread hammer tests for the shared cross-query state.

These are the regression tests for the serving tier's prerequisite
bugfix: `PlanCache`, `ObservedStatistics`, `MetricsRegistry`, and
`HealthRegistry` are shared by every worker of a `MediatorService`,
so their mutations must be internally locked.  Each test spins up
many threads doing interleaved mutations and then checks the exact
invariants a single-threaded run would produce.
"""

from __future__ import annotations

import threading

from repro.mediator.plan_cache import PlanCache
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.runtime.health import (
    BreakerConfig,
    BreakerState,
    HealthRegistry,
)
from repro.sources.observed import ObservedStatistics
from repro.sources.statistics import ExactStatistics

THREADS = 8
ROUNDS = 200


def hammer(worker):
    """Run ``worker(index)`` on THREADS threads; re-raise any failure."""
    errors = []

    def run(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestPlanCacheHammer:
    def test_concurrent_get_put_never_corrupts(self, dmv_federation, dmv_query):
        cache = PlanCache(capacity=4)
        statistics = ExactStatistics(dmv_federation)
        source_sets = [
            ("R1",), ("R2",), ("R3",),
            ("R1", "R2"), ("R1", "R3"), ("R2", "R3"),
            ("R1", "R2", "R3"), ("R3", "R2"),
        ]

        def worker(index):
            for round_no in range(ROUNDS):
                sources = source_sets[(index + round_no) % len(source_sets)]
                cache.get(dmv_query, sources, statistics)
                cache.put(
                    dmv_query, sources, statistics, f"plan-{sources}"
                )

        hammer(worker)
        assert len(cache) <= 4
        assert cache.hits + cache.misses == THREADS * ROUNDS
        assert 0.0 <= cache.hit_rate <= 1.0


class TestObservedStatisticsHammer:
    def test_concurrent_observe_and_fingerprint(self):
        log = EventLog()
        log.emit(
            0.0, "attempt",
            round=0, step=1, op="sq", planned="R1", source="R1",
            condition="V = 'x'", attempt=1, start=0.0, end=0.1,
            fate="ok", hedge=False, cost=1.0, items_sent=0,
            items_received=5, rows_loaded=0, messages=2,
        )
        log.emit(
            0.2, "attempt",
            round=0, step=2, op="lq", planned="R2", source="R2",
            condition="", attempt=1, start=0.1, end=0.2,
            fate="ok", hedge=False, cost=2.0, items_sent=0,
            items_received=0, rows_loaded=9, messages=1,
        )
        statistics = ObservedStatistics()

        def worker(index):
            for __ in range(ROUNDS):
                mined = statistics.observe(log)
                assert mined == 2
                statistics.fingerprint()
                statistics.universe_size()
                statistics.distinct_items("R1")

        hammer(worker)
        assert statistics.observations == THREADS * ROUNDS * 2
        version = int(statistics.fingerprint().rsplit(":v", 1)[1])
        assert version == THREADS * ROUNDS


class TestMetricsRegistryHammer:
    def test_concurrent_counters_and_histograms(self):
        registry = MetricsRegistry()

        def worker(index):
            for round_no in range(ROUNDS):
                registry.counter("hammer_total", thread=str(index)).inc()
                registry.counter("hammer_total", thread="shared").inc()
                registry.gauge("hammer_depth").set(float(round_no))
                registry.histogram("hammer_s").observe(0.1)
                if round_no % 50 == 0:
                    registry.to_json()

        hammer(worker)
        shared = registry.counter("hammer_total", thread="shared")
        assert shared.value == THREADS * ROUNDS
        histogram = registry.histogram("hammer_s")
        assert histogram.count == THREADS * ROUNDS
        assert sum(histogram.counts) == histogram.count


class TestHealthRegistryHammer:
    def test_concurrent_records_and_breaker_transitions(self):
        registry = HealthRegistry(BreakerConfig.default())
        sources = ["R1", "R2", "R3", "R4"]

        def worker(index):
            for round_no in range(ROUNDS):
                source = sources[(index + round_no) % len(sources)]
                now = float(round_no)
                if registry.allow(source, now):
                    ok = (index + round_no) % 3 != 0
                    registry.record(source, now, ok, 0.05)
                else:
                    registry.reopens_at(source)
                registry.state_of(source)
                if round_no % 50 == 0:
                    registry.snapshot()

        hammer(worker)
        snap = registry.snapshot()
        assert set(snap) == set(sources)
        for info in snap.values():
            assert info["attempts"] == info["successes"] + info["failures"]


class TestQuarantineHammer:
    def test_concurrent_quality_records_and_quarantine(self):
        from repro.runtime.health import QuarantineConfig

        registry = HealthRegistry(
            None,
            QuarantineConfig(
                quality_threshold=0.8, min_volume=3, cooldown_s=None
            ),
        )
        # Half the sources always lie, half never do; every thread
        # hammers all of them plus the read paths.
        liars = ["L1", "L2"]
        honest = ["H1", "H2"]

        def worker(index):
            for round_no in range(ROUNDS):
                now = float(round_no)
                for name in honest:
                    registry.record_quality(
                        name, now, clean=True, delivered=4, kept=4
                    )
                for name in liars:
                    registry.record_quality(
                        name, now, clean=False, delivered=4, kept=2
                    )
                for name in honest + liars:
                    registry.allow(name, now)
                    registry.quality_score(name)
                    registry.state_of(name)
                if round_no % 50 == 0:
                    registry.quarantined_names()
                    registry.snapshot()

        hammer(worker)
        total = THREADS * ROUNDS
        for name in honest:
            quality = registry.quality_of(name)
            assert quality.answers == total
            assert quality.clean == total
            assert registry.quality_score(name) == 1.0
            assert registry.state_of(name) is not BreakerState.QUARANTINED
        for name in liars:
            quality = registry.quality_of(name)
            assert quality.answers == total
            assert quality.clean == 0
            assert registry.state_of(name) is BreakerState.QUARANTINED
            assert not registry.allow(name, 1e12)
        assert set(registry.quarantined_names()) == set(liars)


class TestSpanLogHammer:
    def test_concurrent_appends_and_exports(self):
        from repro.obs.spans import (
            Span,
            SpanLog,
            derive_trace_id,
            validate_chrome_trace,
        )

        log = SpanLog()

        def worker(index):
            trace = derive_trace_id(99, index)
            for round_no in range(ROUNDS):
                log.add(
                    Span(
                        trace_id=trace,
                        span_id=round_no + 1,
                        parent_id=1 if round_no else None,
                        name="query" if round_no == 0 else "op",
                        category="query" if round_no == 0 else "execute",
                        start_s=float(round_no),
                        end_s=float(round_no) + 0.5,
                    )
                )
                # Concurrent readers must never see torn state.
                assert len(log.for_trace(trace)) >= round_no + 1
                if round_no % 50 == 0:
                    log.to_chrome_trace()

        hammer(worker)
        assert len(log) == THREADS * ROUNDS
        assert len(log.trace_ids()) == THREADS
        assert validate_chrome_trace(log.to_chrome_trace()) == len(log)

    def test_concurrent_service_recorders_share_one_log(self):
        # Thread mode gives each worker its own Recorder over one
        # shared SpanLog; hammer that exact shape.
        from repro.obs.recorder import Recorder
        from repro.obs.spans import SpanLog, derive_trace_id

        log = SpanLog()
        recorders = [Recorder(spans=log) for __ in range(THREADS)]

        def worker(index):
            recorder = recorders[index]
            for round_no in range(ROUNDS):
                trace = derive_trace_id(index, round_no)
                recorder.query_trace(
                    trace_id=trace,
                    query=round_no,
                    tenant="hammer",
                    status="done",
                    submitted_s=0.0,
                    planned_s=0.1,
                    plan_elapsed_s=0.0,
                    dispatched_s=0.2,
                    finished_s=0.9,
                    completed_s=1.0,
                )

        hammer(worker)
        assert len(log) == THREADS * ROUNDS * 7
        assert len(log.trace_ids()) == THREADS * ROUNDS
