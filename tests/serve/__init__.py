"""Tests for the repro.serve serving tier."""
