"""Causal tracing through the serving tier: trace ids, span trees,
critical-path exactness, and the tracing off-switch."""

from __future__ import annotations

import json

import pytest

from repro.obs.spans import (
    EXECUTE_SPAN_ID,
    ROOT_SPAN_ID,
    analyze_log,
    analyze_trace,
    derive_trace_id,
    validate_chrome_trace,
)
from repro.serve import (
    MediatorService,
    WorkloadSpec,
    generate_arrivals,
    run_workload,
)
from repro.sources.generators import dmv_fig1

DMV_SQL = (
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
)


@pytest.fixture()
def federation():
    fed, __ = dmv_fig1()
    return fed


def serve(federation, count=6, seed=11, **kwargs):
    service = MediatorService(
        federation,
        mode="deterministic",
        pool_slots=kwargs.pop("pool_slots", 2),
        seed=seed,
        **kwargs,
    )
    spec = WorkloadSpec(
        queries=(DMV_SQL,), count=count, rate_qps=6.0, seed=seed
    )
    report = run_workload(service, generate_arrivals(spec))
    return service, report


class TestTraceIds:
    def test_every_ticket_gets_a_derived_trace_id(self, federation):
        service, report = serve(federation)
        assert report.completed == report.submitted
        for ticket in service.tickets:
            assert ticket.trace_id == derive_trace_id(
                service.seed, ticket.seq
            )

    def test_trace_ids_partition_the_span_forest(self, federation):
        service, __ = serve(federation)
        expected = {t.trace_id for t in service.tickets}
        assert set(service.spans.trace_ids()) == expected


class TestSpanTrees:
    def test_each_trace_has_the_serve_skeleton(self, federation):
        service, __ = serve(federation)
        for ticket in service.tickets:
            spans = service.spans.for_trace(ticket.trace_id)
            names = {s.name for s in spans if s.span_id <= 7}
            assert names == {
                "query", "admission", "queue", "plan", "pool",
                "execute", "merge",
            }
            root = next(s for s in spans if s.span_id == ROOT_SPAN_ID)
            assert root.start_s == pytest.approx(ticket.submitted_s)
            assert root.end_s == pytest.approx(ticket.completed_s)

    def test_engine_ops_parent_under_execute(self, federation):
        service, __ = serve(federation)
        ops = [
            s
            for s in service.spans
            if s.name == "op" and s.category == "execute"
        ]
        assert ops
        assert all(s.parent_id == EXECUTE_SPAN_ID for s in ops)

    def test_plan_span_carries_cache_attribution(self, federation):
        service, __ = serve(federation)
        cache_values = set()
        for s in service.spans:
            if s.name == "plan":
                cache_values.add(s.attributes.get("cache"))
        # First query misses, repeats hit — both visible as attributes.
        assert {"hit", "miss"} <= cache_values

    def test_chrome_export_round_trips(self, federation, tmp_path):
        service, __ = serve(federation)
        path = service.spans.write_chrome_trace(
            str(tmp_path / "trace.json")
        )
        data = json.loads(open(path, encoding="utf-8").read())
        assert validate_chrome_trace(data) == len(service.spans)


class TestCriticalPathExactness:
    def test_phases_sum_to_latency_for_every_query(self, federation):
        service, __ = serve(federation, count=10, pool_slots=1)
        for ticket in service.tickets:
            assert ticket.phases, f"query #{ticket.seq} has no attribution"
            assert sum(ticket.phases.values()) == pytest.approx(
                ticket.latency_s, abs=1e-9
            )

    def test_report_collects_phase_latencies(self, federation):
        __, report = serve(federation, count=10, pool_slots=1)
        assert report.phase_latencies_s
        assert report.critical_contributors
        assert report.dominant_phase(99)
        assert "critical-path latency by phase" in report.phase_breakdown()

    def test_analyzer_agrees_with_tickets(self, federation):
        service, __ = serve(federation)
        paths = analyze_log(service.spans)
        for ticket in service.tickets:
            path = paths[ticket.trace_id]
            assert path.total_s == pytest.approx(ticket.latency_s, abs=1e-9)
            assert path.by_phase() == ticket.phases


class TestDeterministicReplay:
    def test_same_seed_exports_byte_identical_traces(self, federation):
        exports = []
        for __ in range(2):
            service, __r = serve(federation, count=8, seed=23)
            exports.append(service.spans.to_chrome_json())
        assert exports[0] == exports[1]

    def test_different_seed_diverges(self, federation):
        service_a, __ = serve(federation, count=8, seed=23)
        service_b, __ = serve(federation, count=8, seed=24)
        assert (
            service_a.spans.to_chrome_json()
            != service_b.spans.to_chrome_json()
        )


class TestTracingOff:
    def test_off_switch_disables_spans_and_ids(self, federation):
        service, report = serve(federation, tracing=False)
        assert service.spans is None
        assert report.completed == report.submitted
        for ticket in service.tickets:
            assert ticket.trace_id == ""
            assert ticket.phases == {}
        assert report.phase_latencies_s == {}
        assert "no traced queries" in report.phase_breakdown()

    def test_off_switch_emits_no_plan_or_phase_events(self, federation):
        service, __ = serve(federation, tracing=False)
        assert not service.recorder.events.of_type("plan", "phases")


class TestThreadModeTracing:
    def test_threads_produce_valid_trees_with_exact_sums(self, federation):
        service = MediatorService(
            federation, mode="threads", workers=2, seed=5
        )
        try:
            spec = WorkloadSpec(
                queries=(DMV_SQL,), count=5, rate_qps=50.0, seed=5
            )
            report = run_workload(service, generate_arrivals(spec))
        finally:
            service.close()
        assert report.completed == 5
        assert validate_chrome_trace(
            service.spans.to_chrome_trace()
        ) == len(service.spans)
        for ticket in service.tickets:
            assert ticket.trace_id
            assert sum(ticket.phases.values()) == pytest.approx(
                ticket.latency_s, abs=1e-9
            )


class TestFailureTraces:
    def test_unplannable_query_still_gets_a_trace(self, federation):
        service = MediatorService(
            federation, mode="deterministic", seed=3
        )
        ticket = service.submit(
            "SELECT u1.L FROM U u1 WHERE u1.NOPE = 'x'", at_s=0.0
        )
        service.run_until_idle()
        assert ticket.status == "failed"
        path = analyze_trace(service.spans.for_trace(ticket.trace_id))
        assert path is not None
        assert path.total_s == pytest.approx(ticket.latency_s, abs=1e-9)
