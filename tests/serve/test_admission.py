"""Unit tests for admission control and the source pools."""

from __future__ import annotations

import pytest

from repro.errors import (
    CostModelError,
    QueueFullError,
    QuotaExceededError,
    ServiceClosedError,
    ServiceError,
    UnknownTenantError,
)
from repro.serve.admission import AdmissionController
from repro.serve.pools import SourcePools
from repro.serve.tenants import TenantSpec


def controller(queue_limit=2, quota=None):
    return AdmissionController(
        [TenantSpec("a", quota=quota), TenantSpec("b")], queue_limit
    )


class TestAdmission:
    def test_admits_until_queue_full(self):
        ctrl = controller(queue_limit=2)
        ctrl.admit("a")
        ctrl.admit("b")
        with pytest.raises(QueueFullError) as err:
            ctrl.admit("a")
        assert err.value.reason == "queue_full"
        assert err.value.tenant == "a"
        assert ctrl.rejected_total == {"queue_full": 1}

    def test_dispatch_frees_queue_slot(self):
        ctrl = controller(queue_limit=1)
        ctrl.admit("a")
        ctrl.on_dispatch("a")
        ctrl.admit("a")  # queue slot freed by dispatch
        assert ctrl.queued == 1
        assert ctrl.in_flight == 1
        assert ctrl.outstanding["a"] == 2

    def test_quota_counts_outstanding_not_queued(self):
        ctrl = controller(queue_limit=10, quota=2)
        ctrl.admit("a")
        ctrl.on_dispatch("a")  # running, still outstanding
        ctrl.admit("a")
        with pytest.raises(QuotaExceededError) as err:
            ctrl.admit("a")
        assert err.value.reason == "quota"
        ctrl.on_complete("a")
        ctrl.admit("a")  # completion released quota

    def test_quota_is_per_tenant(self):
        ctrl = controller(queue_limit=10, quota=1)
        ctrl.admit("a")
        with pytest.raises(QuotaExceededError):
            ctrl.admit("a")
        ctrl.admit("b")  # unlimited tenant unaffected

    def test_unknown_tenant(self):
        with pytest.raises(UnknownTenantError):
            controller().admit("nope")

    def test_closed_service_rejects(self):
        ctrl = controller()
        ctrl.close()
        with pytest.raises(ServiceClosedError) as err:
            ctrl.admit("a")
        assert err.value.reason == "closed"
        assert ctrl.rejected == 1

    def test_bad_queue_limit(self):
        with pytest.raises(CostModelError):
            controller(queue_limit=0)

    def test_admitted_totals_accumulate(self):
        ctrl = controller(queue_limit=10)
        for __ in range(3):
            ctrl.admit("a")
        ctrl.admit("b")
        assert ctrl.admitted_total == {"a": 3, "b": 1}


class TestSourcePools:
    def test_uniform_limits(self):
        pools = SourcePools(2)
        assert pools.limit("anything") == 2

    def test_per_source_limits_with_fallback(self):
        pools = SourcePools({"R1": 1}, default_slots=3)
        assert pools.limit("R1") == 1
        assert pools.limit("R2") == 3

    def test_bad_limits_rejected(self):
        with pytest.raises(CostModelError):
            SourcePools(0)
        with pytest.raises(CostModelError):
            SourcePools({"R1": -1})

    def test_acquire_release_cycle(self):
        pools = SourcePools(1)
        assert pools.can_acquire(["R1", "R2"])
        pools.acquire(["R1", "R2"])
        assert not pools.can_acquire(["R1"])
        assert pools.can_acquire(["R3"])
        pools.release(["R1", "R2"])
        assert pools.can_acquire(["R1", "R2"])

    def test_all_or_nothing_check(self):
        pools = SourcePools(1)
        pools.acquire(["R1"])
        # R2 is free but the batch includes busy R1.
        assert not pools.can_acquire(["R1", "R2"])

    def test_acquire_without_room_raises(self):
        pools = SourcePools(1)
        pools.acquire(["R1"])
        with pytest.raises(ServiceError):
            pools.acquire(["R1"])

    def test_release_unacquired_raises(self):
        with pytest.raises(ServiceError):
            SourcePools(1).release(["R1"])

    def test_high_water_mark(self):
        pools = SourcePools(3)
        pools.acquire(["R1"])
        pools.acquire(["R1"])
        pools.release(["R1"])
        pools.acquire(["R1"])
        assert pools.high_water["R1"] == 2
        snap = pools.snapshot()
        assert snap["R1"] == {"used": 2, "limit": 3, "high_water": 2}
