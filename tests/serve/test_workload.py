"""Tests for workload generation, churn waves, and the load harness."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.serve import (
    ChurnWave,
    MediatorService,
    TenantSpec,
    WorkloadSpec,
    generate_arrivals,
    percentile,
    run_workload,
)

DMV_SQL = (
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
)


class TestGenerateArrivals:
    def spec(self, **kwargs):
        defaults = dict(
            queries=(DMV_SQL,),
            tenants=(TenantSpec("a", weight=1.0), TenantSpec("b", weight=3.0)),
            count=40,
            rate_qps=4.0,
            seed=7,
        )
        defaults.update(kwargs)
        return WorkloadSpec(**defaults)

    def test_deterministic_for_same_seed(self):
        assert generate_arrivals(self.spec()) == generate_arrivals(self.spec())

    def test_seed_changes_arrivals(self):
        assert generate_arrivals(self.spec()) != generate_arrivals(
            self.spec(seed=8)
        )

    def test_times_strictly_increase(self):
        arrivals = generate_arrivals(self.spec())
        times = [a.at_s for a in arrivals]
        assert times == sorted(times)
        assert times[0] > 0

    def test_tenants_drawn_by_weight(self):
        arrivals = generate_arrivals(self.spec(count=400))
        b_share = sum(1 for a in arrivals if a.tenant == "b") / 400
        assert 0.6 < b_share < 0.9  # expected 0.75

    def test_spec_validation(self):
        with pytest.raises(CostModelError):
            WorkloadSpec(queries=())
        with pytest.raises(CostModelError):
            WorkloadSpec(queries=(DMV_SQL,), count=0)
        with pytest.raises(CostModelError):
            WorkloadSpec(queries=(DMV_SQL,), rate_qps=0.0)


class TestChurnWave:
    def test_covers_half_open_window(self):
        wave = ChurnWave(1.0, 2.0, sources=("R1",))
        assert not wave.covers(0.999)
        assert wave.covers(1.0)
        assert wave.covers(1.999)
        assert not wave.covers(2.0)

    def test_profile_is_flaky(self):
        wave = ChurnWave(0.0, 1.0, sources=("R1",), rate=0.4)
        assert wave.profile().transient_rate == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(CostModelError):
            ChurnWave(2.0, 1.0, sources=("R1",))
        with pytest.raises(CostModelError):
            ChurnWave(0.0, 1.0, sources=())


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_single_value(self):
        assert percentile([3.5], 99) == 3.5

    def test_out_of_range_rejected(self):
        with pytest.raises(CostModelError):
            percentile([1.0], 101)


class TestRunWorkload:
    def test_deterministic_end_to_end(self, dmv_federation):
        tenants = (TenantSpec("a", weight=1.0), TenantSpec("b", weight=3.0))
        spec = WorkloadSpec(
            queries=(DMV_SQL,), tenants=tenants, count=15,
            rate_qps=6.0, seed=11,
        )
        service = MediatorService(
            dmv_federation,
            mode="deterministic",
            tenants=list(tenants),
            seed=spec.seed,
            pool_slots=2,
            queue_limit=8,
        )
        report = run_workload(service, generate_arrivals(spec))
        shed = sum(report.rejected.values())
        assert report.submitted == 15
        assert report.completed + report.failed + shed == 15
        assert report.completed > 0
        assert report.qps > 0
        assert report.p50_s <= report.p95_s <= report.p99_s
        assert report.plan_cache_hits + report.plan_cache_misses >= (
            report.completed
        )
        assert "q/s" in report.summary()

    def test_thread_mode_end_to_end(self, dmv_federation):
        spec = WorkloadSpec(queries=(DMV_SQL,), count=6, rate_qps=50.0, seed=2)
        service = MediatorService(
            dmv_federation, mode="threads", workers=2, queue_limit=32
        )
        try:
            report = run_workload(service, generate_arrivals(spec))
        finally:
            service.close()
        assert report.mode == "threads"
        assert report.completed + sum(report.rejected.values()) == 6
        assert report.failed == 0
