"""Scale smoke tests: the optimizers at Internet-like source counts.

These are correctness + sanity-bound tests, not benchmarks (those live
in ``benchmarks/``): they establish that nothing degrades
super-linearly in n within the sizes a laptop test run tolerates.
"""

from __future__ import annotations

import time

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.adaptive import AdaptiveExecutor
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.greedy import GreedySJAOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    synthetic_query,
)
from repro.sources.statistics import ExactStatistics


@pytest.fixture(scope="module")
def big_federation():
    config = SyntheticConfig(
        n_sources=150,
        n_entities=1500,
        coverage=(0.02, 0.1),
        native_fraction=0.8,
        emulated_fraction=0.1,
        overhead_range=(2.0, 40.0),
        seed=1500,
    )
    federation = build_synthetic(config)
    query = synthetic_query(config, m=3, seed=77)
    statistics = ExactStatistics(federation)
    estimator = SizeEstimator(statistics, federation.source_names)
    cost_model = ChargeCostModel.for_federation(federation, estimator)
    return federation, query, cost_model, estimator


class TestLargeN:
    def test_sja_plans_150_sources_quickly_and_correctly(self, big_federation):
        federation, query, cost_model, estimator = big_federation
        start = time.perf_counter()
        result = SJAOptimizer().optimize(
            query, federation.source_names, cost_model, estimator
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)

    def test_greedy_much_faster_same_answer(self, big_federation):
        federation, query, cost_model, estimator = big_federation
        result = GreedySJAOptimizer().optimize(
            query, federation.source_names, cost_model, estimator
        )
        assert result.elapsed_s < 1.0
        federation.reset_traffic()
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)

    def test_adaptive_handles_150_sources(self, big_federation):
        federation, query, cost_model, estimator = big_federation
        federation.reset_traffic()
        executor = AdaptiveExecutor(federation, cost_model, estimator)
        result = executor.execute(query)
        assert result.items == reference_answer(federation, query)

    def test_plan_size_linear_in_n(self, big_federation):
        federation, query, cost_model, estimator = big_federation
        plan = SJAOptimizer().optimize(
            query, federation.source_names, cost_model, estimator
        ).plan
        # m*n remote ops plus O(m) local ops — nothing quadratic.
        assert plan.remote_op_count == query.arity * federation.size
        assert len(plan) <= query.arity * (federation.size + 2)


class TestManyConditions:
    def test_greedy_handles_m_10(self):
        """SJA's m! would be 3.6M orderings; greedy shrugs."""
        config = SyntheticConfig(
            n_sources=8, n_entities=300, seed=10
        )
        federation = build_synthetic(config)
        query = synthetic_query(config, m=10, seed=10)
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        cost_model = ChargeCostModel.for_federation(federation, estimator)
        start = time.perf_counter()
        result = GreedySJAOptimizer().optimize(
            query, federation.source_names, cost_model, estimator
        )
        assert time.perf_counter() - start < 2.0
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)
