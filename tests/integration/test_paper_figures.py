"""Integration tests reproducing the paper's figures end to end.

Each test corresponds to a figure of the paper and to one of the
benchmark targets in ``benchmarks/`` (see DESIGN.md's experiment index);
here we assert the *facts*, the benchmarks print the *artifacts*.
"""

from __future__ import annotations

import math

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.executor import Executor
from repro.mediator.session import Mediator
from repro.optimize.filter import FilterOptimizer
from repro.optimize.postopt import apply_difference_pruning
from repro.optimize.sj import SJOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.plans.builder import (
    StagedChoice,
    build_staged_plan,
    uniform_choices,
)
from repro.plans.classify import PlanClass, classify
from repro.plans.operations import OpKind, SemijoinOp
from repro.query.fusion import FusionQuery
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1
from repro.sources.network import LinkProfile
from repro.sources.statistics import ExactStatistics


class TestFig1DMVExample:
    """Fig. 1: the three DMV relations and the dui ∧ sp fusion query."""

    def test_answer_is_j55_and_t21(self):
        federation, query = dmv_fig1()
        mediator = Mediator(federation, verify=True)
        assert mediator.answer(query).items == DMV_FIG1_ANSWER

    def test_plan_p1_from_the_introduction(self):
        """The paper's P1: fetch all dui items everywhere, union, then
        semijoin the set to every source for sp."""
        federation, query = dmv_fig1()
        plan = build_staged_plan(
            query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            federation.source_names,
        )
        execution = Executor(federation).execute(plan)
        assert execution.items == DMV_FIG1_ANSWER
        # X1 = all dui items = {J55, T80, T21} (the introduction's X1).
        x1_step = next(
            step for step in execution.steps if step.operation.target == "X1"
        )
        assert x1_step.output_size == 3

    def test_every_optimizer_gets_the_paper_answer(self):
        federation, query = dmv_fig1()
        for optimizer in (
            FilterOptimizer(),
            SJOptimizer(),
            SJAOptimizer(),
            SJAPlusOptimizer(),
        ):
            mediator = Mediator(federation, optimizer=optimizer, verify=True)
            assert mediator.answer(query).items == DMV_FIG1_ANSWER


class TestFig2PlanClasses:
    """Fig. 2: the filter / semijoin / semijoin-adaptive example plans."""

    @pytest.fixture
    def query3(self):
        return FusionQuery.from_strings("L", ["V = 'a'", "V = 'b'", "V = 'c'"])

    def test_three_classes_distinguished(self, query3):
        from repro.plans.builder import build_filter_plan

        sources = ["R1", "R2"]
        filter_plan = build_filter_plan(query3, sources)
        semijoin_plan = build_staged_plan(
            query3, [0, 1, 2], uniform_choices(3, 2, [False, True, False]),
            sources,
        )
        adaptive_plan = build_staged_plan(
            query3,
            [0, 1, 2],
            [
                [StagedChoice.SELECTION] * 2,
                [StagedChoice.SEMIJOIN, StagedChoice.SELECTION],
                [StagedChoice.SELECTION] * 2,
            ],
            sources,
        )
        assert classify(filter_plan) is PlanClass.FILTER
        assert classify(semijoin_plan) is PlanClass.SEMIJOIN
        assert classify(adaptive_plan) is PlanClass.SEMIJOIN_ADAPTIVE
        # Step counts as printed in the figure: 11 / 10 / 11.
        assert (len(filter_plan), len(semijoin_plan), len(adaptive_plan)) == (
            11, 10, 11,
        )


class TestFig3SJ:
    """Fig. 3: SJ explores m! orderings with per-stage uniform choices."""

    def test_search_statistics(self):
        federation, query = dmv_fig1()
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        result = SJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert result.orderings_considered == math.factorial(query.arity)
        assert classify(result.plan) in (
            PlanClass.SEMIJOIN, PlanClass.FILTER,
        )


class TestFig4SJA:
    """Fig. 4: SJA decides per source and never loses to SJ."""

    def test_sja_beats_sj_with_heterogeneous_links(self):
        # Make R1's link cheap for semijoins and R2/R3 ruinous for them.
        federation, query = dmv_fig1()
        federation.source("R1").link = LinkProfile(
            request_overhead=0.5, per_item_send=0.01, per_item_receive=30.0
        )
        federation.source("R2").link = LinkProfile(
            request_overhead=1.0, per_item_send=500.0, per_item_receive=1.0
        )
        federation.source("R3").link = LinkProfile(
            request_overhead=1.0, per_item_send=500.0, per_item_receive=1.0
        )
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        sj = SJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert sja.estimated_cost <= sj.estimated_cost
        execution = Executor(federation).execute(sja.plan)
        assert execution.items == DMV_FIG1_ANSWER


class TestFig5Postoptimization:
    """Fig. 5: difference pruning and source loading on the Fig. 1 query."""

    def test_difference_pruning_on_a_p1_style_plan(self):
        federation, query = dmv_fig1()
        # P1 with stage 2 = semijoins at R2 and R3 but selection at R1 —
        # the setup of the Sec. 4 difference example.
        plan = build_staged_plan(
            query,
            [0, 1],
            [
                [StagedChoice.SELECTION] * 3,
                [
                    StagedChoice.SELECTION,
                    StagedChoice.SEMIJOIN,
                    StagedChoice.SEMIJOIN,
                ],
            ],
            federation.source_names,
        )
        pruned = apply_difference_pruning(plan)
        assert pruned.count_by_kind()[OpKind.DIFFERENCE] == 2
        execution = Executor(federation).execute(pruned)
        assert execution.items == DMV_FIG1_ANSWER
        # The pruned semijoin to R2 must not re-send T21 (confirmed at
        # R1, which returned {T21} for sp among X1).
        r2_semijoin = next(
            step
            for step in execution.steps
            if isinstance(step.operation, SemijoinOp)
            and step.operation.source == "R2"
        )
        r2_record = [
            record
            for record in federation.source("R2").traffic
            if record.operation == "sjq"
        ][-1]
        assert r2_record.items_sent == 2  # X1 − {T21} = {J55, T80}

    def test_sja_plus_loads_tiny_sources(self):
        federation, query = dmv_fig1()
        mediator = Mediator(
            federation, optimizer=SJAPlusOptimizer(), verify=True
        )
        answer = mediator.answer(query)
        assert answer.items == DMV_FIG1_ANSWER
        # With Fig. 1's 3-row sources, loading everything wins.
        assert answer.plan.count_by_kind().get(OpKind.LOAD, 0) == 3
