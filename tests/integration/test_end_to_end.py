"""Cross-module integration tests: full mediator workflows."""

from __future__ import annotations

import pytest

from repro.costs.calibrated import CalibratedCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.reference import reference_answer
from repro.mediator.session import Mediator
from repro.optimize.greedy import SelectivityOrderOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.sources.generators import (
    SyntheticConfig,
    bibliographic_federation,
    bibliographic_query,
    build_synthetic,
    synthetic_conditions,
    synthetic_query,
)
from repro.sources.remote import FailureInjector
from repro.sources.statistics import (
    ExactStatistics,
    HistogramStatistics,
    SampledStatistics,
)


class TestBibliographicScenario:
    """The Sec. 1 motivation: two-phase bibliographic search."""

    def test_phase_one_identifies_documents(self):
        federation = bibliographic_federation(
            n_libraries=4, n_documents=300, seed=2
        )
        mediator = Mediator(federation, verify=True)
        query = bibliographic_query(("mediator", "semijoin"))
        answer = mediator.answer(query)
        assert answer.items == reference_answer(federation, query)
        assert len(answer.items) > 0

    def test_phase_two_fetches_only_matches(self):
        federation = bibliographic_federation(
            n_libraries=3, n_documents=200, seed=3
        )
        mediator = Mediator(federation, verify=True)
        query = bibliographic_query(("query", "fusion"))
        answer = mediator.answer(query)
        records = mediator.fetch_records(answer.items)
        assert records.items() <= answer.items | frozenset()
        # Every fetched row belongs to a matched document.
        doc_position = records.schema.merge_position
        assert all(row[doc_position] in answer.items for row in records)

    def test_emulated_semijoin_library_still_correct(self):
        """The last library supports only passed bindings; plans routing
        semijoins there must be emulated transparently."""
        federation = bibliographic_federation(
            n_libraries=4, n_documents=150, seed=4
        )
        mediator = Mediator(federation, optimizer=SJAOptimizer(), verify=True)
        query = bibliographic_query(("internet", "wrapper"))
        answer = mediator.answer(query)
        assert answer.verified is True


class TestStatisticsVariants:
    """Same query, different knowledge: oracle vs sampled vs histogram."""

    @pytest.fixture
    def kit(self):
        config = SyntheticConfig(n_sources=5, n_entities=400, seed=31)
        federation = build_synthetic(config)
        query = synthetic_query(config, m=3, seed=77)
        return federation, query

    @pytest.mark.parametrize(
        "provider_factory",
        [
            ExactStatistics,
            lambda federation: SampledStatistics(federation, 0.3, seed=0),
            HistogramStatistics,
        ],
    )
    def test_answers_identical_regardless_of_statistics(
        self, kit, provider_factory
    ):
        """Statistics affect plan choice, never correctness."""
        federation, query = kit
        mediator = Mediator(
            federation, statistics=provider_factory(federation), verify=True
        )
        answer = mediator.answer(query)
        assert answer.items == reference_answer(federation, query)

    def test_worse_statistics_never_break_execution(self, kit):
        federation, query = kit
        exact_cost = Mediator(
            federation, verify=True
        ).answer(query).execution.total_cost
        federation.reset_traffic()
        sampled_cost = Mediator(
            federation,
            statistics=SampledStatistics(federation, 0.2, seed=1),
            verify=True,
        ).answer(query).execution.total_cost
        # Sampled stats may pick a worse plan, but within sane bounds.
        assert sampled_cost <= 10 * exact_cost


class TestCalibratedPlanning:
    """End-to-end with *learned* cost parameters (Zhu & Larson loop)."""

    def test_calibrated_mediator_matches_reference(self):
        config = SyntheticConfig(
            n_sources=4,
            n_entities=250,
            overhead_range=(5.0, 50.0),
            send_range=(0.5, 3.0),
            receive_range=(0.5, 3.0),
            seed=41,
        )
        federation = build_synthetic(config)
        statistics = ExactStatistics(federation)
        estimator = SizeEstimator(statistics, federation.source_names)
        probes = synthetic_conditions(config, 4, seed=43)
        calibrated = CalibratedCostModel.calibrate(
            federation, estimator, probes, seed=0
        )
        mediator = Mediator(
            federation,
            statistics=statistics,
            cost_model=calibrated,
            optimizer=SJAPlusOptimizer(),
            verify=True,
        )
        query = synthetic_query(config, m=3, seed=47)
        answer = mediator.answer(query)
        assert answer.verified is True

    def test_calibrated_plan_quality_close_to_oracle(self):
        """Learned costs are near-exact here (the simulator is linear),
        so the chosen plan should execute at nearly the oracle cost."""
        from repro.costs.charge import ChargeCostModel

        config = SyntheticConfig(
            n_sources=4, n_entities=250, overhead_range=(5.0, 50.0), seed=53
        )
        federation = build_synthetic(config)
        statistics = ExactStatistics(federation)
        estimator = SizeEstimator(statistics, federation.source_names)
        probes = synthetic_conditions(config, 4, seed=59)
        query = synthetic_query(config, m=3, seed=61)

        oracle = Mediator(
            federation,
            statistics=statistics,
            cost_model=ChargeCostModel.for_federation(federation, estimator),
            optimizer=SJAOptimizer(),
        )
        oracle_cost = oracle.answer(query).execution.total_cost
        federation.reset_traffic()
        calibrated = Mediator(
            federation,
            statistics=statistics,
            cost_model=CalibratedCostModel.calibrate(
                federation, estimator, probes, seed=0
            ),
            optimizer=SJAOptimizer(),
        )
        calibrated_cost = calibrated.answer(query).execution.total_cost
        assert calibrated_cost == pytest.approx(oracle_cost, rel=0.25)


class TestFaultTolerance:
    def test_flaky_federation_still_answers(self):
        config = SyntheticConfig(n_sources=3, n_entities=100, seed=71)
        federation = build_synthetic(config)
        for index, source in enumerate(federation):
            source.failure = FailureInjector(
                failure_rate=0.3, seed=index, max_failures=5
            )
        mediator = Mediator(federation, verify=True, max_retries=10)
        query = synthetic_query(config, m=2, seed=73)
        answer = mediator.answer(query)
        assert answer.verified is True


class TestInternetScale:
    def test_fifty_sources(self):
        """The paper's motivation: n is large.  Optimization must stay
        fast (linear in n) and execution correct."""
        config = SyntheticConfig(
            n_sources=50,
            n_entities=500,
            coverage=(0.05, 0.25),
            native_fraction=0.7,
            emulated_fraction=0.2,
            overhead_range=(2.0, 60.0),
            seed=83,
        )
        federation = build_synthetic(config)
        query = synthetic_query(config, m=3, seed=89)
        mediator = Mediator(
            federation, optimizer=SelectivityOrderOptimizer(), verify=True
        )
        answer = mediator.answer(query)
        assert answer.verified is True
        assert answer.optimization.elapsed_s < 2.0
