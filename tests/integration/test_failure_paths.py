"""Negative-path integration tests: failures surface cleanly.

A production library is judged by its error behaviour as much as its
happy path; these tests pin the failure contracts down.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CapabilityError,
    ExecutionError,
    OptimizationError,
    PlanValidationError,
    UnknownSourceError,
)
from repro.mediator.executor import Executor
from repro.mediator.session import Mediator
from repro.optimize.sja import SJAOptimizer
from repro.plans.builder import (
    build_filter_plan,
    build_staged_plan,
    uniform_choices,
)
from repro.plans.operations import SelectionOp, UnionOp
from repro.plans.plan import Plan
from repro.query.fusion import FusionQuery
from repro.sources.capabilities import SourceCapabilities
from repro.sources.generators import dmv_fig1


class TestExecutorFailures:
    def test_unknown_source_in_plan(self, dmv_federation, dmv_query):
        plan = Plan(
            [
                SelectionOp("X", dmv_query.conditions[0], "R99"),
                UnionOp("Y", ("X",)),
            ],
            result="Y",
        )
        with pytest.raises(UnknownSourceError):
            Executor(dmv_federation).execute(plan)

    def test_semijoin_routed_to_incapable_source(self, dmv_query):
        """A hand-built plan that violates capabilities fails loudly."""
        federation, query = dmv_fig1(
            capabilities=SourceCapabilities.minimal()
        )
        plan = build_staged_plan(
            query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            federation.source_names,
        )
        with pytest.raises(CapabilityError):
            Executor(federation).execute(plan)

    def test_permanently_down_source(self):
        from repro.sources.remote import FailureInjector

        federation, query = dmv_fig1()
        federation.source("R3").failure = FailureInjector(1.0, seed=0)
        plan = build_filter_plan(query, federation.source_names)
        with pytest.raises(ExecutionError, match="retries"):
            Executor(federation, max_retries=1).execute(plan)


class TestOptimizerFailures:
    def test_no_feasible_plan_when_everything_is_infinite(
        self, dmv_query, dmv_estimator
    ):
        from repro.costs.model import INFINITE_COST, TableCostModel

        model = TableCostModel(
            default_sq=INFINITE_COST, default_sjq=(INFINITE_COST, 0.0)
        )
        with pytest.raises(OptimizationError, match="infinite"):
            SJAOptimizer().optimize(
                dmv_query, ["R1", "R2", "R3"], model, dmv_estimator
            )


class TestMediatorFailures:
    def test_verify_catches_wrong_answers(self, dmv_federation, dmv_query):
        """A broken optimizer is caught by the verification oracle."""
        from repro.optimize.base import OptimizationResult, Optimizer

        class BrokenOptimizer(Optimizer):
            name = "broken"

            def optimize(self, query, source_names, cost_model, estimator):
                # Evaluates only the first condition: answer too large.
                partial = FusionQuery(
                    query.merge_attribute, (query.conditions[0],)
                )
                plan = build_filter_plan(partial, source_names)
                return OptimizationResult(
                    plan=plan, estimated_cost=1.0, optimizer=self.name
                )

        mediator = Mediator(
            dmv_federation, optimizer=BrokenOptimizer(), verify=True
        )
        with pytest.raises(ExecutionError, match="differs"):
            mediator.answer(dmv_query)

    def test_malformed_plan_never_constructs(self, dmv_query):
        with pytest.raises(PlanValidationError):
            Plan(
                [UnionOp("X", ("NOPE",))],
                result="X",
            )
