"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            errors.SchemaError,
            errors.ConditionError,
            errors.ParseError,
            errors.QueryError,
            errors.NotAFusionQueryError,
            errors.SourceError,
            errors.CapabilityError,
            errors.SourceUnavailableError,
            errors.UnknownSourceError,
            errors.StatisticsError,
            errors.CostModelError,
            errors.PlanValidationError,
            errors.OptimizationError,
            errors.ExecutionError,
        ],
    )
    def test_all_derive_from_fusion_error(self, exception_class):
        assert issubclass(exception_class, errors.FusionError)

    def test_not_a_fusion_query_is_a_query_error(self):
        assert issubclass(errors.NotAFusionQueryError, errors.QueryError)

    def test_capability_error_is_a_source_error(self):
        assert issubclass(errors.CapabilityError, errors.SourceError)

    def test_one_catch_at_the_api_boundary(self):
        """The design promise: one except clause suffices."""
        with pytest.raises(errors.FusionError):
            raise errors.PlanValidationError("boom")


class TestPayloads:
    def test_parse_error_carries_position(self):
        error = errors.ParseError("bad token", text="a = $", position=4)
        assert error.position == 4
        assert "offset 4" in str(error)
        assert "a = $" in str(error)

    def test_parse_error_without_position(self):
        error = errors.ParseError("generic")
        assert error.position is None
        assert str(error) == "generic"

    def test_source_unavailable_names_the_source(self):
        error = errors.SourceUnavailableError("R7")
        assert error.source_name == "R7"
        assert "R7" in str(error)
