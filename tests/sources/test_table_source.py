"""Unit tests for the autonomous source engine."""

from __future__ import annotations

import pytest

from repro.relational.parser import parse_condition
from repro.relational.relation import Relation
from repro.relational.schema import dmv_schema
from repro.sources.table_source import TableSource


@pytest.fixture
def source():
    return TableSource(
        Relation(
            "R1",
            dmv_schema(),
            [("J55", "dui", 1993), ("T21", "sp", 1994), ("T80", "dui", 1993)],
        )
    )


class TestOperations:
    def test_selection(self, source):
        assert source.selection(parse_condition("V = 'dui'")) == frozenset(
            {"J55", "T80"}
        )

    def test_semijoin(self, source):
        result = source.semijoin(
            parse_condition("V = 'dui'"), frozenset({"J55", "T21"})
        )
        assert result == frozenset({"J55"})

    def test_binding_selection_true_and_false(self, source):
        dui = parse_condition("V = 'dui'")
        assert source.binding_selection(dui, "J55") is True
        assert source.binding_selection(dui, "T21") is False
        assert source.binding_selection(dui, "NOPE") is False

    def test_load_returns_relation(self, source):
        assert source.load() is source.relation

    def test_name_and_len(self, source):
        assert source.name == "R1"
        assert len(source) == 3


class TestCounters:
    def test_counters_track_operations(self, source):
        condition = parse_condition("V = 'sp'")
        source.selection(condition)
        source.semijoin(condition, frozenset({"T21"}))
        source.binding_selection(condition, "T21")
        source.load()
        counters = source.counters
        assert counters.selections == 1
        assert counters.semijoins == 1
        assert counters.binding_selections == 1
        assert counters.loads == 1
        assert counters.rows_scanned == 4 * 3

    def test_reset(self, source):
        source.selection(parse_condition("V = 'sp'"))
        source.counters.reset()
        assert source.counters.selections == 0
        assert source.counters.rows_scanned == 0
