"""Unit tests for replica groups and substitutability."""

from __future__ import annotations

import pytest

from repro.errors import QueryError, SchemaError, UnknownSourceError
from repro.io import federation_from_dict, federation_to_dict
from repro.relational.relation import Relation
from repro.sources.generators import dmv_fig1, replicate_federation
from repro.sources.registry import Federation
from repro.sources.remote import RemoteSource
from repro.sources.table_source import TableSource


@pytest.fixture
def dmv():
    federation, __ = dmv_fig1()
    return federation


def mirror_of(federation: Federation, name: str, mirror_name: str) -> RemoteSource:
    original = federation.source(name)
    return RemoteSource(
        TableSource(
            Relation(
                mirror_name,
                original.schema,
                list(original.table.relation.rows),
            )
        ),
        capabilities=original.capabilities,
        link=original.link,
    )


class TestReplicaGroups:
    def test_declare_and_query_groups(self, dmv):
        federation = Federation(
            list(dmv) + [mirror_of(dmv, "R1", "R1b")], name=dmv.name
        )
        federation.declare_replicas("R1", "R1b")
        assert federation.replica_groups == (("R1", "R1b"),)
        assert federation.replicas_of("R1") == ("R1b",)
        assert federation.replicas_of("R1b") == ("R1",)
        assert federation.replicas_of("R2") == ()

    def test_representatives_are_one_per_group(self, dmv):
        replicated = replicate_federation(dmv, 3)
        assert replicated.representative_names == ("R1", "R2", "R3")
        assert len(replicated) == 9

    def test_no_groups_means_all_representatives(self, dmv):
        assert dmv.representative_names == dmv.source_names

    def test_group_of_includes_self_and_singletons(self, dmv):
        replicated = replicate_federation(dmv, 2)
        assert replicated.group_of("R1") == ("R1", "R1~1")
        assert replicated.group_of("R1~1") == ("R1", "R1~1")
        assert dmv.group_of("R2") == ("R2",)
        with pytest.raises(UnknownSourceError):
            dmv.group_of("nope")

    def test_invalid_declarations_rejected(self, dmv):
        with pytest.raises(SchemaError):
            dmv.declare_replicas("R1")  # needs at least two members
        with pytest.raises(SchemaError):
            dmv.declare_replicas("R1", "R1")  # repeats
        with pytest.raises(UnknownSourceError):
            dmv.declare_replicas("R1", "nope")  # unknown source

    def test_double_membership_rejected(self, dmv):
        federation = Federation(
            list(dmv)
            + [mirror_of(dmv, "R1", "R1b"), mirror_of(dmv, "R1", "R1c")],
            name=dmv.name,
        )
        federation.declare_replicas("R1", "R1b")
        with pytest.raises(SchemaError):
            federation.declare_replicas("R1", "R1c")

    def test_describe_mentions_groups(self, dmv):
        replicated = replicate_federation(dmv, 2)
        assert "R1~1" in replicated.describe()


class TestSubstitutability:
    def test_declared_replicas_substitute_both_ways(self, dmv):
        replicated = replicate_federation(dmv, 2)
        substitutes = replicated.substitutability()
        assert substitutes["R1"] == ("R1~1",)
        assert substitutes["R1~1"] == ("R1",)

    def test_containment_derives_substitutes(self, dmv):
        # A superset source can stand in for a subset source, not vice
        # versa (unless rows are identical).
        r1 = dmv.source("R1")
        superset = RemoteSource(
            TableSource(
                Relation(
                    "BIG",
                    r1.schema,
                    list(r1.table.relation.rows)
                    + [("Z99", "dui", 2001)],
                )
            ),
            capabilities=r1.capabilities,
            link=r1.link,
        )
        federation = Federation([r1, superset], name="U")
        assert federation.substitutes_for("R1") == ("BIG",)
        assert federation.substitutes_for("BIG") == ()

    def test_min_containment_relaxes_the_bar(self, dmv):
        # PARTIAL shares one of R1's three rows — containment 1/3.
        r1 = dmv.source("R1")
        partial = RemoteSource(
            TableSource(
                Relation(
                    "PARTIAL",
                    r1.schema,
                    [list(r1.table.relation.rows)[0], ("Z99", "dui", 2001)],
                )
            ),
            capabilities=r1.capabilities,
            link=r1.link,
        )
        federation = Federation([r1, partial], name="U")
        assert federation.substitutes_for("R1") == ()  # strict containment
        assert federation.substitutes_for("R1", min_containment=0.3) == (
            "PARTIAL",
        )

    def test_min_containment_must_be_in_unit_interval(self, dmv):
        with pytest.raises(SchemaError):
            dmv.substitutes_for("R1", min_containment=0.0)
        with pytest.raises(SchemaError):
            dmv.substitutes_for("R1", min_containment=1.5)


class TestReplicateFederation:
    def test_copies_one_is_identity_shape(self, dmv):
        same = replicate_federation(dmv, 1)
        assert same.source_names == dmv.source_names
        assert same.replica_groups == ()

    def test_invalid_copies_rejected(self, dmv):
        with pytest.raises(QueryError):
            replicate_federation(dmv, 0)

    def test_mirrors_serve_identical_rows_independently(self, dmv):
        replicated = replicate_federation(dmv, 2)
        original = replicated.source("R1")
        mirror = replicated.source("R1~1")
        assert (
            original.table.relation.rows == mirror.table.relation.rows
        )
        assert original.traffic is not mirror.traffic


class TestReplicaSerialization:
    def test_round_trip_preserves_groups(self, dmv):
        replicated = replicate_federation(dmv, 2)
        data = federation_to_dict(replicated)
        assert data["replicas"] == [
            ["R1", "R1~1"], ["R2", "R2~1"], ["R3", "R3~1"]
        ]
        restored = federation_from_dict(data)
        assert restored.replica_groups == replicated.replica_groups
        assert restored.representative_names == ("R1", "R2", "R3")

    def test_spec_without_replicas_loads_clean(self, dmv):
        data = federation_to_dict(dmv)
        assert "replicas" not in data
        assert federation_from_dict(data).replica_groups == ()
