"""Unit tests for log-mined statistics (repro.sources.observed)."""

from __future__ import annotations

import pytest

from repro.costs.estimates import SizeEstimator
from repro.mediator.executor import Executor
from repro.obs import EventLog, Recorder
from repro.plans.builder import build_filter_plan
from repro.relational.conditions import Comparison
from repro.sources.generators import dmv_fig1
from repro.sources.observed import DEFAULT_DISTINCT, ObservedStatistics
from repro.sources.statistics import ExactStatistics


CONDITION = Comparison("V", "=", "dui")


def attempt(**overrides):
    """A valid 'attempt' record with easy-to-override fields."""
    record = {
        "round": 0,
        "step": 1,
        "op": "sq",
        "planned": "R1",
        "source": "R1",
        "condition": CONDITION.to_sql(),
        "attempt": 1,
        "start": 0.0,
        "end": 0.1,
        "fate": "ok",
        "hedge": False,
        "cost": 10.0,
        "items_sent": 0,
        "items_received": 0,
        "rows_loaded": 0,
        "messages": 1,
    }
    record.update(overrides)
    return record


def mined(*attempts) -> ObservedStatistics:
    log = EventLog()
    for index, fields in enumerate(attempts):
        log.emit(float(index), "attempt", **fields)
    return ObservedStatistics.from_events(log)


class TestMining:
    def test_sq_count_makes_output_size_exact(self):
        # n = D * sel is observed directly, so sel * D reproduces it no
        # matter what D the provider assumes (the D-free identity).
        stats = mined(attempt(op="sq", items_received=5))
        assert stats.observations == 1
        assert stats.selectivity("R1", CONDITION) * stats.distinct_items(
            "R1"
        ) == pytest.approx(5)

    def test_lq_pins_cardinality_and_distinct(self):
        stats = mined(attempt(op="lq", rows_loaded=120, condition=""))
        assert stats.cardinality("R1") == 120
        assert stats.distinct_items("R1") == 120

    def test_failed_attempts_are_skipped(self):
        stats = mined(attempt(fate="timeout", items_received=99))
        assert stats.observations == 0
        assert stats.selectivity("R1", CONDITION) == pytest.approx(
            stats.prior_selectivity
        )

    def test_hedge_evidence_keyed_by_planned_source(self):
        stats = mined(
            attempt(planned="R1", source="R1b", hedge=True, items_received=4)
        )
        assert "R1" in stats.sources_seen()
        assert "R1b" not in stats.sources_seen()

    def test_unknown_sources_fall_back_to_the_prior(self):
        stats = ObservedStatistics()
        assert stats.selectivity("ghost", CONDITION) == pytest.approx(
            stats.prior_selectivity
        )
        assert stats.distinct_items("ghost") == DEFAULT_DISTINCT
        assert stats.cardinality("ghost") == DEFAULT_DISTINCT


class TestSemijoinEvidence:
    def test_shrinkage_toward_the_prior(self):
        # 10 bindings shipped, 2 survived; weight-2 prior at 0.1:
        # match fraction = (2*0.1 + 2) / (2 + 10) = 0.1833...
        stats = mined(
            attempt(op="sjq", items_sent=10, items_received=2)
        )
        match = (2 * stats.prior_selectivity + 2) / (2 + 10)
        expected = match * stats.universe_size() / stats.distinct_items("R1")
        assert stats.selectivity("R1", CONDITION) == pytest.approx(expected)

    def test_zero_sent_semijoins_carry_no_evidence(self):
        stats = mined(attempt(op="sjq", items_sent=0, items_received=0))
        assert stats.observations == 0

    def test_paired_sq_and_sjq_estimate_the_universe(self):
        # sq saw n = 5 items; sjq matched 2 of 10 shipped bindings, so
        # n / U = 2/10 and U ~ 5 * 10 / 2 = 25.
        stats = mined(
            attempt(op="sq", items_received=5),
            attempt(op="sjq", items_sent=10, items_received=2),
        )
        assert stats.universe_size() == 25

    def test_universe_override_wins(self):
        log = EventLog()
        log.emit(0.0, "attempt", **attempt(op="sq", items_received=5))
        stats = ObservedStatistics.from_events(log, universe=500)
        assert stats.universe_size() == 500

    def test_disjoint_fallback_sums_distincts(self):
        stats = mined(
            attempt(op="lq", planned="R1", source="R1", rows_loaded=40,
                    condition=""),
            attempt(op="lq", planned="R2", source="R2", rows_loaded=60,
                    condition=""),
        )
        assert stats.universe_size() == 100


class TestAgainstTheOracle:
    def warmup(self):
        federation, query = dmv_fig1()
        recorder = Recorder(metrics=None)
        plan = build_filter_plan(query, federation.source_names)
        federation.reset_traffic()
        Executor(federation, recorder=recorder).execute(plan)
        return federation, query, recorder

    def test_filter_warmup_reproduces_sq_output_sizes(self):
        # After one FILTER pass every (source, condition) selection count
        # is known exactly, so the mined estimator's sq_output_size
        # matches the oracle's for every pair the query touches.
        federation, query, recorder = self.warmup()
        stats = ObservedStatistics.from_events(recorder.events)
        names = federation.source_names
        observed = SizeEstimator(stats, names)
        oracle = SizeEstimator(ExactStatistics(federation), names)
        for condition in query.conditions:
            for name in names:
                assert observed.sq_output_size(
                    condition, name
                ) == pytest.approx(oracle.sq_output_size(condition, name))

    def test_report_renders(self):
        __, __, recorder = self.warmup()
        stats = ObservedStatistics.from_events(recorder.events)
        text = stats.report()
        assert text.startswith("observed statistics:")
        assert "sq counts" in text
