"""Unit tests for source capability declarations."""

from __future__ import annotations

import pytest

from repro.sources.capabilities import SemijoinSupport, SourceCapabilities


class TestFactories:
    def test_full(self):
        caps = SourceCapabilities.full()
        assert caps.semijoin is SemijoinSupport.NATIVE
        assert caps.supports_load
        assert caps.can_semijoin

    def test_selection_only(self):
        caps = SourceCapabilities.selection_only()
        assert caps.semijoin is SemijoinSupport.EMULATED
        assert caps.can_semijoin

    def test_minimal(self):
        caps = SourceCapabilities.minimal()
        assert caps.semijoin is SemijoinSupport.UNSUPPORTED
        assert not caps.can_semijoin
        assert not caps.supports_load


class TestSemijoinRequests:
    def test_native_unlimited_is_one_request(self):
        assert SourceCapabilities.full().semijoin_requests(1000) == 1

    def test_native_batched_ceil(self):
        caps = SourceCapabilities(max_semijoin_batch=100)
        assert caps.semijoin_requests(250) == 3
        assert caps.semijoin_requests(200) == 2
        assert caps.semijoin_requests(1) == 1

    def test_emulated_one_per_binding(self):
        caps = SourceCapabilities.selection_only()
        assert caps.semijoin_requests(7) == 7

    def test_zero_bindings_zero_requests(self):
        assert SourceCapabilities.full().semijoin_requests(0) == 0
        assert SourceCapabilities.minimal().semijoin_requests(0) == 0

    def test_unsupported_raises(self):
        with pytest.raises(ValueError):
            SourceCapabilities.minimal().semijoin_requests(1)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            SourceCapabilities(max_semijoin_batch=0)


class TestAggregates:
    def test_default_has_no_aggregates(self):
        assert not SourceCapabilities.full().supports_aggregates

    def test_analytic_factory(self):
        caps = SourceCapabilities.analytic()
        assert caps.supports_aggregates
        assert caps.can_semijoin
