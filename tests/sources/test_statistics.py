"""Unit tests for the statistics providers."""

from __future__ import annotations

import pytest

from repro.errors import StatisticsError
from repro.relational.parser import parse_condition
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    dmv_fig1,
    synthetic_conditions,
)
from repro.sources.statistics import (
    EquiWidthHistogram,
    ExactStatistics,
    FrequencyTable,
    HistogramStatistics,
    SampledStatistics,
    selectivity_error,
)


@pytest.fixture
def dmv_stats():
    federation, __ = dmv_fig1()
    return federation, ExactStatistics(federation)


class TestExactStatistics:
    def test_cardinality_and_distinct(self, dmv_stats):
        __, stats = dmv_stats
        assert stats.cardinality("R1") == 3
        assert stats.distinct_items("R1") == 3
        assert stats.universe_size() == 5

    def test_selectivity_is_item_fraction(self, dmv_stats):
        __, stats = dmv_stats
        # R3 has items {T21, S07}; only both satisfy V='sp' -> 1.0
        assert stats.selectivity("R3", parse_condition("V = 'sp'")) == 1.0
        # R1 items {J55, T21, T80}; dui holds for J55, T80 -> 2/3
        assert stats.selectivity(
            "R1", parse_condition("V = 'dui'")
        ) == pytest.approx(2 / 3)

    def test_selectivity_cached(self, dmv_stats):
        __, stats = dmv_stats
        condition = parse_condition("V = 'dui'")
        first = stats.selectivity("R1", condition)
        assert stats.selectivity("R1", condition) == first

    def test_unknown_source(self, dmv_stats):
        __, stats = dmv_stats
        with pytest.raises(StatisticsError):
            stats.selectivity("R9", parse_condition("V = 'x'"))

    def test_empty_source_selectivity_zero(self):
        from repro.relational.relation import Relation
        from repro.relational.schema import dmv_schema
        from repro.sources.registry import Federation
        from repro.sources.remote import RemoteSource
        from repro.sources.table_source import TableSource

        federation = Federation(
            [RemoteSource(TableSource(Relation("E", dmv_schema(), [])))]
        )
        stats = ExactStatistics(federation)
        assert stats.selectivity("E", parse_condition("V = 'x'")) == 0.0


class TestSampledStatistics:
    @pytest.fixture
    def synthetic(self):
        config = SyntheticConfig(n_sources=3, n_entities=500, seed=1)
        return build_synthetic(config), config

    def test_small_sources_fully_sampled(self, dmv_stats):
        federation, exact = dmv_stats
        sampled = SampledStatistics(federation, fraction=0.5, seed=0)
        condition = parse_condition("V = 'dui'")
        # DMV sources are tiny -> full sample -> exact agreement.
        for name in federation.source_names:
            assert sampled.selectivity(name, condition) == pytest.approx(
                exact.selectivity(name, condition)
            )

    def test_sample_estimates_are_close(self, synthetic):
        federation, config = synthetic
        exact = ExactStatistics(federation)
        sampled = SampledStatistics(federation, fraction=0.4, seed=0)
        conditions = synthetic_conditions(config, 6, seed=3)
        error = selectivity_error(
            exact, sampled, list(federation.source_names), conditions
        )
        assert error < 0.15

    def test_sample_is_deterministic(self, synthetic):
        federation, __ = synthetic
        a = SampledStatistics(federation, fraction=0.3, seed=5)
        b = SampledStatistics(federation, fraction=0.3, seed=5)
        condition = parse_condition("score < 500")
        assert a.selectivity("S000", condition) == b.selectivity(
            "S000", condition
        )

    def test_invalid_fraction(self, dmv_stats):
        federation, __ = dmv_stats
        with pytest.raises(StatisticsError):
            SampledStatistics(federation, fraction=0.0)

    def test_sample_size_reported(self, synthetic):
        federation, __ = synthetic
        sampled = SampledStatistics(federation, fraction=0.25, seed=0)
        for source in federation:
            assert 0 < sampled.sample_size(source.name) <= len(source.table)


class TestFrequencyTable:
    def test_fraction_equal_and_in(self):
        table = FrequencyTable(["a", "a", "b", None])
        assert table.fraction_equal("a") == 0.5
        assert table.fraction_equal("zzz") == 0.0
        assert table.fraction_in(frozenset({"a", "b"})) == 0.75
        assert table.fraction_null() == 0.25

    def test_fraction_like(self):
        table = FrequencyTable(["cat", "car", "dog"])
        assert table.fraction_like("ca%") == pytest.approx(2 / 3)

    def test_fraction_compare(self):
        table = FrequencyTable([1, 2, 3, 4])
        assert table.fraction_compare("<", 3) == 0.5
        assert table.fraction_compare(">=", 4) == 0.25

    def test_empty(self):
        table = FrequencyTable([])
        assert table.fraction_equal("a") == 0.0
        assert table.fraction_null() == 0.0


class TestEquiWidthHistogram:
    def test_fraction_below(self):
        histogram = EquiWidthHistogram(list(range(100)), buckets=10)
        assert histogram.fraction_below(50, inclusive=False) == pytest.approx(
            0.5, abs=0.05
        )
        assert histogram.fraction_below(-1, inclusive=True) == 0.0
        assert histogram.fraction_below(1000, inclusive=True) == 1.0

    def test_fraction_between(self):
        histogram = EquiWidthHistogram(list(range(100)), buckets=10)
        assert histogram.fraction_between(20, 40) == pytest.approx(
            0.2, abs=0.05
        )
        assert histogram.fraction_between(40, 20) == 0.0

    def test_no_numeric_values(self):
        histogram = EquiWidthHistogram([None, None])
        assert histogram.fraction_below(5, inclusive=True) == 0.0


class TestHistogramStatistics:
    @pytest.fixture
    def synthetic(self):
        config = SyntheticConfig(n_sources=3, n_entities=400, seed=9)
        return build_synthetic(config), config

    def test_estimates_reasonably_close_to_exact(self, synthetic):
        federation, config = synthetic
        exact = ExactStatistics(federation)
        histogram = HistogramStatistics(federation)
        conditions = synthetic_conditions(config, 8, seed=11)
        error = selectivity_error(
            exact, histogram, list(federation.source_names), conditions
        )
        assert error < 0.25

    def test_boolean_structure_estimation(self, synthetic):
        federation, __ = synthetic
        histogram = HistogramStatistics(federation)
        name = federation.source_names[0]
        a = parse_condition("score < 500")
        combined_and = parse_condition("score < 500 AND region = 'north'")
        combined_or = parse_condition("score < 500 OR region = 'north'")
        s_and = histogram.selectivity(name, combined_and)
        s_or = histogram.selectivity(name, combined_or)
        s_a = histogram.selectivity(name, a)
        assert 0.0 <= s_and <= s_a <= s_or <= 1.0

    def test_negation_complements_row_level(self, synthetic):
        federation, __ = synthetic
        histogram = HistogramStatistics(federation)
        name = federation.source_names[0]
        row_pos = histogram._row_selectivity(
            name, parse_condition("region = 'north'")
        )
        row_neg = histogram._row_selectivity(
            name, parse_condition("NOT region = 'north'")
        )
        assert row_pos + row_neg == pytest.approx(1.0)

    def test_selectivity_in_unit_interval(self, synthetic):
        federation, config = synthetic
        histogram = HistogramStatistics(federation)
        for condition in synthetic_conditions(config, 10, seed=2):
            for name in federation.source_names:
                assert 0.0 <= histogram.selectivity(name, condition) <= 1.0
