"""Unit tests for the Federation registry."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, UnknownSourceError
from repro.relational.parser import parse_condition
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema, dmv_schema
from repro.sources.generators import dmv_fig1
from repro.sources.registry import Federation
from repro.sources.remote import RemoteSource
from repro.sources.table_source import TableSource


class TestConstruction:
    def test_dmv_federation(self):
        federation, __ = dmv_fig1()
        assert federation.size == 3
        assert federation.source_names == ("R1", "R2", "R3")
        assert "R2" in federation
        assert len(federation) == 3

    def test_requires_sources(self):
        with pytest.raises(SchemaError):
            Federation([])

    def test_duplicate_names_rejected(self):
        table = TableSource(Relation("R1", dmv_schema(), []))
        with pytest.raises(SchemaError, match="duplicate"):
            Federation([RemoteSource(table), RemoteSource(table)])

    def test_incompatible_schema_rejected(self):
        good = RemoteSource(TableSource(Relation("R1", dmv_schema(), [])))
        other_schema = Schema(
            (Attribute("L"), Attribute("X")), merge_attribute="L"
        )
        bad = RemoteSource(TableSource(Relation("R2", other_schema, [])))
        with pytest.raises(SchemaError, match="not\\s+compatible"):
            Federation([good, bad])


class TestLookup:
    def test_source_by_name(self):
        federation, __ = dmv_fig1()
        assert federation.source("R2").name == "R2"

    def test_unknown_source(self):
        federation, __ = dmv_fig1()
        with pytest.raises(UnknownSourceError):
            federation.source("R9")


class TestOracleViews:
    def test_union_view_is_bag_union(self):
        federation, __ = dmv_fig1()
        union = federation.union_view()
        assert len(union) == 9  # 3 + 3 + 3 rows
        assert union.name == "U"

    def test_all_items(self):
        federation, __ = dmv_fig1()
        assert federation.all_items() == frozenset(
            {"J55", "T21", "T80", "T11", "S07"}
        )

    def test_union_view_does_not_charge_traffic(self):
        federation, __ = dmv_fig1()
        federation.union_view()
        assert federation.total_traffic_cost() == 0


class TestAccounting:
    def test_traffic_aggregation_and_reset(self):
        federation, __ = dmv_fig1()
        condition = parse_condition("V = 'dui'")
        for source in federation:
            source.selection(condition)
        assert federation.total_messages() == 3
        assert federation.total_traffic_cost() > 0
        federation.reset_traffic()
        assert federation.total_messages() == 0
        assert federation.total_traffic_cost() == 0

    def test_describe_mentions_each_source(self):
        federation, __ = dmv_fig1()
        text = federation.describe()
        for name in federation.source_names:
            assert name in text
