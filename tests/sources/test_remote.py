"""Unit tests for the remote-source wrapper (network + capabilities)."""

from __future__ import annotations

import pytest

from repro.errors import CapabilityError, SourceUnavailableError
from repro.relational.parser import parse_condition
from repro.relational.relation import Relation
from repro.relational.schema import dmv_schema
from repro.sources.capabilities import SourceCapabilities
from repro.sources.network import LinkProfile
from repro.sources.remote import FailureInjector, RemoteSource
from repro.sources.table_source import TableSource

ROWS = [("J55", "dui", 1993), ("T21", "sp", 1994), ("T80", "dui", 1993)]
LINK = LinkProfile(request_overhead=10, per_item_send=1, per_item_receive=1)


def make_source(capabilities=None, failure=None):
    return RemoteSource(
        TableSource(Relation("R1", dmv_schema(), ROWS)),
        capabilities=capabilities,
        link=LINK,
        failure=failure,
    )


class TestSelection:
    def test_selection_answer_and_charge(self):
        source = make_source()
        answer = source.selection(parse_condition("V = 'dui'"))
        assert answer == frozenset({"J55", "T80"})
        assert source.traffic.message_count == 1
        assert source.traffic.total_cost == 10 + 2  # overhead + 2 received

    def test_reset_traffic(self):
        source = make_source()
        source.selection(parse_condition("V = 'dui'"))
        source.reset_traffic()
        assert source.traffic.message_count == 0
        assert source.table.counters.selections == 0


class TestNativeSemijoin:
    def test_single_request(self):
        source = make_source()
        answer = source.semijoin(
            parse_condition("V = 'dui'"), frozenset({"J55", "T21", "T80"})
        )
        assert answer == frozenset({"J55", "T80"})
        assert source.traffic.message_count == 1
        # overhead + 3 sent + 2 received
        assert source.traffic.total_cost == 10 + 3 + 2

    def test_empty_binding_set_costs_nothing(self):
        source = make_source()
        assert source.semijoin(parse_condition("V = 'dui'"), frozenset()) == (
            frozenset()
        )
        assert source.traffic.message_count == 0

    def test_batching_splits_requests(self):
        source = make_source(
            capabilities=SourceCapabilities(max_semijoin_batch=2)
        )
        answer = source.semijoin(
            parse_condition("V = 'dui'"), frozenset({"J55", "T21", "T80"})
        )
        assert answer == frozenset({"J55", "T80"})
        assert source.traffic.message_count == 2  # ceil(3 / 2)

    def test_batched_equals_unbatched_answer(self):
        condition = parse_condition("D = 1993")
        items = frozenset({"J55", "T80", "T21", "XX"})
        unbatched = make_source().semijoin(condition, items)
        batched = make_source(
            capabilities=SourceCapabilities(max_semijoin_batch=1)
        ).semijoin(condition, items)
        assert unbatched == batched


class TestEmulatedSemijoin:
    def test_emulated_matches_native_answer(self):
        condition = parse_condition("V = 'dui'")
        items = frozenset({"J55", "T21", "T80"})
        native = make_source().semijoin(condition, items)
        emulated_source = make_source(
            capabilities=SourceCapabilities.selection_only()
        )
        assert emulated_source.semijoin(condition, items) == native

    def test_emulated_charges_per_binding(self):
        source = make_source(
            capabilities=SourceCapabilities.selection_only()
        )
        source.semijoin(parse_condition("V = 'dui'"), frozenset({"J55", "T21"}))
        assert source.traffic.message_count == 2
        operations = {record.operation for record in source.traffic}
        assert operations == {"sjq-emulated"}

    def test_unsupported_raises(self):
        source = make_source(capabilities=SourceCapabilities.minimal())
        with pytest.raises(CapabilityError):
            source.semijoin(parse_condition("V = 'dui'"), frozenset({"J55"}))


class TestLoadAndFetch:
    def test_load_charges_per_row(self):
        source = make_source()
        relation = source.load()
        assert len(relation) == 3
        record = source.traffic.records[-1]
        assert record.operation == "lq"
        assert record.rows_loaded == 3

    def test_load_unsupported(self):
        source = make_source(
            capabilities=SourceCapabilities(supports_load=False)
        )
        with pytest.raises(CapabilityError):
            source.load()

    def test_fetch_rows_restricts_to_items(self):
        source = make_source()
        rows = source.fetch_rows(frozenset({"J55"}))
        assert rows.items() == frozenset({"J55"})
        record = source.traffic.records[-1]
        assert record.operation == "fetch"
        assert record.items_sent == 1
        assert record.rows_loaded == 1


class TestFailureInjection:
    def test_injector_is_deterministic(self):
        a = FailureInjector(failure_rate=0.5, seed=1)
        b = FailureInjector(failure_rate=0.5, seed=1)

        def failure_pattern(injector):
            pattern = []
            for __ in range(20):
                try:
                    injector.maybe_fail("R1")
                    pattern.append(False)
                except SourceUnavailableError:
                    pattern.append(True)
            return pattern

        assert failure_pattern(a) == failure_pattern(b)

    def test_max_failures_bound(self):
        injector = FailureInjector(failure_rate=1.0, seed=0, max_failures=2)
        failures = 0
        for __ in range(10):
            try:
                injector.maybe_fail("R1")
            except SourceUnavailableError:
                failures += 1
        assert failures == 2
        assert injector.injected_failures == 2

    def test_rate_zero_never_fails(self):
        source = make_source(failure=FailureInjector(0.0, seed=3))
        for __ in range(5):
            source.selection(parse_condition("V = 'dui'"))
        assert source.traffic.message_count == 5

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FailureInjector(failure_rate=1.5)

    def test_failed_request_charges_nothing(self):
        source = make_source(
            failure=FailureInjector(1.0, seed=0, max_failures=1)
        )
        with pytest.raises(SourceUnavailableError):
            source.selection(parse_condition("V = 'dui'"))
        assert source.traffic.message_count == 0
        # next attempt succeeds (max_failures exhausted)
        source.selection(parse_condition("V = 'dui'"))
        assert source.traffic.message_count == 1
