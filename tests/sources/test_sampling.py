"""Unit tests for query-sampling cost calibration."""

from __future__ import annotations

import pytest

from repro.errors import StatisticsError
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    synthetic_conditions,
)
from repro.sources.sampling import (
    FittedLinkParameters,
    ProbeObservation,
    calibrate_federation,
    fit_parameters,
    probe_source,
)


@pytest.fixture
def setup():
    config = SyntheticConfig(
        n_sources=3,
        n_entities=300,
        overhead_range=(5.0, 30.0),
        send_range=(0.5, 2.0),
        receive_range=(0.5, 2.0),
        seed=4,
    )
    federation = build_synthetic(config)
    conditions = synthetic_conditions(config, 4, seed=8)
    return federation, conditions


class TestFit:
    def test_fit_recovers_linear_model_exactly(self):
        observations = [
            ProbeObservation("sq", s, r, 7.0 + 1.5 * s + 0.5 * r)
            for s, r in [(0, 5), (0, 9), (3, 2), (10, 1), (20, 8)]
        ]
        fitted = fit_parameters(observations)
        assert fitted.request_overhead == pytest.approx(7.0, abs=1e-6)
        assert fitted.per_item_send == pytest.approx(1.5, abs=1e-6)
        assert fitted.per_item_receive == pytest.approx(0.5, abs=1e-6)
        assert fitted.residual == pytest.approx(0.0, abs=1e-6)

    def test_fit_requires_observations(self):
        with pytest.raises(StatisticsError):
            fit_parameters([ProbeObservation("sq", 0, 1, 5.0)])

    def test_predict(self):
        fitted = FittedLinkParameters(10.0, 2.0, 3.0, 0.0, 5)
        assert fitted.predict(2, 3) == 10 + 4 + 9

    def test_parameters_clamped_non_negative(self):
        observations = [
            ProbeObservation("sq", s, r, 1.0)  # constant cost
            for s, r in [(0, 5), (1, 1), (2, 8), (4, 0)]
        ]
        fitted = fit_parameters(observations)
        assert fitted.request_overhead >= 0
        assert fitted.per_item_send >= 0
        assert fitted.per_item_receive >= 0


class TestProbing:
    def test_probe_source_collects_observations(self, setup):
        federation, conditions = setup
        source = federation.source(federation.source_names[0])
        observations = probe_source(
            source, conditions, federation.all_items(), seed=0
        )
        assert len(observations) >= len(conditions)
        assert any(obs.operation == "sjq" for obs in observations)

    def test_probe_requires_conditions(self, setup):
        federation, __ = setup
        source = federation.source(federation.source_names[0])
        with pytest.raises(StatisticsError):
            probe_source(source, [], federation.all_items())


class TestCalibration:
    def test_calibration_recovers_true_link_parameters(self, setup):
        federation, conditions = setup
        fitted = calibrate_federation(federation, conditions, seed=0)
        for source in federation:
            learned = fitted[source.name]
            # The simulated charge model *is* linear, so the fit should be
            # essentially exact.
            assert learned.request_overhead == pytest.approx(
                source.link.request_overhead, rel=0.05, abs=0.5
            )
            assert learned.residual < 1e-6

    def test_emulated_sources_calibrate_via_binding_probes(self):
        """Selection-only wrappers still yield enough observations: each
        emulated binding is its own probe request (regression for the
        tutorial's mixed-capability federation)."""
        from repro.sources.capabilities import SourceCapabilities
        from repro.sources.generators import dmv_fig1

        federation, query = dmv_fig1(
            capabilities=SourceCapabilities.selection_only()
        )
        fitted = calibrate_federation(
            federation, list(query.conditions), seed=0
        )
        for name in federation.source_names:
            assert fitted[name].probes >= 3
            assert fitted[name].request_overhead >= 0

    def test_calibration_cleans_probe_traffic(self, setup):
        federation, conditions = setup
        calibrate_federation(federation, conditions, seed=0)
        assert federation.total_messages() == 0
