"""Unit tests for workload generators."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.mediator.reference import reference_answer
from repro.sources.capabilities import SemijoinSupport
from repro.sources.generators import (
    DMV_FIG1_ANSWER,
    SyntheticConfig,
    bibliographic_federation,
    bibliographic_query,
    build_synthetic,
    dmv_fig1,
    random_item_set,
    synthetic_conditions,
    synthetic_query,
)


class TestDMVFig1:
    def test_exact_paper_contents(self):
        federation, __ = dmv_fig1()
        r1 = federation.source("R1").table.relation
        assert r1.rows == (
            ("J55", "dui", 1993),
            ("T21", "sp", 1994),
            ("T80", "dui", 1993),
        )
        r3 = federation.source("R3").table.relation
        assert ("S07", "sp", 1996) in r3

    def test_query_answer_matches_paper(self):
        federation, query = dmv_fig1()
        assert reference_answer(federation, query) == DMV_FIG1_ANSWER

    def test_answer_requires_cross_source_fusion(self):
        """No single source contains both violations for J55 — the
        defining property of the example."""
        federation, query = dmv_fig1()
        dui, sp = query.conditions
        for source in federation:
            relation = source.table.relation
            from repro.relational.algebra import select_items

            both_here = select_items(relation, dui) & select_items(relation, sp)
            assert "J55" not in both_here


class TestSyntheticConfig:
    def test_validation(self):
        with pytest.raises(QueryError):
            SyntheticConfig(n_sources=0)
        with pytest.raises(QueryError):
            SyntheticConfig(n_entities=0)
        with pytest.raises(QueryError):
            SyntheticConfig(native_fraction=0.8, emulated_fraction=0.5)


class TestBuildSynthetic:
    def test_deterministic(self):
        config = SyntheticConfig(n_sources=3, n_entities=100, seed=13)
        a = build_synthetic(config)
        b = build_synthetic(config)
        for name in a.source_names:
            assert a.source(name).table.relation == b.source(name).table.relation

    def test_source_count_and_schema(self):
        config = SyntheticConfig(n_sources=5, n_entities=50, seed=0)
        federation = build_synthetic(config)
        assert federation.size == 5
        assert federation.schema.merge_attribute == "id"

    def test_coverage_bounds_respected(self):
        config = SyntheticConfig(
            n_sources=4, n_entities=200, coverage=0.25, seed=2
        )
        federation = build_synthetic(config)
        for source in federation:
            assert len(source.table.relation.items()) == 50

    def test_rows_per_entity_range(self):
        config = SyntheticConfig(
            n_sources=2,
            n_entities=100,
            coverage=0.5,
            rows_per_entity=(2, 2),
            seed=3,
        )
        federation = build_synthetic(config)
        for source in federation:
            relation = source.table.relation
            assert len(relation) == 2 * len(relation.items())

    def test_capability_fractions(self):
        config = SyntheticConfig(
            n_sources=10,
            n_entities=50,
            native_fraction=0.5,
            emulated_fraction=0.3,
            seed=7,
        )
        federation = build_synthetic(config)
        tiers = [source.capabilities.semijoin for source in federation]
        assert tiers.count(SemijoinSupport.NATIVE) == 5
        assert tiers.count(SemijoinSupport.EMULATED) == 3
        assert tiers.count(SemijoinSupport.UNSUPPORTED) == 2

    def test_heterogeneous_link_parameters(self):
        config = SyntheticConfig(
            n_sources=5,
            n_entities=50,
            overhead_range=(1.0, 100.0),
            seed=21,
        )
        federation = build_synthetic(config)
        overheads = {source.link.request_overhead for source in federation}
        assert len(overheads) > 1


class TestSyntheticConditions:
    def test_count_and_determinism(self):
        config = SyntheticConfig(seed=5)
        a = synthetic_conditions(config, 6, seed=1)
        b = synthetic_conditions(config, 6, seed=1)
        assert len(a) == 6
        assert a == b

    def test_query_wrapper(self):
        config = SyntheticConfig(seed=5)
        query = synthetic_query(config, m=4, seed=2)
        assert query.arity == 4
        assert query.merge_attribute == "id"

    def test_conditions_evaluable_on_generated_data(self):
        config = SyntheticConfig(n_sources=2, n_entities=80, seed=6)
        federation = build_synthetic(config)
        query = synthetic_query(config, m=3, seed=6)
        # Must not raise; answers may be empty.
        reference_answer(federation, query)


class TestBibliographic:
    def test_federation_shape(self):
        federation = bibliographic_federation(n_libraries=4, n_documents=100, seed=0)
        assert federation.size == 4
        assert federation.schema.merge_attribute == "doc"
        # The last library is selection-only by construction.
        last = federation.source(federation.source_names[-1])
        assert last.capabilities.semijoin is SemijoinSupport.EMULATED

    def test_query_answers_nonempty_with_common_keywords(self):
        federation = bibliographic_federation(
            n_libraries=3, n_documents=300, seed=1
        )
        query = bibliographic_query(("mediator", "semijoin"))
        answer = reference_answer(federation, query)
        assert len(answer) > 0

    def test_year_floor_narrows_answer(self):
        federation = bibliographic_federation(
            n_libraries=3, n_documents=300, seed=1
        )
        broad = reference_answer(
            federation, bibliographic_query(("mediator", "semijoin"))
        )
        narrow = reference_answer(
            federation,
            bibliographic_query(("mediator", "semijoin"), since_year=1996),
        )
        assert narrow <= broad


class TestHelpers:
    def test_random_item_set(self):
        items = random_item_set(100, 10, seed=0)
        assert len(items) == 10
        assert random_item_set(100, 10, seed=0) == items

    def test_random_item_set_caps_at_universe(self):
        assert len(random_item_set(5, 10, seed=0)) == 5
