"""Unit tests for link profiles and traffic accounting."""

from __future__ import annotations

import pytest

from repro.errors import CostModelError
from repro.sources.network import LinkProfile, TrafficLog


class TestLinkProfile:
    def test_request_cost_formula(self):
        link = LinkProfile(
            request_overhead=10.0,
            per_item_send=2.0,
            per_item_receive=3.0,
            per_row_load=5.0,
        )
        assert link.request_cost(4, 2) == 10 + 8 + 6
        assert link.request_cost(0, 0, rows_loaded=3) == 10 + 15

    def test_request_time_includes_round_trip(self):
        link = LinkProfile(latency_s=0.1, items_per_s=100.0)
        assert link.request_time_s(10, 10) == pytest.approx(0.2 + 0.2)

    def test_negative_parameters_rejected(self):
        with pytest.raises(CostModelError):
            LinkProfile(request_overhead=-1)
        with pytest.raises(CostModelError):
            LinkProfile(per_item_send=-0.1)
        with pytest.raises(CostModelError):
            LinkProfile(items_per_s=0)

    def test_negative_traffic_rejected(self):
        with pytest.raises(CostModelError):
            LinkProfile().request_cost(-1, 0)


class TestTrafficLog:
    @pytest.fixture
    def log(self):
        log = TrafficLog()
        link = LinkProfile(request_overhead=10, per_item_send=1, per_item_receive=1)
        log.charge(link, "R1", "sq", 0, 5)
        log.charge(link, "R1", "sjq", 3, 2)
        log.charge(link, "R2", "sq", 0, 7)
        return log

    def test_totals(self, log):
        assert log.message_count == 3
        assert log.items_sent == 3
        assert log.items_received == 14
        assert log.total_cost == (10 + 5) + (10 + 3 + 2) + (10 + 7)

    def test_by_source(self, log):
        per_source = log.by_source()
        assert per_source["R1"] == 30
        assert per_source["R2"] == 17

    def test_by_operation(self, log):
        per_op = log.by_operation()
        assert set(per_op) == {"sq", "sjq"}
        assert per_op["sjq"] == 15

    def test_clear(self, log):
        log.clear()
        assert log.message_count == 0
        assert log.total_cost == 0

    def test_summary_mentions_messages(self, log):
        assert "3 messages" in log.summary()

    def test_elapsed_accumulates(self, log):
        assert log.total_elapsed_s > 0


class TestLinkProfileFiniteness:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    @pytest.mark.parametrize(
        "field_name",
        [
            "request_overhead",
            "per_item_send",
            "per_item_receive",
            "per_row_load",
            "latency_s",
            "items_per_s",
        ],
    )
    def test_non_finite_parameters_rejected(self, field_name, bad):
        with pytest.raises(CostModelError):
            LinkProfile(**{field_name: bad})

    def test_finite_parameters_accepted(self):
        link = LinkProfile(request_overhead=0.0, latency_s=0.0)
        assert link.request_cost(1, 1) == pytest.approx(2.0)
