"""Unit tests for federation serialization (JSON specs, CSV data)."""

from __future__ import annotations

import json

import pytest

from repro.errors import SchemaError
from repro.io import (
    capabilities_from_dict,
    capabilities_to_dict,
    federation_from_dict,
    federation_to_dict,
    link_from_dict,
    link_to_dict,
    load_federation,
    rows_from_csv,
    save_federation,
    schema_from_dict,
    schema_to_dict,
)
from repro.mediator.reference import reference_answer
from repro.relational.schema import dmv_schema
from repro.sources.capabilities import SemijoinSupport, SourceCapabilities
from repro.sources.generators import DMV_FIG1_ANSWER, dmv_fig1
from repro.sources.network import LinkProfile


class TestSchemaRoundTrip:
    def test_roundtrip(self):
        schema = dmv_schema()
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_missing_keys_rejected(self):
        with pytest.raises(SchemaError, match="missing key"):
            schema_from_dict({"attributes": [{"name": "L"}]})


class TestCapabilitiesAndLinks:
    def test_capabilities_roundtrip(self):
        for capabilities in (
            SourceCapabilities.full(),
            SourceCapabilities.selection_only(),
            SourceCapabilities.minimal(),
            SourceCapabilities(max_semijoin_batch=50),
        ):
            assert (
                capabilities_from_dict(capabilities_to_dict(capabilities))
                == capabilities
            )

    def test_link_roundtrip(self):
        link = LinkProfile(
            request_overhead=7.5, per_item_send=0.3, latency_s=0.25
        )
        assert link_from_dict(link_to_dict(link)) == link

    def test_defaults_applied(self):
        assert capabilities_from_dict({}).semijoin is SemijoinSupport.NATIVE
        assert link_from_dict({}).request_overhead == LinkProfile().request_overhead


class TestFederationRoundTrip:
    def test_dmv_roundtrip_preserves_answers(self):
        federation, query = dmv_fig1()
        rebuilt = federation_from_dict(federation_to_dict(federation))
        assert rebuilt.source_names == federation.source_names
        assert reference_answer(rebuilt, query) == DMV_FIG1_ANSWER

    def test_file_roundtrip(self, tmp_path):
        federation, query = dmv_fig1()
        path = tmp_path / "dmv.json"
        save_federation(federation, str(path))
        loaded = load_federation(str(path))
        assert reference_answer(loaded, query) == DMV_FIG1_ANSWER
        # the file is plain JSON
        data = json.loads(path.read_text())
        assert data["schema"]["merge"] == "L"

    def test_empty_sources_rejected(self):
        with pytest.raises(SchemaError, match="no sources"):
            federation_from_dict(
                {"schema": schema_to_dict(dmv_schema()), "sources": []}
            )

    def test_json_rows_coerced(self):
        spec = {
            "schema": schema_to_dict(dmv_schema()),
            "sources": [
                {"name": "R1", "rows": [["J55", "dui", 1993]]},
            ],
        }
        federation = federation_from_dict(spec)
        assert federation.source("R1").table.relation.rows == (
            ("J55", "dui", 1993),
        )


class TestCSV:
    def test_rows_from_csv(self, tmp_path):
        path = tmp_path / "r1.csv"
        path.write_text("L,V,D\nJ55,dui,1993\nT21,sp,1994\n")
        rows = rows_from_csv(str(path), dmv_schema())
        assert rows == [("J55", "dui", 1993), ("T21", "sp", 1994)]

    def test_csv_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("L,V\nJ55,dui\n")
        with pytest.raises(SchemaError, match="lacks columns"):
            rows_from_csv(str(path), dmv_schema())

    def test_csv_source_in_spec(self, tmp_path):
        csv_path = tmp_path / "r1.csv"
        csv_path.write_text("L,V,D\nJ55,dui,1993\n")
        spec_path = tmp_path / "federation.json"
        spec_path.write_text(
            json.dumps(
                {
                    "schema": schema_to_dict(dmv_schema()),
                    "sources": [{"name": "R1", "csv": "r1.csv"}],
                }
            )
        )
        federation = load_federation(str(spec_path))
        assert len(federation.source("R1").table) == 1


class TestAggregateCapabilityIO:
    def test_supports_aggregates_round_trips(self):
        caps = SourceCapabilities.analytic()
        assert capabilities_from_dict(capabilities_to_dict(caps)) == caps
        assert capabilities_from_dict(
            capabilities_to_dict(caps)
        ).supports_aggregates

    def test_legacy_dict_defaults_to_false(self):
        # Spec files written before PR 10 carry no aggregate key.
        payload = capabilities_to_dict(SourceCapabilities.full())
        payload.pop("supports_aggregates", None)
        assert capabilities_from_dict(payload).supports_aggregates is False
