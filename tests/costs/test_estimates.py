"""Unit tests for size estimation under independence."""

from __future__ import annotations

import pytest

from repro.costs.estimates import SizeEstimator
from repro.relational.parser import parse_condition
from repro.sources.generators import dmv_fig1
from repro.sources.statistics import ExactStatistics

DUI = parse_condition("V = 'dui'")
SP = parse_condition("V = 'sp'")


@pytest.fixture
def estimator():
    federation, __ = dmv_fig1()
    return SizeEstimator(ExactStatistics(federation), federation.source_names)


class TestPerSource:
    def test_coverage(self, estimator):
        # R1 holds 3 of the 5 universe items.
        assert estimator.coverage("R1") == pytest.approx(3 / 5)
        assert estimator.coverage("R3") == pytest.approx(2 / 5)

    def test_sq_output_size_is_exact_for_oracle_stats(self, estimator):
        # R1: items {J55, T80} satisfy dui -> 2
        assert estimator.sq_output_size(DUI, "R1") == pytest.approx(2.0)
        # R3: both items satisfy sp -> 2
        assert estimator.sq_output_size(SP, "R3") == pytest.approx(2.0)

    def test_match_fraction(self, estimator):
        # P(item at R1 and dui there) = coverage 3/5 * selectivity 2/3 = 2/5
        assert estimator.match_fraction(DUI, "R1") == pytest.approx(0.4)

    def test_sjq_output_size_linear_in_input(self, estimator):
        small = estimator.sjq_output_size(DUI, "R1", 5)
        large = estimator.sjq_output_size(DUI, "R1", 10)
        assert large == pytest.approx(2 * small)


class TestFederationWide:
    def test_global_selectivity_bounds(self, estimator):
        g = estimator.global_selectivity(DUI)
        assert 0.0 < g <= 1.0
        # At least the per-source max: mf(R1)=0.4, mf(R2)=1/5, mf(R3)=0.
        assert g >= 0.4

    def test_union_selection_size(self, estimator):
        assert estimator.union_selection_size(DUI) == pytest.approx(
            5 * estimator.global_selectivity(DUI)
        )

    def test_prefix_size_multiplies(self, estimator):
        single = estimator.prefix_size([DUI])
        double = estimator.prefix_size([DUI, SP])
        assert double == pytest.approx(
            single * estimator.global_selectivity(SP)
        )

    def test_prefix_empty_is_universe(self, estimator):
        assert estimator.prefix_size([]) == 5.0

    def test_answer_size_alias(self, estimator):
        assert estimator.answer_size([DUI, SP]) == estimator.prefix_size(
            [DUI, SP]
        )

    def test_global_selectivity_cached(self, estimator):
        first = estimator.global_selectivity(DUI)
        assert estimator.global_selectivity(DUI) == first
