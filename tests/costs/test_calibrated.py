"""Unit tests for the calibrated (learned-parameters) cost model."""

from __future__ import annotations

import math

import pytest

from repro.costs.calibrated import CalibratedCostModel
from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    synthetic_conditions,
)
from repro.sources.statistics import ExactStatistics


@pytest.fixture
def setup():
    config = SyntheticConfig(
        n_sources=4,
        n_entities=300,
        overhead_range=(5.0, 40.0),
        send_range=(0.5, 2.0),
        receive_range=(0.5, 2.0),
        seed=17,
    )
    federation = build_synthetic(config)
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    probes = synthetic_conditions(config, 4, seed=23)
    calibrated = CalibratedCostModel.calibrate(
        federation, estimator, probes, seed=0
    )
    oracle = ChargeCostModel.for_federation(federation, estimator)
    conditions = synthetic_conditions(config, 5, seed=31)
    return federation, calibrated, oracle, conditions


class TestAgreementWithOracle:
    def test_sq_costs_close(self, setup):
        federation, calibrated, oracle, conditions = setup
        for condition in conditions:
            for name in federation.source_names:
                learned = calibrated.sq_cost(condition, name)
                truth = oracle.sq_cost(condition, name)
                assert learned == pytest.approx(truth, rel=0.05, abs=1.0)

    def test_sjq_costs_close(self, setup):
        federation, calibrated, oracle, conditions = setup
        for condition in conditions[:2]:
            for name in federation.source_names:
                learned = calibrated.sjq_cost(condition, name, 50)
                truth = oracle.sjq_cost(condition, name, 50)
                assert learned == pytest.approx(truth, rel=0.05, abs=2.0)


class TestStructure:
    def test_zero_input_semijoin_free(self, setup):
        federation, calibrated, __, conditions = setup
        assert calibrated.sjq_cost(
            conditions[0], federation.source_names[0], 0
        ) == 0.0

    def test_lq_extrapolation_positive_and_finite(self, setup):
        federation, calibrated, __, __ = setup
        for name in federation.source_names:
            cost = calibrated.lq_cost(name)
            assert math.isfinite(cost)
            assert cost > 0

    def test_unsupported_semijoin_infinite(self):
        config = SyntheticConfig(
            n_sources=3,
            n_entities=100,
            native_fraction=0.0,
            emulated_fraction=0.0,
            seed=3,
        )
        federation = build_synthetic(config)
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        probes = synthetic_conditions(config, 3, seed=1)
        calibrated = CalibratedCostModel.calibrate(
            federation, estimator, probes, seed=0
        )
        assert math.isinf(
            calibrated.sjq_cost(probes[0], federation.source_names[0], 5)
        )
