"""Unit tests for the charge-based cost model."""

from __future__ import annotations

import math

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.costs.model import check_cost_axioms
from repro.relational.parser import parse_condition
from repro.relational.relation import Relation
from repro.relational.schema import dmv_schema
from repro.sources.capabilities import SourceCapabilities
from repro.sources.generators import dmv_fig1
from repro.sources.network import LinkProfile
from repro.sources.registry import Federation
from repro.sources.remote import RemoteSource
from repro.sources.statistics import ExactStatistics
from repro.sources.table_source import TableSource

DUI = parse_condition("V = 'dui'")
SP = parse_condition("V = 'sp'")


@pytest.fixture
def dmv_model():
    federation, __ = dmv_fig1()
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    return federation, estimator, ChargeCostModel.for_federation(
        federation, estimator
    )


class TestSelectionCost:
    def test_sq_cost_formula(self, dmv_model):
        __, estimator, model = dmv_model
        # overhead 10 + 2 estimated items * 1.0 receive
        assert model.sq_cost(DUI, "R1") == pytest.approx(12.0)

    def test_sq_cost_zero_selectivity(self, dmv_model):
        __, __, model = dmv_model
        # R3 has no dui items -> just the overhead.
        assert model.sq_cost(DUI, "R3") == pytest.approx(10.0)


class TestSemijoinCost:
    def test_native_single_request(self, dmv_model):
        __, estimator, model = dmv_model
        expected_received = estimator.sjq_output_size(DUI, "R1", 10)
        assert model.sjq_cost(DUI, "R1", 10) == pytest.approx(
            10 + 10 * 1.0 + expected_received * 1.0
        )

    def test_zero_input_costs_nothing(self, dmv_model):
        __, __, model = dmv_model
        assert model.sjq_cost(DUI, "R1", 0) == 0.0

    def test_batched_pays_multiple_overheads(self):
        federation, __ = dmv_fig1(
            capabilities=SourceCapabilities(max_semijoin_batch=4)
        )
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        unbatched_like = model.sjq_cost(DUI, "R1", 4)
        batched = model.sjq_cost(DUI, "R1", 10)  # ceil(10/4) = 3 overheads
        assert batched > 3 * 10  # at least three request overheads

    def test_emulated_pays_overhead_per_binding(self):
        federation, __ = dmv_fig1(
            capabilities=SourceCapabilities.selection_only()
        )
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        cost = model.sjq_cost(DUI, "R1", 10)
        assert cost >= 10 * (10 + 1)  # 10 probes, each overhead + 1 sent

    def test_unsupported_is_infinite(self):
        federation, __ = dmv_fig1(capabilities=SourceCapabilities.minimal())
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        assert math.isinf(model.sjq_cost(DUI, "R1", 5))
        assert not model.supports_semijoin("R1", DUI)


class TestLoadCost:
    def test_lq_cost_formula(self, dmv_model):
        __, __, model = dmv_model
        # overhead 10 + 3 rows * 2.0 per-row
        assert model.lq_cost("R1") == pytest.approx(16.0)

    def test_lq_unsupported_infinite(self):
        federation, __ = dmv_fig1(
            capabilities=SourceCapabilities(supports_load=False)
        )
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        assert math.isinf(model.lq_cost("R1"))


class TestAxioms:
    def test_charge_model_satisfies_axioms(self, dmv_model):
        federation, __, model = dmv_model
        violations = check_cost_axioms(
            model, [DUI, SP], list(federation.source_names)
        )
        assert violations == []

    def test_axioms_hold_with_batching_and_emulation(self):
        schema = dmv_schema()
        rows = [("A1", "dui", 1990), ("B2", "sp", 1991)]
        sources = [
            RemoteSource(
                TableSource(Relation("N", schema, rows)),
                SourceCapabilities(max_semijoin_batch=2),
                LinkProfile(request_overhead=20),
            ),
            RemoteSource(
                TableSource(Relation("E", schema, rows)),
                SourceCapabilities.selection_only(),
                LinkProfile(request_overhead=5),
            ),
        ]
        federation = Federation(sources)
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        violations = check_cost_axioms(model, [DUI], ["N", "E"])
        assert violations == []
