"""Unit tests for the correlation-aware size estimator."""

from __future__ import annotations

import pytest

from repro.costs.correlation import CorrelatedSizeEstimator, CorrelationModel
from repro.costs.estimates import SizeEstimator
from repro.errors import StatisticsError
from repro.query.fusion import FusionQuery
from repro.relational.relation import Relation
from repro.relational.schema import dmv_schema
from repro.sources.generators import dmv_fig1
from repro.sources.registry import Federation
from repro.sources.remote import RemoteSource
from repro.sources.statistics import ExactStatistics
from repro.sources.table_source import TableSource


def correlated_federation():
    """Entities where condition A implies condition B — strong positive
    correlation that independence misses entirely."""
    rows = []
    for i in range(60):
        item = f"E{i:03d}"
        if i < 20:
            rows.append((item, "dui", 1995))  # A and (below) B
            rows.append((item, "sp", 1995))
        elif i < 40:
            rows.append((item, "sp", 1990))  # B only
        else:
            rows.append((item, "parking", 1990))  # neither
    relation = Relation("R1", dmv_schema(), rows)
    return Federation([RemoteSource(TableSource(relation))])


class TestCorrelationModel:
    def test_marginals_match_data(self):
        federation = correlated_federation()
        query = FusionQuery.from_strings("L", ["V = 'dui'", "V = 'sp'"])
        model = CorrelationModel.from_federation(
            federation, query.conditions, sample_size=1000, seed=0
        )
        dui, sp = query.conditions
        assert model.marginal(dui) == pytest.approx(20 / 60)
        assert model.marginal(sp) == pytest.approx(40 / 60)
        assert model.joint(dui, sp) == pytest.approx(20 / 60)

    def test_conditional_and_lift(self):
        federation = correlated_federation()
        query = FusionQuery.from_strings("L", ["V = 'dui'", "V = 'sp'"])
        model = CorrelationModel.from_federation(
            federation, query.conditions, sample_size=1000, seed=0
        )
        dui, sp = query.conditions
        # dui implies sp: P(sp | dui) = 1.
        assert model.conditional(sp, dui) == pytest.approx(1.0)
        # lift = (1/3) / (1/3 * 2/3) = 1.5 > 1 (positive correlation)
        assert model.lift(dui, sp) == pytest.approx(1.5)

    def test_unknown_pair_returns_none(self):
        federation = correlated_federation()
        query = FusionQuery.from_strings("L", ["V = 'dui'", "V = 'sp'"])
        model = CorrelationModel.from_federation(
            federation, query.conditions, seed=0
        )
        from repro.relational.parser import parse_condition

        other = parse_condition("D = 1990")
        assert model.marginal(other) is None
        assert model.conditional(other, query.conditions[0]) is None

    def test_requires_conditions_and_data(self):
        federation = correlated_federation()
        with pytest.raises(StatisticsError):
            CorrelationModel.from_federation(federation, [], seed=0)

    def test_sampling_is_deterministic(self):
        federation = correlated_federation()
        query = FusionQuery.from_strings("L", ["V = 'dui'", "V = 'sp'"])
        a = CorrelationModel.from_federation(
            federation, query.conditions, sample_size=30, seed=5
        )
        b = CorrelationModel.from_federation(
            federation, query.conditions, sample_size=30, seed=5
        )
        assert a.marginals == b.marginals
        assert a.joints == b.joints


class TestCorrelatedSizeEstimator:
    def test_corrects_independence_underestimate(self):
        """Independence predicts |X2| = 60·(1/3)·(2/3) ≈ 13.3; the true
        fused answer has 20 items.  The correlated estimator nails it."""
        federation = correlated_federation()
        query = FusionQuery.from_strings("L", ["V = 'dui'", "V = 'sp'"])
        statistics = ExactStatistics(federation)
        plain = SizeEstimator(statistics, federation.source_names)
        model = CorrelationModel.from_federation(
            federation, query.conditions, sample_size=1000, seed=0
        )
        correlated = CorrelatedSizeEstimator(
            statistics, federation.source_names, model
        )
        independent_guess = plain.prefix_size(query.conditions)
        corrected_guess = correlated.prefix_size(query.conditions)
        assert independent_guess == pytest.approx(60 * (1 / 3) * (2 / 3))
        assert corrected_guess == pytest.approx(20.0)

    def test_falls_back_to_independence_for_unregistered(self):
        federation, query = dmv_fig1()
        statistics = ExactStatistics(federation)
        model = CorrelationModel.from_federation(
            federation, query.conditions, seed=0
        )
        correlated = CorrelatedSizeEstimator(
            statistics, federation.source_names, model
        )
        plain = SizeEstimator(statistics, federation.source_names)
        from repro.relational.parser import parse_condition

        unregistered = [parse_condition("D = 1993"), parse_condition("D = 1994")]
        assert correlated.prefix_size(unregistered) == pytest.approx(
            plain.prefix_size(unregistered)
        )

    def test_drop_in_for_optimizers(self):
        from repro.costs.charge import ChargeCostModel
        from repro.mediator.executor import Executor
        from repro.mediator.reference import reference_answer
        from repro.optimize.sja import SJAOptimizer

        federation = correlated_federation()
        query = FusionQuery.from_strings("L", ["V = 'dui'", "V = 'sp'"])
        statistics = ExactStatistics(federation)
        model = CorrelationModel.from_federation(
            federation, query.conditions, seed=0
        )
        estimator = CorrelatedSizeEstimator(
            statistics, federation.source_names, model
        )
        cost_model = ChargeCostModel.for_federation(federation, estimator)
        result = SJAOptimizer().optimize(
            query, federation.source_names, cost_model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)
