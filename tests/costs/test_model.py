"""Unit tests for the abstract cost model, axioms, and simple models."""

from __future__ import annotations

import math

import pytest

from repro.costs.model import (
    INFINITE_COST,
    CostModel,
    TableCostModel,
    UniformCostModel,
    check_cost_axioms,
)
from repro.errors import CostModelError
from repro.relational.parser import parse_condition

CONDITION = parse_condition("V = 'dui'")
OTHER = parse_condition("V = 'sp'")


class TestUniformCostModel:
    def test_costs(self):
        model = UniformCostModel(sq=100, sjq_fixed=10, sjq_per_item=2, lq=500)
        assert model.sq_cost(CONDITION, "R1") == 100
        assert model.sjq_cost(CONDITION, "R1", 5) == 20
        assert model.lq_cost("R1") == 500

    def test_negative_parameters_rejected(self):
        with pytest.raises(CostModelError):
            UniformCostModel(sq=-1)

    def test_negative_input_size_rejected(self):
        with pytest.raises(CostModelError):
            UniformCostModel().sjq_cost(CONDITION, "R1", -1)

    def test_satisfies_axioms(self):
        violations = check_cost_axioms(
            UniformCostModel(), [CONDITION, OTHER], ["R1", "R2"]
        )
        assert violations == []

    def test_supports_semijoin(self):
        assert UniformCostModel().supports_semijoin("R1", CONDITION)


class TestTableCostModel:
    def test_lookup_with_defaults(self):
        model = TableCostModel(
            sq_table={(CONDITION, "R1"): 50.0},
            sjq_table={(CONDITION, "R1"): (5.0, 0.5)},
            lq_table={"R1": 200.0},
            default_sq=99.0,
        )
        assert model.sq_cost(CONDITION, "R1") == 50.0
        assert model.sq_cost(OTHER, "R1") == 99.0
        assert model.sjq_cost(CONDITION, "R1", 10) == 10.0
        assert model.lq_cost("R1") == 200.0
        assert model.lq_cost("R2") == INFINITE_COST

    def test_infinite_semijoin_detected(self):
        model = TableCostModel(
            sjq_table={(CONDITION, "R1"): (INFINITE_COST, 0.0)}
        )
        assert not model.supports_semijoin("R1", CONDITION)

    def test_satisfies_axioms(self):
        violations = check_cost_axioms(
            TableCostModel(), [CONDITION], ["R1"]
        )
        assert violations == []


class _BrokenModel(CostModel):
    """Deliberately violates subadditivity and non-negativity."""

    def sq_cost(self, condition, source_name):
        return -5.0

    def sjq_cost(self, condition, source_name, input_size):
        # Superadditive: quadratic in the binding size.
        return input_size**2

    def lq_cost(self, source_name):
        return 10.0


class TestAxiomChecker:
    def test_detects_violations(self):
        violations = check_cost_axioms(_BrokenModel(), [CONDITION], ["R1"])
        axioms = {violation.axiom for violation in violations}
        assert "non-negativity" in axioms
        assert "subadditivity" in axioms

    def test_detects_decreasing_semijoin_cost(self):
        class Decreasing(CostModel):
            def sq_cost(self, condition, source_name):
                return 1.0

            def sjq_cost(self, condition, source_name, input_size):
                return max(0.0, 100.0 - input_size)

            def lq_cost(self, source_name):
                return math.inf

        violations = check_cost_axioms(Decreasing(), [CONDITION], ["R1"])
        assert any(v.axiom == "monotonicity" for v in violations)
