"""End-to-end tests for the recorder: instrumented runs, determinism,
replay byte-equality, and the profile the mediator attaches."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.mediator.session import Mediator
from repro.obs import EventLog, Recorder
from repro.obs.replay import trace_from_events
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.plans.builder import build_filter_plan
from repro.runtime.engine import RuntimeEngine
from repro.runtime.faults import FaultInjector, FaultProfile
from repro.runtime.trace import RuntimeTrace
from repro.sources.generators import dmv_fig1


def flaky_mediator(recorder=None, **kwargs):
    federation, query = dmv_fig1()
    mediator = Mediator(
        federation,
        backend="runtime",
        faults=FaultInjector(
            {"R1": FaultProfile(transient_rate=0.4)}, seed=7
        ),
        recorder=recorder,
        **kwargs,
    )
    return mediator, query


class TestInstrumentedRuns:
    def test_every_event_validates_against_the_schema(self):
        recorder = Recorder()
        mediator, query = flaky_mediator(recorder)
        mediator.answer(query)
        assert len(recorder.events) > 0
        # from_jsonl re-validates every record line by line.
        restored = EventLog.from_jsonl(recorder.events.to_jsonl())
        assert len(restored) == len(recorder.events)

    def test_run_lifecycle_events_present(self):
        recorder = Recorder()
        mediator, query = flaky_mediator(recorder)
        answer = mediator.answer(query)
        types = {event.type for event in recorder.events}
        assert {"run_start", "attempt", "op", "run_end"} <= types
        end = recorder.events.of_type("run_end")[-1]
        assert end["items"] == len(answer.items)
        assert end["backend"] == "runtime"

    def test_same_seed_runs_emit_identical_jsonl(self):
        streams = []
        for __ in range(2):
            recorder = Recorder()
            mediator, query = flaky_mediator(recorder)
            mediator.answer(query)
            streams.append(recorder.events.to_jsonl())
        assert streams[0] == streams[1]

    def test_metrics_populated_alongside_events(self):
        recorder = Recorder()
        mediator, query = flaky_mediator(recorder)
        mediator.answer(query)
        snapshot = recorder.metrics.to_json()
        assert 'repro_runs_total{backend="runtime"}' in snapshot
        assert any(
            key.startswith("repro_attempts_total") for key in snapshot
        )

    def test_recorder_with_one_sink_disabled(self):
        events_only = Recorder(metrics=None)
        assert events_only.metrics is None
        assert events_only.events is not None
        metrics_only = Recorder(events=None)
        assert metrics_only.events is None
        assert metrics_only.metrics is not None
        mediator, query = flaky_mediator(events_only)
        mediator.answer(query)
        assert len(events_only.events) > 0


class TestDisabledRecorderIdentity:
    def test_uninstrumented_run_is_byte_identical(self):
        # recorder=None (the default) must not perturb execution at all:
        # same answer, same trace rendering, same summary.
        outputs = []
        for recorder in (None, Recorder()):
            federation, query = dmv_fig1()
            plan = build_filter_plan(query, federation.source_names)
            engine = RuntimeEngine(
                federation,
                faults=FaultInjector(
                    {"R1": FaultProfile(transient_rate=0.4)}, seed=7
                ),
                recorder=recorder,
            )
            result = engine.run(plan)
            outputs.append(
                (
                    result.items,
                    result.trace.timeline(),
                    result.trace.utilization_report(),
                    result.trace.summary(),
                )
            )
        assert outputs[0] == outputs[1]


class TestReplay:
    def run_with_recorder(self):
        recorder = Recorder()
        federation, query = dmv_fig1()
        plan = SJAPlusOptimizer().optimize(
            query,
            federation.source_names,
            Mediator(federation).cost_model,
            Mediator(federation).estimator,
        ).plan
        engine = RuntimeEngine(
            federation,
            faults=FaultInjector(
                {"R1": FaultProfile(transient_rate=0.4)}, seed=7
            ),
            recorder=recorder,
        )
        return engine.run(plan), recorder

    def test_timeline_reproduced_from_events(self):
        result, recorder = self.run_with_recorder()
        replayed = trace_from_events(recorder.events)
        assert replayed.timeline() == result.trace.timeline()
        assert (
            replayed.utilization_report()
            == result.trace.utilization_report()
        )
        assert replayed.summary() == result.trace.summary()

    def test_trace_from_events_classmethod_delegates(self):
        result, recorder = self.run_with_recorder()
        replayed = RuntimeTrace.from_events(recorder.events)
        assert replayed.timeline() == result.trace.timeline()

    def test_replay_needs_op_events(self):
        with pytest.raises(ObservabilityError, match="no 'op' events"):
            trace_from_events(EventLog())


class TestProfiles:
    def test_mediator_attaches_profile(self):
        recorder = Recorder()
        mediator, query = flaky_mediator(recorder)
        answer = mediator.answer(query)
        profile = answer.execution.profile
        assert profile is not None
        assert profile.items == len(answer.items)
        assert profile.predicted_cost is not None
        text = profile.render()
        assert text.startswith("profile:")
        assert "observed/predicted" in text

    def test_sequential_backend_is_instrumented_too(self):
        federation, query = dmv_fig1()
        recorder = Recorder()
        answer = Mediator(federation, recorder=recorder).answer(query)
        start = recorder.events.of_type("run_start")[0]
        assert start["backend"] == "sequential"
        assert answer.execution.profile is not None
        EventLog.from_jsonl(recorder.events.to_jsonl())  # all valid

    def test_no_recorder_no_profile(self):
        federation, query = dmv_fig1()
        answer = Mediator(federation).answer(query)
        assert answer.execution.profile is None


class TestReplanRounds:
    def test_timestamps_monotone_across_rounds(self):
        recorder = Recorder()
        mediator, query = flaky_mediator(
            recorder, breaker=True, replan=2
        )
        mediator.answer(query)
        stamps = [event.ts for event in recorder.events]
        assert stamps == sorted(stamps)
        replans = recorder.events.of_type("replan")
        assert replans and replans[0]["round"] == 0
        assert replans[0]["optimizer"]
