"""Unit tests for span trees, Chrome export, and critical paths."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.spans import (
    ADMISSION_SPAN_ID,
    EXECUTE_SPAN_ID,
    MERGE_SPAN_ID,
    PHASES,
    PLAN_SPAN_ID,
    POOL_SPAN_ID,
    QUEUE_SPAN_ID,
    ROOT_SPAN_ID,
    CriticalPath,
    PhaseSlice,
    Span,
    SpanLog,
    analyze_log,
    analyze_trace,
    derive_trace_id,
    top_contributors,
    validate_chrome_trace,
)

TRACE = derive_trace_id(0, 0)


def span(span_id, parent, name, category, start, end, **attributes):
    return Span(
        trace_id=TRACE,
        span_id=span_id,
        parent_id=parent,
        name=name,
        category=category,
        start_s=start,
        end_s=end,
        attributes=attributes,
    )


def serve_tree(
    submit=0.0,
    queued_until=1.0,
    planned_until=1.0,
    pooled_until=2.0,
    complete=5.0,
):
    """The seven fixed serve-level spans of one query."""
    return [
        span(ROOT_SPAN_ID, None, "query", "query", submit, complete),
        span(ADMISSION_SPAN_ID, 1, "admission", "serve", submit, submit),
        span(QUEUE_SPAN_ID, 1, "queue", "serve", submit, queued_until),
        span(PLAN_SPAN_ID, 1, "plan", "serve", queued_until, planned_until),
        span(POOL_SPAN_ID, 1, "pool", "serve", planned_until, pooled_until),
        span(EXECUTE_SPAN_ID, 1, "execute", "serve", pooled_until, complete),
        span(MERGE_SPAN_ID, 1, "merge", "serve", complete, complete),
    ]


class TestDeriveTraceId:
    def test_stable_and_hex(self):
        assert derive_trace_id(7, 3) == derive_trace_id(7, 3)
        assert len(derive_trace_id(7, 3)) == 16
        int(derive_trace_id(7, 3), 16)  # parses as hex

    def test_seed_and_seq_both_matter(self):
        ids = {
            derive_trace_id(seed, seq)
            for seed in range(20)
            for seq in range(20)
        }
        assert len(ids) == 400


class TestSpan:
    def test_rejects_end_before_start(self):
        with pytest.raises(ObservabilityError, match="ends"):
            span(1, None, "query", "query", 2.0, 1.0)

    def test_duration_clamps_float_noise(self):
        noisy = span(1, None, "query", "query", 1.0, 1.0 - 1e-12)
        assert noisy.duration_s == 0.0


class TestSpanLog:
    def test_append_and_trace_order(self):
        log = SpanLog()
        other = derive_trace_id(0, 1)
        log.add(span(1, None, "query", "query", 0.0, 1.0))
        log.add(
            Span(
                trace_id=other,
                span_id=1,
                parent_id=None,
                name="query",
                category="query",
                start_s=0.5,
                end_s=2.0,
            )
        )
        assert len(log) == 2
        assert log.trace_ids() == [TRACE, other]
        assert [s.trace_id for s in log.for_trace(other)] == [other]

    def test_chrome_export_validates_and_is_deterministic(self):
        log = SpanLog()
        for item in serve_tree():
            log.add(item)
        exported = log.to_chrome_json()
        assert exported == log.to_chrome_json()
        assert validate_chrome_trace(json.loads(exported)) == 7

    def test_chrome_export_rejects_orphan_parent(self):
        log = SpanLog()
        log.add(span(1, None, "query", "query", 0.0, 1.0))
        log.add(span(9, 8, "op", "execute", 0.0, 1.0))
        with pytest.raises(ObservabilityError, match="missing parent"):
            validate_chrome_trace(log.to_chrome_trace())

    def test_validate_rejects_bad_envelope(self):
        with pytest.raises(ObservabilityError, match="traceEvents"):
            validate_chrome_trace({})


class TestAnalyzeTrace:
    def test_no_root_means_no_path(self):
        assert analyze_trace([]) is None
        assert analyze_trace([span(2, 1, "queue", "serve", 0, 1)]) is None

    def test_serve_phases_tile_exactly(self):
        path = analyze_trace(serve_tree())
        assert path is not None
        assert path.total_s == pytest.approx(5.0, abs=1e-12)
        assert sum(s.duration_s for s in path.slices) == pytest.approx(
            5.0, abs=1e-9
        )
        by_phase = path.by_phase()
        assert set(by_phase) == set(PHASES)
        assert by_phase["queue"] == pytest.approx(1.0)
        assert by_phase["pool"] == pytest.approx(1.0)

    def test_op_chain_splits_wait_wire_backoff(self):
        spans = serve_tree(pooled_until=2.0, complete=8.0)
        # One remote op: queued at 2, starts at 3 (engine-side wait),
        # attempt covers [3, 5], backoff [5, 6], then a second attempt
        # [6, 8].
        spans.append(
            span(
                8, EXECUTE_SPAN_ID, "op", "execute", 2.0, 8.0,
                remote=True, started=3.0, source="R1",
            )
        )
        spans.append(span(9, 8, "attempt", "execute", 3.0, 5.0))
        spans.append(span(10, 8, "backoff", "execute", 5.0, 6.0))
        spans.append(span(11, 8, "attempt", "execute", 6.0, 8.0))
        path = analyze_trace(spans)
        by_phase = path.by_phase()
        assert by_phase["exec.wait"] == pytest.approx(1.0)
        assert by_phase["exec.wire"] == pytest.approx(4.0)
        assert by_phase["exec.backoff"] == pytest.approx(1.0)
        assert sum(by_phase.values()) == pytest.approx(path.total_s)

    def test_chain_walks_back_through_predecessors(self):
        spans = serve_tree(pooled_until=2.0, complete=6.0)
        # op A [2, 4] feeds op B [4, 6]; an unrelated early op [2, 3]
        # must not land on the chain.
        spans.append(
            span(8, 6, "op", "execute", 2.0, 4.0, remote=True, started=2.0,
                 source="A", step=0)
        )
        spans.append(span(9, 8, "attempt", "execute", 2.0, 4.0))
        spans.append(
            span(10, 6, "op", "execute", 2.0, 3.0, remote=True, started=2.0,
                 source="off-chain", step=1)
        )
        spans.append(span(11, 10, "attempt", "execute", 2.0, 3.0))
        spans.append(
            span(12, 6, "op", "execute", 4.0, 6.0, remote=True, started=4.0,
                 source="B", step=2)
        )
        spans.append(span(13, 12, "attempt", "execute", 4.0, 6.0))
        path = analyze_trace(spans)
        details = {piece.detail for piece in path.slices if piece.detail}
        assert "A" in details and "B" in details
        assert "off-chain" not in details

    def test_zero_duration_ops_terminate(self):
        # Regression: instantaneous local ops sharing one instant used
        # to chain to each other forever.
        spans = serve_tree(pooled_until=2.0, complete=2.0)
        for offset in range(3):
            spans.append(
                span(
                    8 + offset, EXECUTE_SPAN_ID, "op", "execute", 2.0, 2.0,
                    remote=False, step=offset,
                )
            )
        path = analyze_trace(spans)
        assert path is not None
        assert path.total_s == pytest.approx(2.0)

    def test_gap_fill_keeps_sum_exact(self):
        # An execute window nothing accounts for still tiles to the
        # exact total, as exec.wait.
        spans = serve_tree(pooled_until=2.0, complete=9.0)
        path = analyze_trace(spans)
        assert path.by_phase()["exec.wait"] == pytest.approx(7.0)
        assert sum(s.duration_s for s in path.slices) == pytest.approx(
            path.total_s, abs=1e-9
        )


class TestAnalyzeLog:
    def test_maps_every_rooted_trace(self):
        log = SpanLog()
        for item in serve_tree():
            log.add(item)
        # A rootless trace must be skipped, not crash.
        log.add(
            Span(
                trace_id=derive_trace_id(0, 1),
                span_id=3,
                parent_id=1,
                name="queue",
                category="serve",
                start_s=0.0,
                end_s=1.0,
            )
        )
        paths = analyze_log(log)
        assert list(paths) == [TRACE]


class TestTopContributors:
    def test_ranks_by_blocked_seconds_with_details(self):
        paths = [
            CriticalPath(
                trace_id=TRACE,
                slices=(
                    PhaseSlice("queue", 0.0, 3.0),
                    PhaseSlice("exec.wire", 3.0, 5.0, detail="R1"),
                ),
            ),
            CriticalPath(
                trace_id=derive_trace_id(0, 1),
                slices=(PhaseSlice("exec.wire", 0.0, 4.0, detail="R1"),),
            ),
        ]
        ranked = top_contributors(paths, limit=2)
        assert ranked == [("exec.wire@R1", 6.0), ("queue", 3.0)]

    def test_zero_contributions_are_dropped(self):
        paths = [
            CriticalPath(
                trace_id=TRACE, slices=(PhaseSlice("merge", 1.0, 1.0),)
            )
        ]
        assert top_contributors(paths) == []
