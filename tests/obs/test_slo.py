"""Unit tests for SLO specs, parsing, and the monitor."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import DURATION_BUCKETS_S, MetricsRegistry
from repro.obs.slo import (
    SLOMonitor,
    SLOSpec,
    SLOStatus,
    parse_slo_spec,
)


def latency_spec(threshold=1.0, objective=0.9):
    return SLOSpec(
        name="lat", kind="latency", objective=objective, threshold_s=threshold
    )


class TestSLOSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ObservabilityError, match="unknown SLO kind"):
            SLOSpec(name="x", kind="availability", objective=0.9)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_objective_outside_unit_interval(self, objective):
        with pytest.raises(ObservabilityError, match="objective"):
            SLOSpec(name="x", kind="completeness", objective=objective)

    def test_latency_needs_positive_threshold(self):
        with pytest.raises(ObservabilityError, match="threshold"):
            SLOSpec(name="x", kind="latency", objective=0.9)


class TestSLOStatus:
    def test_compliance_and_burn(self):
        status = SLOStatus(spec=latency_spec(objective=0.9), good=80, total=100)
        assert status.compliance == pytest.approx(0.8)
        assert status.burn_rate == pytest.approx(2.0)
        assert status.budget_remaining == 0.0
        assert not status.met

    def test_empty_window_is_compliant(self):
        status = SLOStatus(spec=latency_spec(), good=0, total=0)
        assert status.compliance == 1.0
        assert status.burn_rate == 0.0
        assert status.met

    def test_describe_names_the_verdict(self):
        status = SLOStatus(spec=latency_spec(), good=95, total=100)
        assert "[OK]" in status.describe()
        bad = SLOStatus(spec=latency_spec(), good=10, total=100)
        assert "[VIOLATED]" in bad.describe()


class TestParseSLOSpec:
    def test_parses_both_kinds(self):
        specs = parse_slo_spec("latency:1.5:0.95,completeness:0.99")
        assert [s.kind for s in specs] == ["latency", "completeness"]
        assert specs[0].threshold_s == 1.5
        assert specs[0].objective == 0.95
        assert specs[1].objective == 0.99

    @pytest.mark.parametrize(
        "text",
        ["", "latency:1.0", "completeness", "latency:a:b", "uptime:0.9"],
    )
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(ObservabilityError):
            parse_slo_spec(text)


class TestSLOMonitor:
    def test_needs_unique_named_specs(self):
        with pytest.raises(ObservabilityError, match="at least one"):
            SLOMonitor([])
        with pytest.raises(ObservabilityError, match="duplicate"):
            SLOMonitor([latency_spec(), latency_spec()])

    def test_latency_objective_from_histograms(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_serve_latency_s", buckets=DURATION_BUCKETS_S, tenant="a"
        )
        # 8 fast answers on a bucket boundary, 2 far past the threshold.
        for __ in range(8):
            histogram.observe(0.05)
        for __ in range(2):
            histogram.observe(30.0)
        monitor = SLOMonitor([latency_spec(threshold=1.0, objective=0.75)])
        (status,) = monitor.evaluate(registry)
        assert status.total == 10
        assert status.compliance == pytest.approx(0.8)
        assert status.met
        gauge = registry.gauge("repro_slo_compliance", slo="lat")
        assert gauge.value == pytest.approx(0.8)

    def test_latency_sums_across_tenant_series(self):
        registry = MetricsRegistry()
        for tenant in ("a", "b"):
            registry.histogram(
                "repro_serve_latency_s",
                buckets=DURATION_BUCKETS_S,
                tenant=tenant,
            ).observe(0.01)
        monitor = SLOMonitor([latency_spec()])
        (status,) = monitor.evaluate(registry)
        assert status.total == 2

    def test_completeness_subtracts_partials_and_errors(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_serve_completed_total", outcome="ok", tenant="a"
        ).inc(8)
        registry.counter(
            "repro_serve_completed_total", outcome="error", tenant="a"
        ).inc(2)
        registry.counter("repro_serve_partial_total", tenant="a").inc(3)
        spec = SLOSpec(name="comp", kind="completeness", objective=0.9)
        (status,) = SLOMonitor([spec]).evaluate(registry)
        assert status.total == 10
        assert status.good == 5  # 8 ok - 3 partial
        assert not status.met

    def test_render_is_deterministic_text(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor([latency_spec()])
        text = SLOMonitor.render(monitor.evaluate(registry))
        assert text.startswith("SLO report:")
        assert "1/1 objectives met" in text
