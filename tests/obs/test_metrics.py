"""Unit tests for the metrics registry and its exporters."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.mediator.executor import Executor
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
    traffic_metrics_observer,
)
from repro.plans.builder import build_filter_plan
from repro.sources.generators import dmv_fig1
from repro.sources.network import (
    install_traffic_observer,
    uninstall_traffic_observer,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.inc(-1)

    def test_updated_s_tracks_virtual_clock(self):
        counter = MetricsRegistry().counter("c_total")
        assert counter.updated_s is None
        counter.inc(now_s=4.25)
        assert counter.updated_s == 4.25


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(7.0)
        gauge.inc(-2.0)
        assert gauge.value == pytest.approx(5.0)


class TestHistogram:
    def test_bucket_assignment_and_overflow(self):
        histogram = Histogram("h", (), buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=1, <=10, +Inf
        assert histogram.cumulative() == [2, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(106.5)

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ObservabilityError, match="strictly"):
            Histogram("h", (), buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError, match="strictly"):
            Histogram("h", (), buckets=())


class TestRegistry:
    def test_identity_is_name_plus_labels(self):
        registry = MetricsRegistry()
        registry.counter("c_total", source="R1").inc()
        registry.counter("c_total", source="R1").inc()
        registry.counter("c_total", source="R2").inc()
        assert registry.counter("c_total", source="R1").value == 2.0
        assert registry.counter("c_total", source="R2").value == 1.0
        assert len(registry) == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("c_total", a="1", b="2").inc()
        assert registry.counter("c_total", b="2", a="1").value == 1.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("thing")

    def test_json_snapshot_is_deterministic(self):
        def build() -> MetricsRegistry:
            registry = MetricsRegistry()
            registry.counter("z_total", source="R2").inc(3, now_s=1.0)
            registry.counter("z_total", source="R1").inc(1, now_s=2.0)
            registry.histogram("h_s", buckets=SIZE_BUCKETS).observe(7.0)
            return registry

        assert build().to_json_text() == build().to_json_text()
        snapshot = build().to_json()
        assert snapshot['z_total{source="R1"}']["value"] == 1.0
        assert snapshot["h_s"]["kind"] == "histogram"

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("c_total", source="R1").inc(2)
        registry.histogram("h_s", buckets=(1.0, 5.0)).observe(3.0)
        text = registry.to_prometheus()
        assert "# TYPE c_total counter" in text
        assert 'c_total{source="R1"} 2' in text
        assert 'h_s_bucket{le="1"} 0' in text
        assert 'h_s_bucket{le="5"} 1' in text
        assert 'h_s_bucket{le="+Inf"} 1' in text
        assert "h_s_sum 3" in text
        assert "h_s_count 1" in text


class TestTrafficObserver:
    def test_folds_every_wire_exchange(self):
        federation, query = dmv_fig1()
        registry = MetricsRegistry()
        install_traffic_observer(traffic_metrics_observer(registry))
        try:
            federation.reset_traffic()
            plan = build_filter_plan(query, federation.source_names)
            Executor(federation).execute(plan)
        finally:
            uninstall_traffic_observer()
        total = sum(
            registry.counter("repro_messages_total", source=name, op="sq").value
            for name in federation.source_names
        )
        assert total == federation.total_messages()
        cost = sum(
            registry.counter("repro_wire_cost_total", source=name).value
            for name in federation.source_names
        )
        assert cost == pytest.approx(federation.total_traffic_cost())

    def test_double_install_raises(self):
        registry = MetricsRegistry()
        install_traffic_observer(traffic_metrics_observer(registry))
        try:
            from repro.errors import CostModelError

            with pytest.raises(CostModelError, match="already installed"):
                install_traffic_observer(traffic_metrics_observer(registry))
        finally:
            uninstall_traffic_observer()


class TestHistogramQuantiles:
    def _loaded(self):
        histogram = MetricsRegistry().histogram(
            "q_s", buckets=(1.0, 2.0, 4.0)
        )
        # 50 in (0, 1], 30 in (1, 2], 20 in (2, 4].
        for __ in range(50):
            histogram.observe(0.5)
        for __ in range(30):
            histogram.observe(1.5)
        for __ in range(20):
            histogram.observe(3.0)
        return histogram

    def test_fraction_le_interpolates_within_buckets(self):
        histogram = self._loaded()
        assert histogram.fraction_le(1.0) == pytest.approx(0.5)
        # Halfway through the (1, 2] bucket: 50 + 15 of 100.
        assert histogram.fraction_le(1.5) == pytest.approx(0.65)
        assert histogram.fraction_le(4.0) == pytest.approx(1.0)
        assert histogram.fraction_le(100.0) == 1.0

    def test_fraction_le_empty_histogram_is_zero(self):
        histogram = MetricsRegistry().histogram("q_s", buckets=(1.0,))
        assert histogram.fraction_le(0.5) == 0.0

    def test_quantile_interpolates_and_clamps(self):
        histogram = self._loaded()
        assert histogram.quantile(0.5) == pytest.approx(1.0)
        assert histogram.quantile(0.65) == pytest.approx(1.5)
        assert histogram.quantile(1.0) == pytest.approx(4.0)
        assert histogram.quantiles((0.5, 0.65)) == pytest.approx((1.0, 1.5))

    def test_quantile_overflow_clamps_to_last_boundary(self):
        histogram = MetricsRegistry().histogram("q_s", buckets=(1.0,))
        histogram.observe(50.0)  # lands in +Inf
        assert histogram.quantile(0.99) == 1.0

    def test_quantile_rejects_out_of_range(self):
        histogram = self._loaded()
        with pytest.raises(ObservabilityError, match="quantile"):
            histogram.quantile(1.5)


class TestLabelEscaping:
    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter(
            "esc_total", path='a\\b', note='say "hi"\nbye'
        ).inc()
        text = registry.to_prometheus()
        assert 'path="a\\\\b"' in text
        assert 'note="say \\"hi\\"\\nbye"' in text
