"""Unit tests for the structured event log and its schema."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import EVENT_SCHEMA, EventLog, validate_record


def breaker_record(**overrides):
    record = {
        "ts": 1.5,
        "type": "breaker",
        "source": "R1",
        "from": "closed",
        "to": "open",
    }
    record.update(overrides)
    return record


class TestValidation:
    def test_valid_record_passes(self):
        validate_record(breaker_record())

    def test_unknown_type_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown event type"):
            validate_record(breaker_record(type="explosion"))

    def test_missing_field_rejected(self):
        record = breaker_record()
        del record["to"]
        with pytest.raises(ObservabilityError, match="missing"):
            validate_record(record)

    def test_unexpected_field_rejected(self):
        with pytest.raises(ObservabilityError, match="unexpected"):
            validate_record(breaker_record(color="red"))

    def test_wrong_field_type_rejected(self):
        with pytest.raises(ObservabilityError, match="expected str"):
            validate_record(breaker_record(source=3))

    def test_bool_is_not_an_int(self):
        record = {
            "ts": 0.0,
            "type": "sendset",
            "round": 0,
            "step": 1,
            "source": "R1",
            "condition": "V = 'x'",
            "size": True,
        }
        with pytest.raises(ObservabilityError, match="expected int"):
            validate_record(record)

    def test_ts_must_be_numeric(self):
        with pytest.raises(ObservabilityError, match="ts"):
            validate_record(breaker_record(ts="soon"))

    def test_every_schema_type_names_known_field_types(self):
        known = {"int", "float", "str", "bool", "list[str]"}
        for fields in EVENT_SCHEMA.values():
            assert set(fields.values()) <= known


class TestEventLog:
    def test_emit_validates(self):
        log = EventLog()
        with pytest.raises(ObservabilityError):
            log.emit(0.0, "breaker", source="R1")
        assert len(log) == 0

    def test_canonical_key_order(self):
        log = EventLog()
        log.emit(0.0, "breaker", source="R1", **{"to": "open", "from": "closed"})
        line = log.to_jsonl()
        assert line.startswith('{"ts":0.0,"type":"breaker","from":')

    def test_jsonl_roundtrip(self):
        log = EventLog()
        log.emit(
            0.5,
            "replan",
            round=1,
            optimizer="SJA+",
            sources=["R1", "R2"],
            masked=["R3"],
            estimated_cost=42.0,
        )
        log.emit(1.0, "breaker", source="R3", **{"from": "open", "to": "half-open"})
        restored = EventLog.from_jsonl(log.to_jsonl())
        assert [e.to_record() for e in restored] == [
            e.to_record() for e in log
        ]
        assert restored.to_jsonl() == log.to_jsonl()

    def test_write_and_read(self, tmp_path):
        log = EventLog()
        log.emit(0.0, "breaker", source="R1", **{"from": "closed", "to": "open"})
        path = str(tmp_path / "events.jsonl")
        assert log.write(path) == path
        assert EventLog.read(path).to_jsonl() == log.to_jsonl()

    def test_from_jsonl_rejects_bad_json(self):
        with pytest.raises(ObservabilityError, match="line 1"):
            EventLog.from_jsonl("{not json")

    def test_from_jsonl_skips_blank_lines(self):
        log = EventLog()
        log.emit(0.0, "breaker", source="R1", **{"from": "closed", "to": "open"})
        restored = EventLog.from_jsonl(log.to_jsonl() + "\n\n")
        assert len(restored) == 1

    def test_of_type_filters(self):
        log = EventLog()
        log.emit(0.0, "breaker", source="R1", **{"from": "closed", "to": "open"})
        log.emit(
            0.1,
            "retry",
            round=0,
            step=2,
            source="R1",
            retries=1,
            at=0.5,
        )
        assert [e.type for e in log.of_type("retry")] == ["retry"]
        assert len(log.of_type("retry", "breaker")) == 2

    def test_event_getitem_and_get(self):
        log = EventLog()
        event = log.emit(
            0.0, "breaker", source="R1", **{"from": "closed", "to": "open"}
        )
        assert event["ts"] == 0.0
        assert event["type"] == "breaker"
        assert event["source"] == "R1"
        assert event.get("missing", "fallback") == "fallback"
