"""Property tests for data-fault streams and verified replay.

Two replay guarantees back the untrusted-answers work:

* per-source data-fault streams are *interleaving-independent* — what
  the injector does to source A's payloads cannot depend on how much
  traffic other sources saw in between; and
* a verified run is a pure function of the workload seed — the same
  seed produces a byte-identical event stream, confirmation fetches
  and votes included.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import EventLog, Recorder
from repro.plans.builder import build_filter_plan
from repro.runtime.engine import RuntimeEngine
from repro.runtime.faults import (
    DataFaultProfile,
    FaultInjector,
    FaultProfile,
)
from repro.sources.generators import dmv_fig1, replicate_federation

ITEMS = frozenset({"J55", "T21", "T80", "S07"})
POOL = frozenset({"A01", "B02"})

#: Every fate armed, so the per-delivery draws all matter.
NOISY = DataFaultProfile(
    stale_rate=0.3,
    corrupt_rate=0.3,
    truncated_rate=0.3,
    duplicate_rate=0.3,
)


def injector(seed: int) -> FaultInjector:
    return FaultInjector(FaultProfile(data=NOISY), seed=seed)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    schedule=st.lists(
        st.sampled_from(["A", "B", "C"]), min_size=1, max_size=30
    ),
)
def test_data_streams_are_interleaving_independent(seed, schedule):
    # Tamper per the interleaved schedule, keeping each source's
    # sequence of outcomes; then replay each source alone.
    mixed = injector(seed)
    per_source: dict[str, list] = {}
    for name in schedule:
        per_source.setdefault(name, []).append(
            mixed.tamper(name, ITEMS, pool=POOL)
        )
    for name, outcomes in per_source.items():
        alone = injector(seed)
        replayed = [
            alone.tamper(name, ITEMS, pool=POOL)
            for __ in range(len(outcomes))
        ]
        assert replayed == outcomes


@given(seed=st.integers(min_value=0, max_value=10_000))
def test_wire_fates_unchanged_by_data_faults(seed):
    from repro.sources.network import LinkProfile

    link = LinkProfile(latency_s=0.1, items_per_s=1000.0)
    wire_only = FaultInjector(FaultProfile.flaky(0.5), seed=seed)
    with_data = FaultInjector(
        FaultProfile(transient_rate=0.5, data=NOISY), seed=seed
    )
    for __ in range(8):
        expected = wire_only.judge("A", 0.0, 1.0, link)
        actual = with_data.judge("A", 0.0, 1.0, link)
        with_data.tamper("A", ITEMS, pool=POOL)
        assert actual == expected


def verified_event_stream(seed: int) -> str:
    federation, query = dmv_fig1()
    federation = replicate_federation(federation, 2)
    profiles = {
        f"R{i}~1": FaultProfile(
            data=DataFaultProfile(stale_rate=0.6, corrupt_rate=1.0)
        )
        for i in (1, 2, 3)
    }
    recorder = Recorder(events=EventLog())
    engine = RuntimeEngine(
        federation,
        faults=FaultInjector(profiles, seed=seed),
        load_balance=True,
        verify="vote",
        recorder=recorder,
    )
    plan = build_filter_plan(query, federation.representative_names)
    for __ in range(2):
        engine.run(plan)
    assert recorder.events is not None
    return recorder.events.to_jsonl()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200))
def test_verified_runs_replay_byte_identically(seed):
    assert verified_event_stream(seed) == verified_event_stream(seed)
