"""Property tests: the columnar substrate is invisible to semantics.

Every vectorized kernel — predicate masks, semijoin probes, hash set
operators, decomposable aggregates — must return exactly what the seed's
row-at-a-time evaluation returns, for arbitrary relations and
conditions, with and without the numpy fast path.  The oracles here are
deliberately independent reimplementations (a dict per row, set ops in
arrival order), not calls back into the code under test.
"""

from __future__ import annotations

from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import columnar
from repro.relational.aggregates import (
    AggregateSpec,
    finalize_partials,
    merge_partials,
    partial_aggregate_rows,
)
from repro.relational.algebra import (
    difference,
    intersect_many,
    select_items,
    select_rows,
    semijoin_items,
    union_many,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema

from tests.property.strategies import dmv_conditions, dmv_relations, licenses

# --- a nullable variant of the DMV schema (dmv_schema has no nullable
# columns, so the null-handling kernels would otherwise go untested) ---

NULLABLE_SCHEMA = Schema(
    (
        Attribute("L", DataType.STRING),
        Attribute("V", DataType.STRING, nullable=True),
        Attribute("D", DataType.INT, nullable=True),
    ),
    merge_attribute="L",
)

_violations = st.sampled_from(["dui", "sp", "reckless", "parking"])
_years = st.integers(min_value=1988, max_value=1998)

nullable_rows = st.tuples(
    licenses,
    st.one_of(_violations, st.none()),
    st.one_of(_years, st.none()),
)


@st.composite
def nullable_relations(draw, name="N"):
    rows = draw(st.lists(nullable_rows, max_size=25))
    return Relation(name, NULLABLE_SCHEMA, rows)


any_relations = st.one_of(dmv_relations(), nullable_relations())

item_sets = st.lists(
    st.lists(licenses, max_size=6).map(frozenset), max_size=5
)


@contextmanager
def _numpy(flag: bool):
    prev = columnar.set_numpy_enabled(flag)
    try:
        yield
    finally:
        columnar.set_numpy_enabled(prev)


def _numpy_modes():
    modes = [False]
    if columnar.numpy_available():
        modes.append(True)
    return modes


# --- independent row-at-a-time oracles -----------------------------------


def _oracle_rows(relation, condition):
    schema = relation.schema
    return [
        row for row in relation if condition.evaluate(schema.row_to_dict(row))
    ]


def _oracle_items(relation, condition):
    merge_pos = relation.schema.merge_position
    return frozenset(row[merge_pos] for row in _oracle_rows(relation, condition))


def _oracle_semijoin(relation, condition, wanted):
    return frozenset(
        item for item in _oracle_items(relation, condition) if item in wanted
    )


# --- filter / scan / semijoin --------------------------------------------


@settings(max_examples=120, deadline=None)
@given(any_relations, dmv_conditions)
def test_filter_matches_row_oracle(relation, condition):
    expected = _oracle_items(relation, condition)
    for use_numpy in _numpy_modes():
        with _numpy(use_numpy):
            assert select_items(relation, condition) == expected


@settings(max_examples=80, deadline=None)
@given(any_relations, dmv_conditions)
def test_scan_matches_row_oracle(relation, condition):
    expected = _oracle_rows(relation, condition)
    for use_numpy in _numpy_modes():
        with _numpy(use_numpy):
            assert select_rows(relation, condition) == expected


@settings(max_examples=80, deadline=None)
@given(any_relations, dmv_conditions, st.lists(licenses, max_size=5))
def test_semijoin_matches_row_oracle(relation, condition, wanted_list):
    wanted = frozenset(wanted_list)
    expected = _oracle_semijoin(relation, condition, wanted)
    for use_numpy in _numpy_modes():
        with _numpy(use_numpy):
            assert semijoin_items(relation, condition, wanted) == expected


@settings(max_examples=60, deadline=None)
@given(any_relations, dmv_conditions)
def test_columnar_off_equals_on(relation, condition):
    with _numpy(False):
        on = select_items(relation, condition)
    prev = columnar.set_columnar_enabled(False)
    try:
        off = select_items(relation, condition)
    finally:
        columnar.set_columnar_enabled(prev)
    assert on == off


# --- hash set operators ---------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(item_sets)
def test_union_matches_frozenset_oracle(sets):
    expected = frozenset().union(*sets) if sets else frozenset()
    assert union_many(sets) == expected


@settings(max_examples=100, deadline=None)
@given(item_sets)
def test_intersect_matches_frozenset_oracle(sets):
    if not sets:
        import pytest

        with pytest.raises(ValueError):
            intersect_many(sets)
        return
    expected = sets[0]
    for s in sets[1:]:
        expected &= s
    assert intersect_many(sets) == expected


@settings(max_examples=100, deadline=None)
@given(
    st.lists(licenses, max_size=8).map(frozenset),
    st.lists(licenses, max_size=8).map(frozenset),
)
def test_difference_matches_frozenset_oracle(left, right):
    assert difference(left, right) == left - right


# --- decomposable aggregates ---------------------------------------------

ALL_SPECS = (
    AggregateSpec("count"),
    AggregateSpec("count", "D"),
    AggregateSpec("sum", "D"),
    AggregateSpec("avg", "D"),
    AggregateSpec("min", "D"),
    AggregateSpec("max", "D"),
)


def _oracle_aggregate(relation, group_by, items=None):
    """COUNT(*), COUNT(D), SUM(D), AVG(D), MIN(D), MAX(D) by hand."""
    schema = relation.schema
    merge = schema.merge_attribute
    grouped = {}
    for row in relation:
        record = schema.row_to_dict(row)
        if items is not None and record[merge] not in items:
            continue
        key = tuple(record[a] for a in group_by)
        bucket = grouped.setdefault(key, [])
        bucket.append(record["D"])
    out = {}
    for key, values in grouped.items():
        present = [v for v in values if v is not None]
        out[key] = (
            len(values),
            len(present),
            sum(present) if present else None,
            sum(present) / len(present) if present else None,
            min(present) if present else None,
            max(present) if present else None,
        )
    return out


@settings(max_examples=100, deadline=None)
@given(
    nullable_relations(),
    st.sampled_from([(), ("V",), ("V", "D")]),
    st.one_of(st.none(), st.lists(licenses, max_size=5).map(frozenset)),
)
def test_aggregates_match_row_oracle(relation, group_by, items):
    expected = _oracle_aggregate(relation, group_by, items)
    grouped = finalize_partials(
        partial_aggregate_rows(relation, ALL_SPECS, group_by, items=items),
        ALL_SPECS,
        group_by,
    )
    assert dict(grouped.groups) == expected


@settings(max_examples=80, deadline=None)
@given(nullable_relations(), st.integers(min_value=1, max_value=24))
def test_partial_merge_equals_whole(relation, split):
    """Aggregating partitions then merging == aggregating the whole.

    This is the decomposability property partial-aggregate pushdown
    rests on: each source computes partials over its own rows and the
    mediator merges them in a fixed order.
    """
    group_by = ("V",)
    rows = list(relation.rows)
    left = Relation("A", relation.schema, rows[:split])
    right = Relation("B", relation.schema, rows[split:])
    merged = merge_partials(
        partial_aggregate_rows(left, ALL_SPECS, group_by),
        partial_aggregate_rows(right, ALL_SPECS, group_by),
        ALL_SPECS,
    )
    whole = partial_aggregate_rows(relation, ALL_SPECS, group_by)
    assert finalize_partials(merged, ALL_SPECS, group_by) == finalize_partials(
        whole, ALL_SPECS, group_by
    )
