"""Property-based tests for the condition language."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.conditions import And, Comparison, Not, Or
from repro.relational.parser import parse_condition

from tests.property.strategies import (
    dmv_conditions,
    dmv_row_dicts,
    safe_text,
)


@given(dmv_conditions, dmv_row_dicts)
def test_evaluation_is_boolean_and_total(condition, row):
    assert condition.evaluate(row) in (True, False)


@given(dmv_conditions)
@settings(max_examples=200)
def test_sql_roundtrip(condition):
    """to_sql() output reparses to a semantically identical condition."""
    reparsed = parse_condition(condition.to_sql())
    assert reparsed.to_sql() == condition.to_sql()


@given(dmv_conditions, dmv_row_dicts)
def test_sql_roundtrip_preserves_semantics(condition, row):
    reparsed = parse_condition(condition.to_sql())
    assert reparsed.evaluate(row) == condition.evaluate(row)


@given(dmv_conditions, dmv_conditions, dmv_row_dicts)
def test_de_morgan(a, b, row):
    left = Not(And((a, b)))
    right = Or((Not(a), Not(b)))
    assert left.evaluate(row) == right.evaluate(row)


@given(dmv_conditions, dmv_row_dicts)
def test_double_negation(condition, row):
    assert Not(Not(condition)).evaluate(row) == condition.evaluate(row)


@given(dmv_conditions, dmv_conditions, dmv_row_dicts)
def test_and_commutes(a, b, row):
    assert And((a, b)).evaluate(row) == And((b, a)).evaluate(row)


@given(dmv_conditions, dmv_row_dicts)
def test_idempotence(condition, row):
    assert And((condition, condition)).evaluate(row) == condition.evaluate(row)
    assert Or((condition, condition)).evaluate(row) == condition.evaluate(row)


@given(st.text(min_size=0, max_size=30))
def test_string_literal_escaping_roundtrip(value):
    """Any string literal survives SQL rendering + reparsing."""
    condition = Comparison("V", "=", value)
    assert parse_condition(condition.to_sql()) == condition


@given(safe_text, safe_text)
def test_comparison_evaluation_matches_python(value, literal):
    condition = Comparison("V", "<", literal)
    row = {"V": value}
    assert condition.evaluate(row) == (value < literal)


@given(dmv_conditions)
def test_attributes_subset_of_schema(condition):
    assert condition.attributes() <= {"L", "V", "D"}
