"""Property-based tests for the SJA+ postoptimization transformations.

Invariants (Sec. 4):

* difference pruning and source loading both preserve the answer;
* difference pruning never increases the estimated cost (monotone,
  subadditive semijoin costs) nor the number of items actually sent;
* SJA+'s final plan is never costlier than SJA's under the generic
  coster used to make the load decisions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.postopt import (
    apply_difference_pruning,
    apply_source_loading,
)
from repro.optimize.sja import SJAOptimizer
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.plans.cost import estimate_plan_cost
from repro.sources.generators import synthetic_query
from repro.sources.statistics import ExactStatistics

from tests.property.strategies import synthetic_kits


def make_plan(federation, config, m, query_seed):
    query = synthetic_query(config, m=m, seed=query_seed)
    statistics = ExactStatistics(federation)
    estimator = SizeEstimator(statistics, federation.source_names)
    model = ChargeCostModel.for_federation(federation, estimator)
    plan = SJAOptimizer().optimize(
        query, federation.source_names, model, estimator
    ).plan
    return query, plan, model, estimator


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_difference_pruning_preserves_answer(kit, query_seed):
    federation, config, m = kit
    query, plan, __, __ = make_plan(federation, config, m, query_seed)
    pruned = apply_difference_pruning(plan)
    executor = Executor(federation)
    assert executor.execute(pruned).items == reference_answer(
        federation, query
    )


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_difference_pruning_never_increases_estimated_cost(kit, query_seed):
    federation, config, m = kit
    __, plan, model, estimator = make_plan(federation, config, m, query_seed)
    before = estimate_plan_cost(plan, model, estimator).total
    after = estimate_plan_cost(
        apply_difference_pruning(plan), model, estimator
    ).total
    assert after <= before + 1e-6


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_difference_pruning_never_sends_more_items(kit, query_seed):
    federation, config, m = kit
    __, plan, __, __ = make_plan(federation, config, m, query_seed)
    executor = Executor(federation)
    federation.reset_traffic()
    executor.execute(plan)
    sent_before = sum(source.traffic.items_sent for source in federation)
    federation.reset_traffic()
    executor.execute(apply_difference_pruning(plan))
    sent_after = sum(source.traffic.items_sent for source in federation)
    assert sent_after <= sent_before


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_source_loading_preserves_answer(kit, query_seed):
    federation, config, m = kit
    query, plan, model, estimator = make_plan(
        federation, config, m, query_seed
    )
    loaded = apply_source_loading(plan, model, estimator)
    executor = Executor(federation)
    assert executor.execute(loaded).items == reference_answer(
        federation, query
    )


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_source_loading_never_increases_estimated_cost(kit, query_seed):
    federation, config, m = kit
    __, plan, model, estimator = make_plan(federation, config, m, query_seed)
    before = estimate_plan_cost(plan, model, estimator).total
    after = estimate_plan_cost(
        apply_source_loading(plan, model, estimator), model, estimator
    ).total
    assert after <= before + 1e-6


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_sja_plus_never_worse_than_sja_generic_costing(kit, query_seed):
    federation, config, m = kit
    query, sja_plan, model, estimator = make_plan(
        federation, config, m, query_seed
    )
    plus = SJAPlusOptimizer().optimize(
        query, federation.source_names, model, estimator
    )
    sja_generic = estimate_plan_cost(sja_plan, model, estimator).total
    assert plus.estimated_cost <= sja_generic + 1e-6
