"""Property-based tests for the extension modules (schedule, adaptive,
phases, io round-trips)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.io import federation_from_dict, federation_to_dict
from repro.mediator.adaptive import AdaptiveExecutor
from repro.mediator.executor import Executor
from repro.mediator.phases import PhaseStrategy, answer_with_records
from repro.mediator.reference import reference_answer
from repro.mediator.schedule import estimated_response_time, response_time
from repro.mediator.session import Mediator
from repro.optimize.sja import SJAOptimizer
from repro.sources.generators import synthetic_query
from repro.sources.statistics import ExactStatistics

from tests.property.strategies import synthetic_kits


def planning_kit(federation, config, m, query_seed):
    query = synthetic_query(config, m=m, seed=query_seed)
    statistics = ExactStatistics(federation)
    estimator = SizeEstimator(statistics, federation.source_names)
    cost_model = ChargeCostModel.for_federation(federation, estimator)
    return query, cost_model, estimator


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_adaptive_matches_reference(kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    executor = AdaptiveExecutor(federation, cost_model, estimator)
    result = executor.execute(query)
    assert result.items == reference_answer(federation, query)


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_adaptive_cost_accounting_consistent(kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    federation.reset_traffic()
    executor = AdaptiveExecutor(federation, cost_model, estimator)
    result = executor.execute(query)
    assert abs(result.total_cost - federation.total_traffic_cost()) < 1e-6


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_schedule_invariants(kit, query_seed):
    """Makespan bounds and dependency consistency for executed plans."""
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    plan = SJAOptimizer().optimize(
        query, federation.source_names, cost_model, estimator
    ).plan
    execution = Executor(federation).execute(plan)
    schedule = response_time(plan, execution)
    longest = max(step.elapsed_s for step in execution.steps)
    assert longest - 1e-12 <= schedule.makespan_s <= schedule.total_time_s + 1e-12
    # dependency consistency: readers start after writers finish
    finish = {}
    for op in schedule.ops:
        for register in op.operation.reads():
            assert op.start_s >= finish[register] - 1e-12
        finish[op.operation.target] = op.finish_s


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_estimated_schedule_is_positive_and_bounded(kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    plan = SJAOptimizer().optimize(
        query, federation.source_names, cost_model, estimator
    ).plan
    schedule = estimated_response_time(plan, federation, estimator)
    assert 0 < schedule.makespan_s <= schedule.total_time_s + 1e-12


@given(kit=synthetic_kits(max_m=2), query_seed=st.integers(0, 500))
@settings(max_examples=12, deadline=None)
def test_phase_strategies_agree_on_entities(kit, query_seed):
    federation, config, m = kit
    query = synthetic_query(config, m=m, seed=query_seed)
    mediator = Mediator(federation)
    expected = reference_answer(federation, query)
    for strategy in (PhaseStrategy.TWO_PHASE, PhaseStrategy.ONE_PHASE):
        federation.reset_traffic()
        result = answer_with_records(mediator, query, strategy)
        assert result.items == expected
        assert result.records.items() <= expected


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_plan_serialization_roundtrip(kit, query_seed):
    from repro.optimize.sja_plus import SJAPlusOptimizer
    from repro.plans.serialize import plan_from_json, plan_to_json

    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    for optimizer in (SJAOptimizer(), SJAPlusOptimizer()):
        plan = optimizer.optimize(
            query, federation.source_names, cost_model, estimator
        ).plan
        rebuilt = plan_from_json(plan_to_json(plan))
        assert rebuilt == plan
        federation.reset_traffic()
        assert Executor(federation).execute(rebuilt).items == (
            reference_answer(federation, query)
        )


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=10, deadline=None)
def test_federation_spec_roundtrip_preserves_answers(kit, query_seed):
    federation, config, m = kit
    query = synthetic_query(config, m=m, seed=query_seed)
    rebuilt = federation_from_dict(federation_to_dict(federation))
    assert rebuilt.source_names == federation.source_names
    assert reference_answer(rebuilt, query) == reference_answer(
        federation, query
    )
    for name in federation.source_names:
        original = federation.source(name)
        clone = rebuilt.source(name)
        assert clone.capabilities == original.capabilities
        assert clone.link == original.link
