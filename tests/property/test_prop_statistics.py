"""Property-based tests for statistics providers and the SQL layer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mediator.reference import (
    reference_answer,
    reference_answer_via_join,
)
from repro.query.sqlparse import parse_fusion_query
from repro.sources.generators import synthetic_conditions, synthetic_query
from repro.sources.statistics import (
    ExactStatistics,
    HistogramStatistics,
    SampledStatistics,
)

from tests.property.strategies import synthetic_kits


@given(kit=synthetic_kits())
@settings(max_examples=15, deadline=None)
def test_all_providers_return_unit_interval_selectivities(kit):
    federation, config, __ = kit
    providers = [
        ExactStatistics(federation),
        SampledStatistics(federation, fraction=0.5, seed=0),
        HistogramStatistics(federation),
    ]
    conditions = synthetic_conditions(config, 5, seed=config.seed + 3)
    for provider in providers:
        for name in federation.source_names:
            for condition in conditions:
                assert 0.0 <= provider.selectivity(name, condition) <= 1.0


@given(kit=synthetic_kits())
@settings(max_examples=15, deadline=None)
def test_providers_agree_on_cardinalities(kit):
    federation, __, __ = kit
    exact = ExactStatistics(federation)
    sampled = SampledStatistics(federation, fraction=0.5, seed=0)
    histogram = HistogramStatistics(federation)
    for name in federation.source_names:
        assert (
            exact.cardinality(name)
            == sampled.cardinality(name)
            == histogram.cardinality(name)
        )
        assert exact.universe_size() == histogram.universe_size()


@given(kit=synthetic_kits(), query_seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_reference_oracles_agree(kit, query_seed):
    federation, config, m = kit
    query = synthetic_query(config, m=m, seed=query_seed)
    assert reference_answer(federation, query) == (
        reference_answer_via_join(federation, query)
    )


@given(kit=synthetic_kits(max_m=3), query_seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_generated_queries_roundtrip_through_sql(kit, query_seed):
    __, config, m = kit
    query = synthetic_query(config, m=m, seed=query_seed)
    reparsed = parse_fusion_query(query.to_sql())
    assert reparsed.merge_attribute == query.merge_attribute
    assert reparsed.conditions == query.conditions
