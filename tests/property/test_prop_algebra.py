"""Property-based tests for the item-set algebra and data operations."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.relational.algebra import (
    difference,
    intersect_many,
    select_items,
    semijoin_items,
    union_many,
)
from repro.sources.table_source import TableSource

from tests.property.strategies import dmv_conditions, dmv_relations, licenses

item_sets = st.frozensets(licenses, max_size=8)


@given(dmv_relations(), dmv_conditions, item_sets)
def test_semijoin_is_selection_intersect_input(relation, condition, items):
    assert semijoin_items(relation, condition, items) == (
        select_items(relation, condition) & items
    )


@given(dmv_relations(), dmv_conditions)
def test_selection_items_subset_of_relation_items(relation, condition):
    assert select_items(relation, condition) <= relation.items()


@given(dmv_relations(), dmv_conditions, item_sets, item_sets)
def test_semijoin_distributes_over_union(relation, condition, left, right):
    """The data-level counterpart of the cost model's subadditivity: a
    split binding set returns exactly the union of the parts."""
    whole = semijoin_items(relation, condition, left | right)
    parts = semijoin_items(relation, condition, left) | semijoin_items(
        relation, condition, right
    )
    assert whole == parts


@given(dmv_relations(), dmv_conditions, item_sets)
def test_binding_selection_agrees_with_semijoin(relation, condition, items):
    """Per-binding probes (emulation) aggregate to the native semijoin."""
    source = TableSource(relation)
    via_probes = frozenset(
        item
        for item in items
        if source.binding_selection(condition, item)
    )
    assert via_probes == semijoin_items(relation, condition, items)


@given(st.lists(item_sets, max_size=5))
def test_union_many_contains_every_input(sets):
    combined = union_many(sets)
    for s in sets:
        assert s <= combined


@given(st.lists(item_sets, min_size=1, max_size=5))
def test_intersect_many_within_every_input(sets):
    combined = intersect_many(sets)
    for s in sets:
        assert combined <= s


@given(item_sets, item_sets)
def test_difference_partition(left, right):
    removed = difference(left, right)
    kept = left & right
    assert removed | kept == left
    assert removed & right == frozenset()
