"""Property-based tests: the charge cost model satisfies the Sec. 2.4
axioms for any federation configuration, and size estimation is sane."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.costs.model import check_cost_axioms
from repro.sources.generators import synthetic_conditions
from repro.sources.statistics import ExactStatistics

from tests.property.strategies import synthetic_kits


def kit_to_model(federation, config):
    statistics = ExactStatistics(federation)
    estimator = SizeEstimator(statistics, federation.source_names)
    model = ChargeCostModel.for_federation(federation, estimator)
    conditions = synthetic_conditions(config, 4, seed=config.seed + 1)
    return model, estimator, conditions


@given(kit=synthetic_kits())
@settings(max_examples=25, deadline=None)
def test_charge_model_satisfies_all_axioms(kit):
    federation, config, __ = kit
    model, __, conditions = kit_to_model(federation, config)
    violations = check_cost_axioms(
        model, conditions, list(federation.source_names)
    )
    assert violations == []


@given(kit=synthetic_kits(), size=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_sjq_cost_nonnegative_and_monotone(kit, size):
    federation, config, __ = kit
    model, __, conditions = kit_to_model(federation, config)
    for condition in conditions:
        for name in federation.source_names:
            small = model.sjq_cost(condition, name, size)
            large = model.sjq_cost(condition, name, size + 10)
            assert small >= 0
            assert small <= large + 1e-9


@given(kit=synthetic_kits())
@settings(max_examples=25, deadline=None)
def test_size_estimates_within_bounds(kit):
    federation, config, __ = kit
    __, estimator, conditions = kit_to_model(federation, config)
    universe = estimator.statistics.universe_size()
    for condition in conditions:
        assert 0.0 <= estimator.global_selectivity(condition) <= 1.0
        assert 0.0 <= estimator.union_selection_size(condition) <= universe
        for name in federation.source_names:
            output = estimator.sq_output_size(condition, name)
            assert 0.0 <= output <= estimator.statistics.distinct_items(name)
            assert 0.0 <= estimator.match_fraction(condition, name) <= 1.0


@given(kit=synthetic_kits())
@settings(max_examples=25, deadline=None)
def test_prefix_sizes_shrink_monotonically(kit):
    federation, config, __ = kit
    __, estimator, conditions = kit_to_model(federation, config)
    previous = float(estimator.statistics.universe_size())
    for i in range(1, len(conditions) + 1):
        current = estimator.prefix_size(conditions[:i])
        assert current <= previous + 1e-9
        previous = current


@given(kit=synthetic_kits())
@settings(max_examples=20, deadline=None)
def test_lq_cost_finite_iff_load_supported(kit):
    federation, config, __ = kit
    model, __, __ = kit_to_model(federation, config)
    for source in federation:
        cost = model.lq_cost(source.name)
        if source.capabilities.supports_load:
            assert math.isfinite(cost)
        else:
            assert math.isinf(cost)
