"""Property-based tests: subset search is exact wherever the sweep is.

For any seeded synthetic federation and any query of arity m <= 6, the
subset-DP and branch-and-bound strategies must return plans whose cost
is identical to the factorial enumeration's — the tentpole guarantee
that lets the optimizer retire the O(m!) loops without changing a single
chosen plan.  Beam search may lose, but never wins (its orderings are a
subset of the sweep's) and must flag itself inexact.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.optimize.search import MemoizedCostModel
from repro.optimize.sj import SJOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.sources.generators import synthetic_query
from repro.sources.statistics import ExactStatistics

from tests.property.strategies import synthetic_kits


def planning_kit(federation, config, m, query_seed):
    query = synthetic_query(config, m=m, seed=query_seed)
    statistics = ExactStatistics(federation)
    estimator = SizeEstimator(statistics, federation.source_names)
    cost_model = ChargeCostModel.for_federation(federation, estimator)
    return query, cost_model, estimator


@given(kit=synthetic_kits(max_m=6), query_seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_sja_dp_and_bnb_match_factorial_sweep(kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    names = federation.source_names
    sweep = SJAOptimizer(search="exhaustive").optimize(
        query, names, cost_model, estimator
    )
    for strategy in ("dp", "bnb"):
        other = SJAOptimizer(search=strategy).optimize(
            query, names, cost_model, estimator
        )
        assert other.estimated_cost == sweep.estimated_cost
        assert other.search_strategy == strategy
        assert other.plan.remote_op_count == sweep.plan.remote_op_count


@given(kit=synthetic_kits(max_m=5), query_seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_sj_dp_and_bnb_match_factorial_sweep(kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    names = federation.source_names
    sweep = SJOptimizer(search="exhaustive").optimize(
        query, names, cost_model, estimator
    )
    for strategy in ("dp", "bnb"):
        other = SJOptimizer(search=strategy).optimize(
            query, names, cost_model, estimator
        )
        assert other.estimated_cost == sweep.estimated_cost


@given(kit=synthetic_kits(max_m=5), query_seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_beam_never_beats_the_sweep(kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    names = federation.source_names
    sweep = SJAOptimizer(search="exhaustive").optimize(
        query, names, cost_model, estimator
    )
    beam = SJAOptimizer(search="beam", beam_width=2).optimize(
        query, names, cost_model, estimator
    )
    assert beam.estimated_cost >= sweep.estimated_cost
    assert beam.search_strategy == "beam"


@given(kit=synthetic_kits(max_m=4), query_seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_memoized_costs_are_transparent(kit, query_seed):
    # Wrapping the cost model in the memo (even twice) never changes a
    # value the optimizer reads, hence never the chosen plan.
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    memo = MemoizedCostModel(MemoizedCostModel(cost_model))
    for condition in query.conditions:
        for source in federation.source_names:
            assert memo.sq_cost(condition, source) == cost_model.sq_cost(
                condition, source
            )
            for size in (1.0, 17.0):
                assert memo.sjq_cost(
                    condition, source, size
                ) == cost_model.sjq_cost(condition, source, size)
    names = federation.source_names
    direct = SJAOptimizer(search="dp").optimize(
        query, names, cost_model, estimator
    )
    wrapped = SJAOptimizer(search="dp").optimize(
        query, names, memo, estimator
    )
    assert wrapped.estimated_cost == direct.estimated_cost
