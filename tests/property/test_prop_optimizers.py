"""Property-based tests: every optimizer's plan computes the right answer
and the cost dominance chain of Sec. 3 holds.

These are the library's central invariants:

* **Correctness** — for any federation and fusion query, executing any
  optimizer's plan returns exactly the reference answer (materialize U,
  intersect per-condition item sets).
* **Dominance** — estimated costs satisfy SJA <= SJ <= FILTER (SJ can
  always mimic the filter plan; SJA refines SJ per source), and the
  greedy variants are sandwiched between SJA and FILTER.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.filter import FilterOptimizer
from repro.optimize.greedy import GreedySJAOptimizer, SelectivityOrderOptimizer
from repro.optimize.sj import SJOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.sources.generators import synthetic_query
from repro.sources.statistics import ExactStatistics

from tests.property.strategies import synthetic_kits

ALL_OPTIMIZERS = [
    FilterOptimizer,
    SJOptimizer,
    SJAOptimizer,
    SJAPlusOptimizer,
    SelectivityOrderOptimizer,
    GreedySJAOptimizer,
]


def planning_kit(federation, config, m, query_seed):
    query = synthetic_query(config, m=m, seed=query_seed)
    statistics = ExactStatistics(federation)
    estimator = SizeEstimator(statistics, federation.source_names)
    cost_model = ChargeCostModel.for_federation(federation, estimator)
    return query, cost_model, estimator


@pytest.mark.parametrize("optimizer_class", ALL_OPTIMIZERS)
@given(kit=synthetic_kits(), query_seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_optimizer_answers_match_reference(optimizer_class, kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    result = optimizer_class().optimize(
        query, federation.source_names, cost_model, estimator
    )
    federation.reset_traffic()
    execution = Executor(federation).execute(result.plan)
    assert execution.items == reference_answer(federation, query)


@given(kit=synthetic_kits(), query_seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_cost_dominance_chain(kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    args = (query, federation.source_names, cost_model, estimator)
    filter_cost = FilterOptimizer().optimize(*args).estimated_cost
    sj_cost = SJOptimizer().optimize(*args).estimated_cost
    sja_cost = SJAOptimizer().optimize(*args).estimated_cost
    assert sja_cost <= sj_cost + 1e-6
    assert sj_cost <= filter_cost + 1e-6


@given(kit=synthetic_kits(), query_seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_greedy_sandwiched_between_sja_and_filter(kit, query_seed):
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    args = (query, federation.source_names, cost_model, estimator)
    sja_cost = SJAOptimizer().optimize(*args).estimated_cost
    filter_cost = FilterOptimizer().optimize(*args).estimated_cost
    for greedy_class in (SelectivityOrderOptimizer, GreedySJAOptimizer):
        greedy_cost = greedy_class().optimize(*args).estimated_cost
        assert sja_cost - 1e-6 <= greedy_cost <= filter_cost + 1e-6


@given(kit=synthetic_kits(), query_seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_sja_internal_cost_matches_independent_recosting(kit, query_seed):
    """The cost SJA reports must equal re-costing its emitted plan with
    the shared staged accounting — optimizer bookkeeping cannot drift
    from the plan it actually built."""
    from repro.plans.builder import StagedChoice
    from repro.plans.operations import SelectionOp
    from repro.plans.space import staged_plan_cost

    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    result = SJAOptimizer().optimize(
        query, federation.source_names, cost_model, estimator
    )
    plan = result.plan
    ordering = [
        query.conditions.index(stage.condition) for stage in plan.stages
    ]
    ops_by_target = {op.target: op for op in plan.remote_operations}
    choices = tuple(
        tuple(
            StagedChoice.SELECTION
            if isinstance(ops_by_target[register], SelectionOp)
            else StagedChoice.SEMIJOIN
            for register in stage.source_registers
        )
        for stage in plan.stages
    )
    recosted = staged_plan_cost(
        query, ordering, choices, federation.source_names, cost_model,
        estimator,
    )
    assert recosted == pytest.approx(result.estimated_cost)


@given(kit=synthetic_kits(), query_seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_actual_cost_of_executed_sja_plan_close_to_estimate(kit, query_seed):
    """With oracle statistics, the only estimation error is the
    independence assumption on intermediate sets; the estimate must at
    least be finite, positive, and within an order of magnitude."""
    federation, config, m = kit
    query, cost_model, estimator = planning_kit(
        federation, config, m, query_seed
    )
    result = SJAOptimizer().optimize(
        query, federation.source_names, cost_model, estimator
    )
    federation.reset_traffic()
    execution = Executor(federation).execute(result.plan)
    assert execution.total_cost > 0
    assert result.estimated_cost > 0
    ratio = execution.total_cost / result.estimated_cost
    assert 0.1 <= ratio <= 10.0
