"""Shared hypothesis strategies for the property-based suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.relational.conditions import (
    And,
    Between,
    Comparison,
    InSet,
    IsNull,
    Like,
    Not,
    Or,
)
from repro.relational.relation import Relation
from repro.relational.schema import dmv_schema
from repro.sources.generators import SyntheticConfig, build_synthetic

# --- values -------------------------------------------------------------

licenses = st.sampled_from(
    ["J55", "T21", "T80", "T11", "S07", "A01", "B02", "C03"]
)
violations = st.sampled_from(["dui", "sp", "reckless", "parking"])
years = st.integers(min_value=1988, max_value=1998)

safe_text = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=0,
    max_size=8,
)

dmv_rows = st.tuples(licenses, violations, years)


@st.composite
def dmv_relations(draw, name="R"):
    """A random DMV-schema relation (possibly empty, possibly duplicated)."""
    rows = draw(st.lists(dmv_rows, max_size=25))
    return Relation(name, dmv_schema(), rows)


# --- conditions over the DMV schema --------------------------------------

comparison_conditions = st.one_of(
    st.builds(
        Comparison,
        st.just("V"),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        violations,
    ),
    st.builds(
        Comparison,
        st.just("D"),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        years,
    ),
    st.builds(
        Comparison,
        st.just("L"),
        st.sampled_from(["=", "!="]),
        licenses,
    ),
)

leaf_conditions = st.one_of(
    comparison_conditions,
    st.builds(Between, st.just("D"), years, years),
    st.builds(
        InSet,
        st.just("V"),
        st.lists(violations, min_size=1, max_size=3),
    ),
    st.builds(Like, st.just("V"), st.sampled_from(["d%", "%p", "_ui", "%"])),
    st.builds(IsNull, st.just("V"), st.booleans()),
)


def _boolean_extend(children):
    return st.one_of(
        st.builds(lambda ops: And(tuple(ops)), st.lists(children, min_size=2, max_size=3)),
        st.builds(lambda ops: Or(tuple(ops)), st.lists(children, min_size=2, max_size=3)),
        st.builds(Not, children),
    )


dmv_conditions = st.recursive(leaf_conditions, _boolean_extend, max_leaves=6)

dmv_row_dicts = st.fixed_dictionaries(
    {"L": licenses, "V": st.one_of(violations, st.none()), "D": years}
)


# --- whole federations (via deterministic seeds) --------------------------


@st.composite
def synthetic_kits(draw, max_sources=4, max_m=3):
    """(federation, query-arity m, config) drawn via deterministic seeds."""
    config = SyntheticConfig(
        n_sources=draw(st.integers(2, max_sources)),
        n_entities=draw(st.integers(30, 120)),
        coverage=(0.3, 0.8),
        rows_per_entity=(1, 2),
        **draw(
            st.sampled_from(
                [
                    {"native_fraction": 1.0, "emulated_fraction": 0.0},
                    {"native_fraction": 0.5, "emulated_fraction": 0.5},
                    {"native_fraction": 0.5, "emulated_fraction": 0.0},
                ]
            )
        ),
        overhead_range=(2.0, 30.0),
        send_range=(0.5, 2.0),
        receive_range=(0.5, 2.0),
        seed=draw(st.integers(0, 10_000)),
    )
    federation = build_synthetic(config)
    m = draw(st.integers(1, max_m))
    return federation, config, m
