"""Property-based tests for causal tracing: replay determinism and
critical-path exactness over randomized workloads."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.spans import analyze_log, validate_chrome_trace
from repro.serve import (
    MediatorService,
    WorkloadSpec,
    generate_arrivals,
    run_workload,
)
from repro.sources.generators import dmv_fig1

DMV_SQL = (
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
)


def run_once(seed, count, rate_qps, pool_slots, fault_rate):
    from repro.runtime.faults import FaultProfile

    federation, __ = dmv_fig1()
    service = MediatorService(
        federation,
        mode="deterministic",
        pool_slots=pool_slots,
        seed=seed,
        faults=FaultProfile.flaky(fault_rate) if fault_rate else None,
    )
    spec = WorkloadSpec(
        queries=(DMV_SQL,), count=count, rate_qps=rate_qps, seed=seed
    )
    run_workload(service, generate_arrivals(spec))
    return service


@given(
    seed=st.integers(0, 10_000),
    count=st.integers(2, 6),
    rate_qps=st.floats(1.0, 20.0),
    pool_slots=st.integers(1, 4),
    fault_rate=st.sampled_from([0.0, 0.3]),
)
@settings(max_examples=10, deadline=None)
def test_same_seed_trace_export_is_byte_identical(
    seed, count, rate_qps, pool_slots, fault_rate
):
    first = run_once(seed, count, rate_qps, pool_slots, fault_rate)
    second = run_once(seed, count, rate_qps, pool_slots, fault_rate)
    exported = first.spans.to_chrome_json()
    assert exported == second.spans.to_chrome_json()
    assert validate_chrome_trace(first.spans.to_chrome_trace()) == len(
        first.spans
    )


@given(
    seed=st.integers(0, 10_000),
    count=st.integers(2, 8),
    pool_slots=st.integers(1, 4),
    fault_rate=st.sampled_from([0.0, 0.3, 0.6]),
)
@settings(max_examples=15, deadline=None)
def test_critical_path_always_tiles_the_latency(
    seed, count, pool_slots, fault_rate
):
    service = run_once(seed, count, 8.0, pool_slots, fault_rate)
    paths = analyze_log(service.spans)
    finished = [
        t for t in service.tickets if t.completed_s is not None
    ]
    assert finished
    for ticket in finished:
        path = paths[ticket.trace_id]
        assert abs(path.total_s - ticket.latency_s) <= 1e-9
        assert (
            abs(sum(path.by_phase().values()) - ticket.latency_s) <= 1e-9
        )
        # Slices partition [submit, complete]: contiguous, ordered.
        for left, right in zip(path.slices, path.slices[1:]):
            assert abs(left.end_s - right.start_s) <= 1e-12
