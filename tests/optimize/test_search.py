"""Unit tests for the plan-search subsystem (repro.optimize.search).

The contract under test: every *exact* strategy (exhaustive sweep,
subset DP, branch-and-bound) returns a cost-identical ordering — not
approximately identical, bit-for-bit identical, because all of them
price stages through the same memoized subset context.  Beam search is
allowed to lose, and must say so via ``exact=False``.
"""

from __future__ import annotations

import math

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.costs.model import UniformCostModel
from repro.errors import OptimizationError
from repro.optimize.search import (
    AUTO_DP_MAX_M,
    AUTO_EXHAUSTIVE_MAX_M,
    DEFAULT_BEAM_WIDTH,
    STRATEGIES,
    MemoizedCostModel,
    beam_search,
    resolve_strategy,
    search_ordering,
)
from repro.optimize.sja import SJAOptimizer, SJAStagedProblem
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    dmv_fig1,
    synthetic_query,
)
from repro.sources.statistics import ExactStatistics


def synthetic_problem(m=5, n_sources=4, seed=77):
    config = SyntheticConfig(n_sources=n_sources, n_entities=90, seed=seed)
    federation = build_synthetic(config)
    query = synthetic_query(config, m=m, seed=seed + 1)
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    cost_model = ChargeCostModel.for_federation(federation, estimator)
    problem = SJAStagedProblem(
        query.conditions, federation.source_names, cost_model, estimator
    )
    return problem, query, federation, cost_model, estimator


# --- strategy resolution --------------------------------------------------


def test_auto_prefers_exhaustive_for_small_m():
    for m in range(1, AUTO_EXHAUSTIVE_MAX_M + 1):
        assert resolve_strategy("auto", m) == "exhaustive"


def test_auto_switches_to_dp_then_beam():
    assert resolve_strategy("auto", AUTO_EXHAUSTIVE_MAX_M + 1) == "dp"
    assert resolve_strategy("auto", AUTO_DP_MAX_M) == "dp"
    assert resolve_strategy("auto", AUTO_DP_MAX_M + 1) == "beam"


def test_explicit_strategies_pass_through():
    for strategy in STRATEGIES:
        if strategy == "auto":
            continue
        assert resolve_strategy(strategy, 12) == strategy


def test_unknown_strategy_rejected():
    with pytest.raises(OptimizationError, match="unknown search strategy"):
        resolve_strategy("annealing", 4)
    problem, *_ = synthetic_problem(m=3)
    with pytest.raises(OptimizationError, match="unknown search strategy"):
        search_ordering(problem, 3, strategy="annealing")


def test_bad_beam_width_rejected():
    problem, *_ = synthetic_problem(m=3)
    with pytest.raises(OptimizationError, match="beam width"):
        beam_search(problem, 3, beam_width=0)


# --- exactness and counters ----------------------------------------------


def test_exact_strategies_agree_bit_for_bit():
    problem, query, *_ = synthetic_problem(m=5)
    sweep = search_ordering(problem, query.arity, "exhaustive")
    dp = search_ordering(problem, query.arity, "dp")
    bnb = search_ordering(problem, query.arity, "bnb")
    assert dp.cost == sweep.cost
    assert bnb.cost == sweep.cost
    assert sorted(dp.ordering) == sorted(sweep.ordering)
    assert dp.exact and bnb.exact and sweep.exact


def test_counters_reflect_search_shape():
    problem, query, *_ = synthetic_problem(m=5)
    m = query.arity
    sweep = search_ordering(problem, m, "exhaustive")
    assert sweep.orderings_considered == math.factorial(m)
    assert sweep.subsets_considered == 0
    dp = search_ordering(problem, m, "dp")
    assert dp.orderings_considered == 0
    assert dp.subsets_considered == 2**m - 1
    bnb = search_ordering(problem, m, "bnb")
    assert bnb.orderings_considered == 0
    assert 0 < bnb.subsets_considered <= 2**m - 1


def test_bnb_ordering_achieves_reported_cost():
    # Pruning must never decouple the returned chain from the returned
    # cost: re-pricing the ordering stage by stage reproduces it.
    problem, query, *_ = synthetic_problem(m=5, seed=123)
    outcome = search_ordering(problem, query.arity, "bnb")
    total = 0.0
    mask = 0
    for position, index in enumerate(outcome.ordering):
        if position == 0:
            stage = problem.first_stage(index)
        else:
            prefix = problem.first_prefix(outcome.ordering[0])
            for prior in outcome.ordering[1:position]:
                prefix = problem.shrink(prefix, prior)
            stage = problem.later_stage(index, prefix)
        total += stage.cost
        mask |= 1 << index
    # The search prices prefixes lowest-condition-first; this fold goes
    # in chain order, so allow float reassociation noise and nothing
    # more — an unsound backtrack would be off by whole stages.
    assert total == pytest.approx(outcome.cost, rel=1e-9)


def test_beam_is_marked_inexact_and_bounded():
    problem, query, *_ = synthetic_problem(m=5)
    survivors = beam_search(problem, query.arity, beam_width=3)
    assert 1 <= len(survivors) <= 3
    assert all(not s.exact for s in survivors)
    assert [s.cost for s in survivors] == sorted(s.cost for s in survivors)
    best = search_ordering(problem, query.arity, "exhaustive")
    assert survivors[0].cost >= best.cost  # can lose, never win


def test_wide_beam_recovers_the_optimum():
    # With beam_width >= the whole level, beam degenerates to DP and
    # must find the exact optimum (still reported as inexact).
    problem, query, *_ = synthetic_problem(m=4)
    sweep = search_ordering(problem, query.arity, "exhaustive")
    wide = search_ordering(
        problem, query.arity, "beam", beam_width=2**query.arity
    )
    assert wide.cost == sweep.cost
    assert not wide.exact


def test_default_beam_width_exported():
    assert DEFAULT_BEAM_WIDTH >= 1


# --- memoized costing -----------------------------------------------------


def test_memoized_model_returns_identical_values():
    __, query, federation, cost_model, _ = synthetic_problem(m=3)
    memo = MemoizedCostModel(cost_model)
    condition = query.conditions[0]
    source = federation.source_names[0]
    first = memo.sq_cost(condition, source)
    assert memo.misses == 1 and memo.hits == 0
    assert memo.sq_cost(condition, source) == first
    assert memo.hits == 1
    assert first == cost_model.sq_cost(condition, source)
    sj_first = memo.sjq_cost(condition, source, 10.0)
    assert memo.sjq_cost(condition, source, 10.0) == sj_first
    assert sj_first == cost_model.sjq_cost(condition, source, 10.0)
    assert memo.lq_cost(source) == cost_model.lq_cost(source)


def test_memoization_never_changes_the_chosen_plan():
    # The optimizer memoizes internally; a manual factorial sweep over
    # the raw (unmemoized) model must land on the same cost and an
    # equally-cheap ordering.
    import itertools

    __, query, federation, cost_model, estimator = synthetic_problem(m=4)
    names = federation.source_names
    result = SJAOptimizer(search="exhaustive").optimize(
        query, names, cost_model, estimator
    )
    raw_best = min(
        SJAOptimizer._cost_ordering(
            query, ordering, names, cost_model, estimator
        )[0]
        for ordering in itertools.permutations(range(query.arity))
    )
    # The reference recurrence prices prefixes in chain order, the
    # subset search lowest-condition-first; identical up to float
    # reassociation.
    assert result.estimated_cost == pytest.approx(raw_best, rel=1e-9)


# --- optimizer integration ------------------------------------------------


@pytest.mark.parametrize("strategy", ["dp", "bnb"])
def test_sja_strategies_match_exhaustive_on_dmv(strategy):
    federation, query = dmv_fig1()
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    sweep = SJAOptimizer(search="exhaustive").optimize(
        query, federation.source_names, UniformCostModel(), estimator
    )
    other = SJAOptimizer(search=strategy).optimize(
        query, federation.source_names, UniformCostModel(), estimator
    )
    assert other.estimated_cost == sweep.estimated_cost
    assert other.search_strategy == strategy
    assert other.plans_considered == 0
    assert sweep.plans_considered == math.factorial(query.arity)


def test_result_summary_names_the_strategy():
    __, query, federation, cost_model, estimator = synthetic_problem(m=3)
    names = federation.source_names
    sweep = SJAOptimizer(search="exhaustive").optimize(
        query, names, cost_model, estimator
    )
    assert "plans considered (exhaustive)" in sweep.summary()
    dp = SJAOptimizer(search="dp").optimize(
        query, names, cost_model, estimator
    )
    assert "subsets considered (dp)" in dp.summary()
    assert "plans considered" not in dp.summary()
