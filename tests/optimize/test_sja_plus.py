"""Unit tests for the SJA+ algorithm (Sec. 4.1)."""

from __future__ import annotations


from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.sja import SJAOptimizer
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.plans.classify import PlanClass, classify
from repro.plans.cost import estimate_plan_cost
from repro.plans.operations import OpKind
from repro.sources.generators import dmv_fig1
from repro.sources.network import LinkProfile
from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.sources.statistics import ExactStatistics


def semijoin_heavy_kit():
    """A DMV variant where answers are expensive, making semijoins (and
    hence difference pruning) attractive, while loads stay expensive."""
    federation, query = dmv_fig1(
        link=LinkProfile(
            request_overhead=1.0,
            per_item_send=5.0,
            per_item_receive=50.0,
            per_row_load=10_000.0,
        )
    )
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    model = ChargeCostModel.for_federation(federation, estimator)
    return federation, query, model, estimator


class TestSJAPlus:
    def test_never_worse_than_sja_under_generic_coster(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        sja_plus = SJAPlusOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        sja_generic = estimate_plan_cost(sja.plan, model, estimator).total
        assert sja_plus.estimated_cost <= sja_generic + 1e-9

    def test_answer_preserved(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = SJAPlusOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)

    def test_difference_pruning_applied_when_semijoins_present(self):
        federation, query, model, estimator = semijoin_heavy_kit()
        result = SJAPlusOptimizer(load_sources=False).optimize(
            query, federation.source_names, model, estimator
        )
        counts = result.plan.count_by_kind()
        assert counts.get(OpKind.SEMIJOIN, 0) > 0
        assert counts.get(OpKind.DIFFERENCE, 0) > 0
        assert classify(result.plan) is PlanClass.EXTENDED

    def test_source_loading_applied_on_tiny_sources(self, dmv):
        federation, query = dmv  # default link: loads are cheap vs queries
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        result = SJAPlusOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert result.plan.count_by_kind().get(OpKind.LOAD, 0) == 3

    def test_passes_can_be_disabled(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        plain = SJAPlusOptimizer(
            prune_difference=False, load_sources=False
        ).optimize(query, federation.source_names, model, estimator)
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert plain.plan.operations == sja.plan.operations

    def test_custom_base_optimizer(self, synthetic_setup):
        from repro.optimize.greedy import SelectivityOrderOptimizer

        federation, query, model, estimator = synthetic_setup
        result = SJAPlusOptimizer(base=SelectivityOrderOptimizer()).optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)

    def test_search_statistics_propagated(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        plus = SJAPlusOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert plus.orderings_considered == sja.orderings_considered
        assert plus.plans_considered == sja.plans_considered + 1
        assert plus.optimizer == "SJA+"

    def test_actual_cost_improves_on_dmv(self, dmv):
        """End to end on Fig. 1: SJA+'s executed cost <= SJA's."""
        federation, query = dmv
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        executor = Executor(federation)
        sja_plan = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        ).plan
        plus_plan = SJAPlusOptimizer().optimize(
            query, federation.source_names, model, estimator
        ).plan
        sja_cost = executor.execute(sja_plan).total_cost
        plus_cost = executor.execute(plus_plan).total_cost
        assert plus_cost <= sja_cost + 1e-9
