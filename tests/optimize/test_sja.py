"""Unit tests for the SJA algorithm (Fig. 4)."""

from __future__ import annotations

import math


from repro.costs.model import TableCostModel
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.sj import SJOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.plans.classify import is_semijoin_adaptive_plan
from repro.sources.capabilities import SourceCapabilities
from repro.sources.generators import dmv_fig1
from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.sources.statistics import ExactStatistics


class TestSearch:
    def test_considers_all_orderings(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert result.orderings_considered == math.factorial(query.arity)

    def test_plan_is_adaptive_class(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert is_semijoin_adaptive_plan(result.plan)

    def test_executed_answer_matches_reference(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)


class TestDominance:
    def test_never_worse_than_sj(self, synthetic_setup):
        """The Sec. 3 claim: optimal SJA <= optimal SJ, always."""
        federation, query, model, estimator = synthetic_setup
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        sj = SJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert sja.estimated_cost <= sj.estimated_cost + 1e-9

    def test_strictly_better_with_heterogeneous_sources(
        self, dmv_query, dmv_estimator
    ):
        """Sec. 2.5's motivating scenario: cheap semijoins at one source,
        ruinous at the others — SJA mixes, SJ cannot."""
        c1, c2 = dmv_query.conditions
        model = TableCostModel(
            default_sq=100.0,
            sjq_table={
                (c2, "R1"): (1.0, 0.01),
                (c2, "R2"): (10_000.0, 10.0),
                (c2, "R3"): (10_000.0, 10.0),
                (c1, "R1"): (1.0, 0.01),
                (c1, "R2"): (10_000.0, 10.0),
                (c1, "R3"): (10_000.0, 10.0),
            },
        )
        sources = ["R1", "R2", "R3"]
        sja = SJAOptimizer().optimize(dmv_query, sources, model, dmv_estimator)
        sj = SJOptimizer().optimize(dmv_query, sources, model, dmv_estimator)
        assert sja.estimated_cost < sj.estimated_cost
        # And the SJA plan is genuinely mixed in its second stage.
        stage2 = [
            op.kind.value
            for op in sja.plan.remote_operations
            if op.condition == sja.plan.stages[1].condition
        ]
        assert set(stage2) == {"sq", "sjq"}


class TestCapabilityAwareness:
    def test_avoids_unsupported_semijoins(self):
        """Sources without semijoin support get selections (infinite sjq
        cost), even when semijoins win elsewhere."""
        federation, query = dmv_fig1(
            capabilities=SourceCapabilities.minimal()
        )
        # minimal() also disables loads; selection still works.
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        result = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        kinds = {op.kind.value for op in result.plan.remote_operations}
        assert kinds == {"sq"}
        assert math.isfinite(result.estimated_cost)

    def test_mixed_capability_federation(self):
        from repro.sources.network import LinkProfile

        federation, query = dmv_fig1(
            # expensive answers make semijoins attractive where possible
            link=LinkProfile(request_overhead=1.0, per_item_receive=100.0),
        )
        # Disable semijoins at R2 only.
        federation.source("R2").capabilities = SourceCapabilities.minimal()
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        result = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        r2_kinds = {
            op.kind.value
            for op in result.plan.remote_operations
            if op.source == "R2"
        }
        assert r2_kinds == {"sq"}
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)
