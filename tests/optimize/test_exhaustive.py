"""Brute-force validation of SJ and SJA optimality (Sec. 3 claims)."""

from __future__ import annotations

import random

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.errors import OptimizationError
from repro.optimize.exhaustive import (
    ExhaustiveAdaptiveOptimizer,
    ExhaustiveSemijoinOptimizer,
)
from repro.optimize.sj import SJOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.plans.cost import estimate_plan_cost
from repro.plans.space import random_simple_plan
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    synthetic_query,
)
from repro.sources.statistics import ExactStatistics


def make_kit(n_sources=3, m=3, seed=0, **config_kwargs):
    config = SyntheticConfig(
        n_sources=n_sources, n_entities=150, seed=seed, **config_kwargs
    )
    federation = build_synthetic(config)
    query = synthetic_query(config, m=m, seed=seed + 1)
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    model = ChargeCostModel.for_federation(federation, estimator)
    return federation, query, model, estimator


class TestSJOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sj_matches_exhaustive_semijoin_search(self, seed):
        federation, query, model, estimator = make_kit(
            n_sources=4, m=3, seed=seed
        )
        fast = SJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        brute = ExhaustiveSemijoinOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert fast.estimated_cost == pytest.approx(brute.estimated_cost)

    def test_guard_on_large_m(self):
        federation, query, model, estimator = make_kit(m=3)
        tiny_guard = ExhaustiveSemijoinOptimizer(max_specs=2)
        with pytest.raises(OptimizationError, match="guard"):
            tiny_guard.optimize(
                query, federation.source_names, model, estimator
            )


class TestSJAOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sja_matches_exhaustive_adaptive_search(self, seed):
        federation, query, model, estimator = make_kit(
            n_sources=3, m=3, seed=seed
        )
        fast = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        brute = ExhaustiveAdaptiveOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert fast.estimated_cost == pytest.approx(brute.estimated_cost)

    def test_sja_optimal_with_heterogeneous_capabilities(self):
        federation, query, model, estimator = make_kit(
            n_sources=3,
            m=2,
            seed=5,
            native_fraction=0.4,
            emulated_fraction=0.3,
            overhead_range=(2.0, 50.0),
        )
        fast = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        brute = ExhaustiveAdaptiveOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert fast.estimated_cost == pytest.approx(brute.estimated_cost)


class TestSJABeatsSampledSimplePlans:
    """Sec. 3 / [24]: for m = 2 the best semijoin-adaptive plan is the
    best *simple* plan.  We cannot enumerate all simple plans, so we
    sample generalized staged plans (arbitrary earlier binding sets) and
    check none beats SJA under the generic coster."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_no_sampled_simple_plan_beats_sja_for_m2(self, seed):
        federation, query, model, estimator = make_kit(
            n_sources=4, m=2, seed=seed
        )
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        sja_cost = estimate_plan_cost(sja.plan, model, estimator).total
        rng = random.Random(seed)
        for __ in range(60):
            candidate = random_simple_plan(
                query, federation.source_names, rng
            )
            candidate_cost = estimate_plan_cost(
                candidate, model, estimator
            ).total
            assert sja_cost <= candidate_cost + 1e-6
