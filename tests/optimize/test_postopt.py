"""Unit tests for the Sec. 4 postoptimization transformations."""

from __future__ import annotations

import pytest

from repro.costs.model import TableCostModel
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.postopt import (
    apply_difference_pruning,
    apply_source_loading,
)
from repro.plans.builder import (
    StagedChoice,
    build_staged_plan,
    uniform_choices,
)
from repro.plans.classify import PlanClass, classify
from repro.plans.cost import estimate_plan_cost
from repro.plans.operations import (
    DifferenceOp,
    LoadOp,
    LocalSelectionOp,
    OpKind,
    SemijoinOp,
)


@pytest.fixture
def mixed_stage_plan(dmv_query):
    """A staged plan whose second stage mixes sq (R1) and sjq (R2, R3)."""
    choices = [
        [StagedChoice.SELECTION] * 3,
        [StagedChoice.SELECTION, StagedChoice.SEMIJOIN, StagedChoice.SEMIJOIN],
    ]
    return build_staged_plan(
        dmv_query, [0, 1], choices, ["R1", "R2", "R3"]
    )


class TestDifferencePruning:
    def test_introduces_difference_ops(self, mixed_stage_plan):
        pruned = apply_difference_pruning(mixed_stage_plan)
        counts = pruned.count_by_kind()
        # R2's semijoin pruned by X2_1; R3's by X2_1 ∪ X2_2.
        assert counts[OpKind.DIFFERENCE] == 2
        assert counts.get(OpKind.UNION, 0) >= 3
        assert classify(pruned) is PlanClass.EXTENDED

    def test_semijoins_rebound_to_difference_registers(self, mixed_stage_plan):
        pruned = apply_difference_pruning(mixed_stage_plan)
        semijoins = [
            op for op in pruned.operations if isinstance(op, SemijoinOp)
        ]
        inputs = {op.input_register for op in semijoins}
        assert all(register.startswith("D") for register in inputs)

    def test_preserves_answer(self, dmv_federation, mixed_stage_plan, dmv_query):
        pruned = apply_difference_pruning(mixed_stage_plan)
        expected = reference_answer(dmv_federation, dmv_query)
        executor = Executor(dmv_federation)
        assert executor.execute(pruned).items == expected
        assert executor.execute(mixed_stage_plan).items == expected

    def test_reduces_items_actually_sent(self, dmv_federation, mixed_stage_plan):
        executor = Executor(dmv_federation)
        dmv_federation.reset_traffic()
        executor.execute(mixed_stage_plan)
        sent_before = sum(
            source.traffic.items_sent for source in dmv_federation
        )
        dmv_federation.reset_traffic()
        executor.execute(apply_difference_pruning(mixed_stage_plan))
        sent_after = sum(
            source.traffic.items_sent for source in dmv_federation
        )
        assert sent_after <= sent_before

    def test_never_increases_estimated_cost(
        self, mixed_stage_plan, dmv_cost_model, dmv_estimator
    ):
        before = estimate_plan_cost(
            mixed_stage_plan, dmv_cost_model, dmv_estimator
        ).total
        after = estimate_plan_cost(
            apply_difference_pruning(mixed_stage_plan),
            dmv_cost_model,
            dmv_estimator,
        ).total
        assert after <= before + 1e-9

    def test_idempotent(self, mixed_stage_plan):
        once = apply_difference_pruning(mixed_stage_plan)
        twice = apply_difference_pruning(once)
        assert once.operations == twice.operations

    def test_noop_without_stages(self, dmv_query):
        from repro.plans.operations import SelectionOp, UnionOp
        from repro.plans.plan import Plan

        plan = Plan(
            [
                SelectionOp("X", dmv_query.conditions[0], "R1"),
                UnionOp("Y", ("X",)),
            ],
            result="Y",
        )
        assert apply_difference_pruning(plan) is plan

    def test_noop_on_pure_selection_plan(self, dmv_query):
        plan = build_staged_plan(
            dmv_query,
            [0, 1],
            uniform_choices(2, 3, [False, False]),
            ["R1", "R2", "R3"],
        )
        assert apply_difference_pruning(plan) is plan

    def test_first_semijoin_in_stage_not_pruned_when_nothing_prior(
        self, dmv_query
    ):
        plan = build_staged_plan(
            dmv_query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            ["R1", "R2", "R3"],
        )
        pruned = apply_difference_pruning(plan)
        semijoins = [
            op for op in pruned.operations if isinstance(op, SemijoinOp)
        ]
        # R1's semijoin keeps X1; R2 and R3 get pruned inputs.
        assert semijoins[0].input_register == "X1"
        assert semijoins[1].input_register.startswith("D")


class TestSourceLoading:
    def test_loads_when_lq_is_cheap(
        self, dmv_query, dmv_estimator, mixed_stage_plan
    ):
        model = TableCostModel(
            default_sq=100.0,
            default_sjq=(50.0, 1.0),
            lq_table={"R1": 5.0, "R2": 5.0, "R3": 5.0},
        )
        loaded = apply_source_loading(mixed_stage_plan, model, dmv_estimator)
        counts = loaded.count_by_kind()
        assert counts[OpKind.LOAD] == 3
        assert counts[OpKind.LOCAL_SELECTION] == 6
        assert counts.get(OpKind.SELECTION, 0) == 0
        assert counts.get(OpKind.SEMIJOIN, 0) == 0

    def test_loads_only_beneficial_sources(
        self, dmv_query, dmv_estimator, mixed_stage_plan
    ):
        model = TableCostModel(
            default_sq=100.0,
            default_sjq=(50.0, 1.0),
            lq_table={"R1": 5.0},  # others default to infinite
        )
        loaded = apply_source_loading(mixed_stage_plan, model, dmv_estimator)
        load_targets = {
            op.source for op in loaded.operations if isinstance(op, LoadOp)
        }
        assert load_targets == {"R1"}

    def test_noop_when_loading_never_pays(
        self, dmv_query, dmv_estimator, mixed_stage_plan
    ):
        model = TableCostModel(
            default_sq=1.0, default_sjq=(1.0, 0.1), lq_table={}
        )
        assert (
            apply_source_loading(mixed_stage_plan, model, dmv_estimator)
            is mixed_stage_plan
        )

    def test_preserves_answer(self, dmv_federation, dmv_query, dmv_estimator):
        plan = build_staged_plan(
            dmv_query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            ["R1", "R2", "R3"],
        )
        model = TableCostModel(
            default_sq=100.0,
            default_sjq=(50.0, 1.0),
            lq_table={"R1": 5.0, "R2": 5.0, "R3": 5.0},
        )
        loaded = apply_source_loading(plan, model, dmv_estimator)
        expected = reference_answer(dmv_federation, dmv_query)
        assert Executor(dmv_federation).execute(loaded).items == expected

    def test_semijoin_replacement_intersects_binding_register(
        self, dmv_query, dmv_estimator, mixed_stage_plan
    ):
        model = TableCostModel(
            default_sq=100.0,
            default_sjq=(50.0, 1.0),
            lq_table={"R2": 1.0},
        )
        loaded = apply_source_loading(mixed_stage_plan, model, dmv_estimator)
        locals_ = [
            op for op in loaded.operations if isinstance(op, LocalSelectionOp)
        ]
        assert len(locals_) == 2  # R2's two ops (c1 sq + c2 sjq)
        intersects = [
            op
            for op in loaded.operations
            if op.kind is OpKind.INTERSECT and "X1" in op.reads()
        ]
        assert intersects  # the sjq replacement re-binds against X1

    def test_only_sources_filter(
        self, dmv_query, dmv_estimator, mixed_stage_plan
    ):
        model = TableCostModel(
            default_sq=100.0,
            default_sjq=(50.0, 1.0),
            lq_table={"R1": 1.0, "R2": 1.0, "R3": 1.0},
        )
        loaded = apply_source_loading(
            mixed_stage_plan, model, dmv_estimator, only_sources=["R2"]
        )
        load_targets = {
            op.source for op in loaded.operations if isinstance(op, LoadOp)
        }
        assert load_targets == {"R2"}


class TestCombined:
    def test_prune_then_load_preserves_answer(
        self, dmv_federation, dmv_query, dmv_estimator
    ):
        plan = build_staged_plan(
            dmv_query,
            [0, 1],
            uniform_choices(2, 3, [False, True]),
            ["R1", "R2", "R3"],
        )
        model = TableCostModel(
            default_sq=100.0,
            default_sjq=(50.0, 1.0),
            lq_table={"R3": 1.0},
        )
        combined = apply_source_loading(
            apply_difference_pruning(plan), model, dmv_estimator
        )
        expected = reference_answer(dmv_federation, dmv_query)
        assert Executor(dmv_federation).execute(combined).items == expected
        assert any(isinstance(op, DifferenceOp) for op in combined.operations)
        assert any(isinstance(op, LoadOp) for op in combined.operations)
