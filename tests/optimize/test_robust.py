"""Unit tests for the completeness-aware robust optimizer."""

from __future__ import annotations

import pytest

from repro.costs.estimates import SizeEstimator
from repro.costs.model import UniformCostModel
from repro.errors import CostModelError
from repro.optimize import RobustOptimizer, SJAPlusOptimizer
from repro.runtime.availability import AvailabilityModel
from repro.runtime.faults import FaultInjector, FaultProfile
from repro.runtime.policy import RetryPolicy
from repro.sources.generators import dmv_fig1, replicate_federation
from repro.sources.statistics import ExactStatistics


@pytest.fixture
def setting():
    federation, query = dmv_fig1()
    federation = replicate_federation(federation, 2)
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    return federation, query, UniformCostModel(), estimator


def flaky_model(federation, rate=0.3):
    faults = FaultInjector(FaultProfile.flaky(rate), seed=1)
    return AvailabilityModel.from_faults(
        faults, RetryPolicy.no_retry(), federation.source_names
    )


class TestLambdaZero:
    def test_reproduces_cost_only_plan_and_cost(self, setting):
        federation, query, cost_model, estimator = setting
        reps = federation.representative_names
        base = SJAPlusOptimizer().optimize(query, reps, cost_model, estimator)
        robust = RobustOptimizer(
            federation, flaky_model(federation), robustness=0.0
        ).optimize(query, reps, cost_model, estimator)
        assert robust.plan == base.plan
        assert robust.estimated_cost == pytest.approx(base.estimated_cost)
        assert robust.utility == pytest.approx(base.estimated_cost)

    def test_perfect_availability_reproduces_base_at_any_lambda(
        self, setting
    ):
        federation, query, cost_model, estimator = setting
        reps = federation.representative_names
        base = SJAPlusOptimizer().optimize(query, reps, cost_model, estimator)
        robust = RobustOptimizer(federation, robustness=25.0).optimize(
            query, reps, cost_model, estimator
        )
        assert robust.plan == base.plan
        assert robust.expected_completeness == pytest.approx(1.0)


class TestHighLambda:
    def test_flips_to_dual_path(self, setting):
        federation, query, cost_model, estimator = setting
        reps = federation.representative_names
        base = SJAPlusOptimizer().optimize(query, reps, cost_model, estimator)
        robust = RobustOptimizer(
            federation, flaky_model(federation), robustness=5.0
        ).optimize(query, reps, cost_model, estimator)
        assert robust.plan != base.plan
        mirrors = {"R1~1", "R2~1", "R3~1"}
        assert set(robust.plan.sources_used()) & mirrors
        labels = [c.label for c in robust.candidates]
        assert any("dual-path" in label for label in labels)

    def test_completeness_monotone_in_lambda(self, setting):
        federation, query, cost_model, estimator = setting
        reps = federation.representative_names
        model = flaky_model(federation)
        chosen = [
            RobustOptimizer(federation, model, robustness=lam)
            .optimize(query, reps, cost_model, estimator)
            .expected_completeness
            for lam in (0.0, 1.0, 5.0, 25.0)
        ]
        assert chosen == sorted(chosen)
        assert chosen[-1] > chosen[0]

    def test_candidates_are_scored_consistently(self, setting):
        federation, query, cost_model, estimator = setting
        robust = RobustOptimizer(
            federation, flaky_model(federation), robustness=2.0
        ).optimize(
            query, federation.representative_names, cost_model, estimator
        )
        assert robust.utility == pytest.approx(
            min(c.utility for c in robust.candidates)
        )
        for candidate in robust.candidates:
            assert 0.0 <= candidate.expected_completeness <= 1.0
            assert candidate.cost > 0
        assert "candidates" in robust.summary()


class TestFailoverAwareness:
    def test_failover_executor_skips_dual_path_expansion(self, setting):
        federation, query, cost_model, estimator = setting
        reps = federation.representative_names
        model = flaky_model(federation)
        with_failover = RobustOptimizer(
            federation, model, robustness=5.0, failover=True
        ).optimize(query, reps, cost_model, estimator)
        labels = [c.label for c in with_failover.candidates]
        assert not any("dual-path" in label for label in labels)
        # Mirror redundancy is credited to execution-time failover, so
        # the cheap single-path plan already scores well.
        base = SJAPlusOptimizer().optimize(query, reps, cost_model, estimator)
        assert with_failover.plan == base.plan
        assert with_failover.expected_completeness > RobustOptimizer(
            federation, model, robustness=5.0, dual_path=False
        ).optimize(
            query, reps, cost_model, estimator
        ).expected_completeness


class TestValidation:
    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan")])
    def test_bad_robustness_rejected(self, setting, bad):
        federation, __, __, __ = setting
        with pytest.raises(CostModelError):
            RobustOptimizer(federation, robustness=bad)
