"""Unit tests for the Sec. 5 join-over-union baseline."""

from __future__ import annotations

import pytest

from repro.errors import OptimizationError
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.sja import SJAOptimizer
from repro.optimize.union_pushdown import JoinOverUnionOptimizer
from repro.plans.operations import OpKind


class TestExpansion:
    def test_subquery_count_is_n_to_the_m(self, dmv_query, dmv_federation,
                                          dmv_cost_model, dmv_estimator):
        result = JoinOverUnionOptimizer().optimize(
            dmv_query, dmv_federation.source_names, dmv_cost_model,
            dmv_estimator,
        )
        assert result.plans_considered == 3**2

    def test_naive_mode_repeats_selections(self, dmv_query, dmv_federation,
                                           dmv_cost_model, dmv_estimator):
        result = JoinOverUnionOptimizer().optimize(
            dmv_query, dmv_federation.source_names, dmv_cost_model,
            dmv_estimator,
        )
        counts = result.plan.count_by_kind()
        # 9 subqueries: each has 1 selection head + 1 semijoin tail.
        assert counts[OpKind.SELECTION] == 9
        assert counts[OpKind.SEMIJOIN] == 9

    def test_cse_mode_dedupes_selections(self, dmv_query, dmv_federation,
                                         dmv_cost_model, dmv_estimator):
        result = JoinOverUnionOptimizer(eliminate_common=True).optimize(
            dmv_query, dmv_federation.source_names, dmv_cost_model,
            dmv_estimator,
        )
        counts = result.plan.count_by_kind()
        # Only 3 distinct selection heads (c1 at each source) survive,
        # and 9 semijoins collapse to 3x3 distinct (cond, source, input).
        assert counts[OpKind.SELECTION] == 3
        assert counts[OpKind.SEMIJOIN] == 9

    def test_cse_never_costs_more_than_naive(self, dmv_query, dmv_federation,
                                             dmv_cost_model, dmv_estimator):
        naive = JoinOverUnionOptimizer().optimize(
            dmv_query, dmv_federation.source_names, dmv_cost_model,
            dmv_estimator,
        )
        cse = JoinOverUnionOptimizer(eliminate_common=True).optimize(
            dmv_query, dmv_federation.source_names, dmv_cost_model,
            dmv_estimator,
        )
        assert cse.estimated_cost <= naive.estimated_cost + 1e-9


class TestSemantics:
    def test_answer_matches_reference(self, dmv, dmv_cost_model,
                                      dmv_estimator):
        federation, query = dmv
        for eliminate in (False, True):
            result = JoinOverUnionOptimizer(eliminate).optimize(
                query, federation.source_names, dmv_cost_model, dmv_estimator
            )
            execution = Executor(federation).execute(result.plan)
            assert execution.items == reference_answer(federation, query)

    def test_answer_matches_on_synthetic(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = JoinOverUnionOptimizer(eliminate_common=True).optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)


class TestComparisonWithSJA:
    def test_sja_is_cheaper(self, synthetic_setup):
        """The whole point of Sec. 5: the expansion loses badly."""
        federation, query, model, estimator = synthetic_setup
        baseline = JoinOverUnionOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert sja.estimated_cost < baseline.estimated_cost


class TestGuard:
    def test_blowup_guard_trips(self, dmv_query, dmv_federation,
                                dmv_cost_model, dmv_estimator):
        guarded = JoinOverUnionOptimizer(max_subqueries=5)
        with pytest.raises(OptimizationError, match="blow-up"):
            guarded.optimize(
                dmv_query, dmv_federation.source_names, dmv_cost_model,
                dmv_estimator,
            )
