"""Unit tests for the greedy polynomial-time optimizers."""

from __future__ import annotations

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.filter import FilterOptimizer
from repro.optimize.greedy import (
    GreedySJAOptimizer,
    GreedySJOptimizer,
    SelectivityOrderOptimizer,
)
from repro.optimize.sj import SJOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.plans.classify import is_semijoin_adaptive_plan, is_semijoin_plan
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    synthetic_query,
)
from repro.sources.statistics import ExactStatistics

GREEDIES = [SelectivityOrderOptimizer, GreedySJAOptimizer, GreedySJOptimizer]


def make_kit(m=4, seed=0):
    config = SyntheticConfig(n_sources=5, n_entities=200, seed=seed)
    federation = build_synthetic(config)
    query = synthetic_query(config, m=m, seed=seed + 100)
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    model = ChargeCostModel.for_federation(federation, estimator)
    return federation, query, model, estimator


class TestGreedyCorrectness:
    @pytest.mark.parametrize("optimizer_class", GREEDIES)
    def test_answers_match_reference(self, optimizer_class):
        federation, query, model, estimator = make_kit()
        result = optimizer_class().optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)

    @pytest.mark.parametrize("optimizer_class", GREEDIES)
    def test_plans_are_semijoin_adaptive(self, optimizer_class):
        federation, query, model, estimator = make_kit()
        result = optimizer_class().optimize(
            query, federation.source_names, model, estimator
        )
        assert is_semijoin_adaptive_plan(result.plan)


class TestGreedyQuality:
    @pytest.mark.parametrize("optimizer_class", GREEDIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_at_least_as_good_as_filter(self, optimizer_class, seed):
        federation, query, model, estimator = make_kit(seed=seed)
        greedy = optimizer_class().optimize(
            query, federation.source_names, model, estimator
        )
        flt = FilterOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert greedy.estimated_cost <= flt.estimated_cost + 1e-9

    @pytest.mark.parametrize("optimizer_class", GREEDIES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_within_reasonable_factor_of_sja(self, optimizer_class, seed):
        """The paper says greedy variants are "still very good"; we
        assert a loose 1.5x bound on these workloads."""
        federation, query, model, estimator = make_kit(m=3, seed=seed)
        greedy = optimizer_class().optimize(
            query, federation.source_names, model, estimator
        )
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert greedy.estimated_cost <= 1.5 * sja.estimated_cost + 1e-9
        assert greedy.estimated_cost >= sja.estimated_cost - 1e-9

    def test_greedy_searches_far_fewer_plans(self):
        federation, query, model, estimator = make_kit(m=5)
        greedy = GreedySJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert greedy.plans_considered < sja.plans_considered

    def test_selectivity_order_uses_single_ordering(self):
        federation, query, model, estimator = make_kit(m=4)
        result = SelectivityOrderOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert result.orderings_considered == 1

    def test_greedy_sj_emits_semijoin_class_plans(self):
        federation, query, model, estimator = make_kit(m=3)
        result = GreedySJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert is_semijoin_plan(result.plan)

    def test_greedy_sj_never_beats_exact_sj(self):
        for seed in range(3):
            federation, query, model, estimator = make_kit(m=3, seed=seed)
            greedy = GreedySJOptimizer().optimize(
                query, federation.source_names, model, estimator
            )
            exact = SJOptimizer().optimize(
                query, federation.source_names, model, estimator
            )
            assert exact.estimated_cost <= greedy.estimated_cost + 1e-9

    def test_selectivity_ordering_sorts_by_global_selectivity(self):
        federation, query, model, estimator = make_kit(m=4)
        result = SelectivityOrderOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        stage_conditions = [stage.condition for stage in result.plan.stages]
        selectivities = [
            estimator.global_selectivity(condition)
            for condition in stage_conditions
        ]
        assert selectivities == sorted(selectivities)
