"""Unit tests for the FILTER algorithm."""

from __future__ import annotations

import pytest

from repro.errors import OptimizationError
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.filter import FilterOptimizer
from repro.plans.classify import PlanClass, classify


class TestFilterOptimizer:
    def test_plan_shape_is_m_by_n(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = FilterOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert result.plan.remote_op_count == query.arity * federation.size
        assert classify(result.plan) is PlanClass.FILTER

    def test_cost_is_sum_of_all_selections(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = FilterOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        expected = sum(
            model.sq_cost(condition, source)
            for condition in query.conditions
            for source in federation.source_names
        )
        assert result.estimated_cost == pytest.approx(expected)

    def test_no_search_performed(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = FilterOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert result.plans_considered == 1
        assert result.orderings_considered == 1

    def test_executed_answer_matches_reference(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = FilterOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)

    def test_empty_sources_rejected(self, synthetic_setup):
        __, query, model, estimator = synthetic_setup
        with pytest.raises(OptimizationError):
            FilterOptimizer().optimize(query, [], model, estimator)

    def test_summary_text(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = FilterOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert "FILTER" in result.summary()
