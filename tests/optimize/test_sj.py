"""Unit tests for the SJ algorithm (Fig. 3)."""

from __future__ import annotations

import math


from repro.costs.model import TableCostModel
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.optimize.filter import FilterOptimizer
from repro.optimize.sj import SJOptimizer
from repro.plans.classify import PlanClass, classify


class TestSearch:
    def test_considers_all_orderings(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = SJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert result.orderings_considered == math.factorial(query.arity)

    def test_never_worse_than_filter(self, synthetic_setup):
        """SJ can always fall back to all-selections, whose cost equals
        the filter plan's — so optimal SJ <= FILTER."""
        federation, query, model, estimator = synthetic_setup
        sj = SJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        flt = FilterOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert sj.estimated_cost <= flt.estimated_cost + 1e-9

    def test_plan_is_semijoin_class(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = SJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        assert classify(result.plan) in (PlanClass.SEMIJOIN, PlanClass.FILTER)

    def test_executed_answer_matches_reference(self, synthetic_setup):
        federation, query, model, estimator = synthetic_setup
        result = SJOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)


class TestDecisions:
    def test_prefers_semijoins_when_selections_are_expensive(
        self, dmv_query, dmv_estimator
    ):
        model = TableCostModel(default_sq=1000.0, default_sjq=(1.0, 0.1))
        result = SJOptimizer().optimize(
            dmv_query, ["R1", "R2", "R3"], model, dmv_estimator
        )
        # First stage must still be selections; the second should be
        # semijoins: 3 sq + 3 sjq.
        kinds = [op.kind.value for op in result.plan.remote_operations]
        assert kinds == ["sq", "sq", "sq", "sjq", "sjq", "sjq"]

    def test_prefers_selections_when_semijoins_are_expensive(
        self, dmv_query, dmv_estimator
    ):
        model = TableCostModel(default_sq=1.0, default_sjq=(1000.0, 10.0))
        result = SJOptimizer().optimize(
            dmv_query, ["R1", "R2", "R3"], model, dmv_estimator
        )
        kinds = {op.kind.value for op in result.plan.remote_operations}
        assert kinds == {"sq"}

    def test_uniform_choice_even_when_mixed_would_win(
        self, dmv_query, dmv_estimator
    ):
        """The defining SJ limitation (Sec. 2.5): per-stage uniformity.

        Make semijoins cheap at R1 but ruinous at R2/R3; SJ must pick one
        uniform option for the stage, so its plan contains either zero
        semijoins or semijoins at every source — never a mix.
        """
        c2 = dmv_query.conditions[1]
        model = TableCostModel(
            default_sq=100.0,
            sjq_table={
                (c2, "R1"): (1.0, 0.01),
                (c2, "R2"): (10_000.0, 10.0),
                (c2, "R3"): (10_000.0, 10.0),
            },
        )
        result = SJOptimizer().optimize(
            dmv_query, ["R1", "R2", "R3"], model, dmv_estimator
        )
        per_stage_kinds = {}
        for op in result.plan.remote_operations:
            per_stage_kinds.setdefault(op.condition, set()).add(op.kind.value)
        for kinds in per_stage_kinds.values():
            assert len(kinds) == 1  # uniform within every stage
