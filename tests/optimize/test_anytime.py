"""The anytime search strategy and its planning budget.

Contract: an *unbudgeted* anytime search is just branch-and-bound and
must match the subset-DP optimum bit for bit.  Under a budget it may
stop early, but then it must still return a valid complete ordering,
flag ``budget_exhausted``, and — because ``max_subsets`` is a pure
function of the search state — behave identically on every run.
"""

from __future__ import annotations

import pytest

from repro.errors import OptimizationError
from repro.optimize.robust import RobustOptimizer
from repro.optimize.search import PlanningBudget, search_ordering
from repro.optimize.sja import SJAOptimizer
from repro.optimize.sja_plus import SJAPlusOptimizer
from tests.optimize.test_search import synthetic_problem


def optimize_kit(m=5):
    problem, query, federation, cost_model, estimator = synthetic_problem(m=m)
    return problem, query, federation, cost_model, estimator


class TestBudget:
    def test_unarmed_budget_never_expires(self):
        budget = PlanningBudget()
        assert not budget.exhausted(10**9)

    def test_node_budget_trips_on_count(self):
        budget = PlanningBudget(max_subsets=5)
        assert not budget.exhausted(4)
        assert budget.exhausted(5)
        assert budget.exhausted(6)

    def test_rearm_resets_the_limits(self):
        budget = PlanningBudget(max_subsets=1)
        assert budget.exhausted(1)
        budget.arm(max_subsets=100)
        assert not budget.exhausted(1)
        budget.arm()
        assert not budget.exhausted(10**9)

    def test_invalid_limits_rejected(self):
        with pytest.raises(OptimizationError):
            PlanningBudget(max_subsets=-1)
        with pytest.raises(OptimizationError):
            PlanningBudget(wall_clock_s=0.0)
        with pytest.raises(OptimizationError):
            PlanningBudget(wall_clock_s=float("inf"))


class TestAnytimeSearch:
    def test_unbudgeted_anytime_matches_dp_exactly(self):
        problem, __, __, __, __ = optimize_kit(m=5)
        dp = search_ordering(problem, 5, strategy="dp")
        anytime = search_ordering(problem, 5, strategy="anytime")
        assert anytime.cost == dp.cost
        assert not anytime.budget_exhausted

    def test_tiny_budget_returns_valid_flagged_ordering(self):
        problem, __, __, __, __ = optimize_kit(m=5)
        budget = PlanningBudget(max_subsets=2)
        outcome = search_ordering(
            problem, 5, strategy="anytime", budget=budget
        )
        assert outcome.budget_exhausted
        assert sorted(outcome.ordering) == list(range(5))
        assert len(outcome.payloads) == 5

    def test_budgeted_cost_never_beats_the_optimum(self):
        problem, __, __, __, __ = optimize_kit(m=5)
        optimum = search_ordering(problem, 5, strategy="dp").cost
        for max_subsets in (1, 2, 8, 64):
            budget = PlanningBudget(max_subsets=max_subsets)
            outcome = search_ordering(
                problem, 5, strategy="anytime", budget=budget
            )
            assert outcome.cost >= optimum

    def test_budgeted_search_is_deterministic(self):
        problem, __, __, __, __ = optimize_kit(m=5)
        results = []
        for __ in range(3):
            budget = PlanningBudget(max_subsets=3)
            outcome = search_ordering(
                problem, 5, strategy="anytime", budget=budget
            )
            results.append((outcome.ordering, outcome.cost))
        assert results[0] == results[1] == results[2]


class TestOptimizerPropagation:
    def test_sja_exposes_and_obeys_the_budget(self):
        __, query, federation, cost_model, estimator = optimize_kit(m=5)
        budget = PlanningBudget(max_subsets=2)
        optimizer = SJAOptimizer(search="anytime", planning_budget=budget)
        assert optimizer.planning_budget is budget
        result = optimizer.optimize(
            query, federation.source_names, cost_model, estimator
        )
        assert result.budget_exhausted
        assert result.search_strategy == "anytime"

    def test_sja_plus_delegates_budget_to_base(self):
        __, query, federation, cost_model, estimator = optimize_kit(m=5)
        budget = PlanningBudget(max_subsets=2)
        optimizer = SJAPlusOptimizer(
            search="anytime", planning_budget=budget
        )
        assert optimizer.planning_budget is budget
        result = optimizer.optimize(
            query, federation.source_names, cost_model, estimator
        )
        assert result.budget_exhausted

    def test_robust_delegates_budget_to_base(self):
        __, query, federation, cost_model, estimator = optimize_kit(m=5)
        budget = PlanningBudget(max_subsets=2)
        optimizer = RobustOptimizer(
            federation, search="anytime", planning_budget=budget
        )
        assert optimizer.planning_budget is budget
        result = optimizer.optimize(
            query, federation.source_names, cost_model, estimator
        )
        assert result.budget_exhausted

    def test_summary_flags_exhaustion(self):
        __, query, federation, cost_model, estimator = optimize_kit(m=5)
        exact = SJAOptimizer(search="dp").optimize(
            query, federation.source_names, cost_model, estimator
        )
        assert not exact.budget_exhausted
        assert "budget exhausted" not in exact.summary()
        budgeted = SJAOptimizer(
            search="anytime", planning_budget=PlanningBudget(max_subsets=2)
        ).optimize(query, federation.source_names, cost_model, estimator)
        assert "budget exhausted" in budgeted.summary()
