"""Unit tests for the response-time-aware optimizer."""

from __future__ import annotations

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.executor import Executor
from repro.mediator.reference import reference_answer
from repro.mediator.schedule import estimated_response_time
from repro.optimize.response_time import ResponseTimeSJAOptimizer
from repro.optimize.sja import SJAOptimizer
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    dmv_fig1,
    synthetic_query,
)
from repro.sources.network import LinkProfile
from repro.sources.statistics import ExactStatistics


def make_kit(config, m, seed):
    federation = build_synthetic(config)
    query = synthetic_query(config, m=m, seed=seed)
    estimator = SizeEstimator(
        ExactStatistics(federation), federation.source_names
    )
    model = ChargeCostModel.for_federation(federation, estimator)
    return federation, query, model, estimator


class TestResponseTimeOptimizer:
    def test_dmv_answer_correct(self):
        federation, query = dmv_fig1()
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        optimizer = ResponseTimeSJAOptimizer(federation)
        result = optimizer.optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)
        assert optimizer.last_schedule is not None
        assert result.estimated_cost == pytest.approx(
            optimizer.last_schedule.makespan_s
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_answers_correct_on_synthetic(self, seed):
        config = SyntheticConfig(
            n_sources=4,
            n_entities=200,
            native_fraction=0.5,
            emulated_fraction=0.25,
            seed=seed,
        )
        federation, query, model, estimator = make_kit(config, 3, seed + 7)
        result = ResponseTimeSJAOptimizer(federation).optimize(
            query, federation.source_names, model, estimator
        )
        execution = Executor(federation).execute(result.plan)
        assert execution.items == reference_answer(federation, query)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_never_slower_than_sja_plan(self, seed):
        """The RT optimizer's makespan <= the total-work SJA plan's —
        otherwise it failed at its own objective."""
        config = SyntheticConfig(
            n_sources=5,
            n_entities=250,
            overhead_range=(2.0, 40.0),
            receive_range=(1.0, 4.0),
            seed=seed * 11,
        )
        federation, query, model, estimator = make_kit(config, 3, seed + 50)
        rt_result = ResponseTimeSJAOptimizer(federation).optimize(
            query, federation.source_names, model, estimator
        )
        sja_plan = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        ).plan
        sja_makespan = estimated_response_time(
            sja_plan, federation, estimator
        ).makespan_s
        assert rt_result.estimated_cost <= sja_makespan + 1e-9

    def test_work_vs_response_tension(self):
        """Deep semijoin chains can minimize work yet lose on response
        time to the filter plan; the RT optimizer must notice."""
        federation, query = dmv_fig1(
            # high latency makes extra rounds expensive in *time* while
            # cheap transfers keep semijoins attractive in *work*.
            link=LinkProfile(
                request_overhead=1.0,
                per_item_send=0.1,
                per_item_receive=20.0,
                latency_s=2.0,
                items_per_s=10_000.0,
            )
        )
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        sja = SJAOptimizer().optimize(
            query, federation.source_names, model, estimator
        )
        rt = ResponseTimeSJAOptimizer(federation).optimize(
            query, federation.source_names, model, estimator
        )
        sja_makespan = estimated_response_time(
            sja.plan, federation, estimator
        ).makespan_s
        assert rt.estimated_cost <= sja_makespan
        execution = Executor(federation).execute(rt.plan)
        assert execution.items == reference_answer(federation, query)

    def test_unsupported_sources_get_selections(self):
        from repro.sources.capabilities import SourceCapabilities

        federation, query = dmv_fig1(
            capabilities=SourceCapabilities.minimal()
        )
        estimator = SizeEstimator(
            ExactStatistics(federation), federation.source_names
        )
        model = ChargeCostModel.for_federation(federation, estimator)
        result = ResponseTimeSJAOptimizer(federation).optimize(
            query, federation.source_names, model, estimator
        )
        kinds = {op.kind.value for op in result.plan.remote_operations}
        assert kinds == {"sq"}
