"""Execute every Python block in docs/TUTORIAL.md.

Documentation that doesn't run is documentation that rots; the tutorial
blocks share one namespace and are executed in order, exactly as a
reader would follow them.
"""

from __future__ import annotations

import pathlib
import re

TUTORIAL = pathlib.Path(__file__).parent.parent / "docs" / "TUTORIAL.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_python_blocks() -> list[str]:
    return _BLOCK.findall(TUTORIAL.read_text(encoding="utf-8"))


def test_tutorial_exists_and_has_blocks():
    blocks = extract_python_blocks()
    assert len(blocks) >= 8


def test_tutorial_blocks_execute_in_order(capsys):
    namespace: dict = {}
    for index, block in enumerate(extract_python_blocks(), start=1):
        try:
            exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic aid
            raise AssertionError(
                f"tutorial block {index} failed: {exc}\n---\n{block}"
            ) from exc
    # Sanity: the walkthrough actually computed the DMV answer somewhere.
    assert sorted(namespace["answer"].items) == ["J55", "T21"]
