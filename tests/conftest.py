"""Shared fixtures for the fusion-query test suite."""

from __future__ import annotations

import pytest

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.mediator.session import Mediator
from repro.sources.generators import (
    SyntheticConfig,
    build_synthetic,
    dmv_fig1,
    synthetic_query,
)
from repro.sources.statistics import ExactStatistics


@pytest.fixture
def dmv():
    """The Fig. 1 federation and query: (federation, query)."""
    return dmv_fig1()


@pytest.fixture
def dmv_federation(dmv):
    return dmv[0]


@pytest.fixture
def dmv_query(dmv):
    return dmv[1]


@pytest.fixture
def dmv_estimator(dmv_federation):
    return SizeEstimator(
        ExactStatistics(dmv_federation), dmv_federation.source_names
    )


@pytest.fixture
def dmv_cost_model(dmv_federation, dmv_estimator):
    return ChargeCostModel.for_federation(dmv_federation, dmv_estimator)


@pytest.fixture
def dmv_mediator(dmv_federation):
    return Mediator(dmv_federation, verify=True)


@pytest.fixture
def small_synthetic():
    """A small deterministic synthetic federation with its config."""
    config = SyntheticConfig(
        n_sources=4,
        n_entities=200,
        coverage=(0.3, 0.7),
        rows_per_entity=(1, 2),
        seed=42,
    )
    return build_synthetic(config), config


@pytest.fixture
def synthetic_setup(small_synthetic):
    """Federation, query, estimator, cost model — the full planning kit."""
    federation, config = small_synthetic
    query = synthetic_query(config, m=3, seed=7)
    statistics = ExactStatistics(federation)
    estimator = SizeEstimator(statistics, federation.source_names)
    cost_model = ChargeCostModel.for_federation(federation, estimator)
    return federation, query, cost_model, estimator
