"""The instrumentation hub the execution layers report into.

A :class:`Recorder` owns (optionally) a metrics registry and an event
log and exposes one domain-level method per observable incident; each
call updates both sinks consistently, so engines never touch metric
names or event schemas directly.  Everything is keyed to the virtual
clock passed by the caller.

A recorder is shared across re-plan rounds: the resilient executor bumps
``round`` and ``clock_offset_s`` between rounds, so event timestamps
stay monotone across a whole resilient run even though each engine round
restarts its clock at zero.

With ``Recorder()`` (no sinks requested) both a metrics registry and an
event log are created; pass ``metrics=None`` / ``events=None`` through
the keyword-only constructor arguments to drop one side.  The execution
layers accept ``recorder=None`` (their default) and skip all
instrumentation, which keeps the zero-config runtime byte-identical to
the uninstrumented one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import EventLog
from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.spans import (
    ADMISSION_SPAN_ID,
    EXECUTE_SPAN_ID,
    FIRST_ENGINE_SPAN_ID,
    MERGE_SPAN_ID,
    PLAN_SPAN_ID,
    POOL_SPAN_ID,
    QUEUE_SPAN_ID,
    ROOT_SPAN_ID,
    Span,
    SpanLog,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.trace import AttemptSpan, OpSpan


_UNSET = object()


class _ActiveTrace:
    """Span-allocation state for the query currently executing.

    Owned by exactly one recorder at a time (the engine runs
    synchronously inside ``start_trace`` / ``end_trace``), so no lock:
    span *ids* are allocated here deterministically in event order,
    while the shared :class:`~repro.obs.spans.SpanLog` locks appends.
    """

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self._next_id = FIRST_ENGINE_SPAN_ID
        #: (round, step) -> pre-allocated op span id (attempt/retry
        #: spans arrive before their op span is materialized; re-plan
        #: rounds restart step numbering, so the round disambiguates).
        self._op_ids: dict[tuple[int, int], int] = {}

    def allocate(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def op_span_id(self, key: tuple[int, int]) -> int:
        span_id = self._op_ids.get(key)
        if span_id is None:
            span_id = self.allocate()
            self._op_ids[key] = span_id
        return span_id


class Recorder:
    """Collects events and metrics from one mediator's executions."""

    def __init__(
        self,
        metrics: MetricsRegistry | None | object = _UNSET,
        events: EventLog | None | object = _UNSET,
        spans: SpanLog | None = None,
    ):
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics is _UNSET else metrics  # type: ignore[assignment]
        )
        self.events: EventLog | None = (
            EventLog() if events is _UNSET else events  # type: ignore[assignment]
        )
        #: Optional span sink — a service shares one log across all of
        #: its recorders; ``None`` disables span recording entirely.
        self.spans: SpanLog | None = spans
        #: Current re-plan round (0 = initial plan), set by the caller.
        self.round = 0
        #: Added to every timestamp — keeps event time monotone across
        #: re-plan rounds whose engine clocks each restart at zero.
        self.clock_offset_s = 0.0
        self._trace: _ActiveTrace | None = None

    # ------------------------------------------------------------------
    # Low-level sinks

    def _emit(self, now_s: float, event_type: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(
                self.clock_offset_s + now_s, event_type, **fields
            )

    def _now(self, now_s: float) -> float:
        return self.clock_offset_s + now_s

    # ------------------------------------------------------------------
    # Trace context (span recording)

    def start_trace(self, trace_id: str) -> bool:
        """Begin recording engine spans under ``trace_id``.

        Returns ``True`` when a context was opened; a no-op (``False``)
        when span recording is off or a trace is already active, so
        nested layers (mediator around engine) compose without
        double-starting.
        """
        if self.spans is None or self._trace is not None:
            return False
        self._trace = _ActiveTrace(trace_id)
        return True

    def end_trace(self) -> None:
        self._trace = None

    def _span(
        self,
        name: str,
        category: str,
        start_s: float,
        end_s: float,
        parent_id: int | None,
        span_id: int | None = None,
        **attributes,
    ) -> None:
        """Append one engine span under the active trace (offset into
        the service timeline), if tracing is on."""
        trace = self._trace
        if self.spans is None or trace is None:
            return
        self.spans.add(
            Span(
                trace_id=trace.trace_id,
                span_id=trace.allocate() if span_id is None else span_id,
                parent_id=parent_id,
                name=name,
                category=category,
                start_s=self.clock_offset_s + start_s,
                end_s=self.clock_offset_s + end_s,
                attributes=attributes,
            )
        )

    # ------------------------------------------------------------------
    # Run lifecycle

    def run_started(
        self, now_s: float, backend: str, plan, result_register: str
    ) -> None:
        self._emit(
            now_s,
            "run_start",
            backend=backend,
            round=self.round,
            plan_ops=len(plan.operations),
            remote_ops=plan.remote_op_count,
            result=result_register,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_runs_total", backend=backend
            ).inc(now_s=self._now(now_s))

    def run_finished(
        self,
        now_s: float,
        backend: str,
        makespan_s: float,
        retries: int,
        degraded: int,
        recovered: int,
        hedges: int,
        cost: float,
        items: int,
    ) -> None:
        self._emit(
            now_s,
            "run_end",
            backend=backend,
            round=self.round,
            makespan=makespan_s,
            retries=retries,
            degraded=degraded,
            recovered=recovered,
            hedges=hedges,
            cost=cost,
            items=items,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.gauge("repro_makespan_s").set(
                self.clock_offset_s + makespan_s, now_s=stamp
            )
            self.metrics.counter("repro_answer_items_total").inc(
                items, now_s=stamp
            )

    # ------------------------------------------------------------------
    # Wire attempts

    def sendset_shipped(
        self, now_s: float, step: int, source: str, condition: str, size: int
    ) -> None:
        self._emit(
            now_s,
            "sendset",
            round=self.round,
            step=step,
            source=source,
            condition=condition,
            size=size,
        )
        if self.metrics is not None:
            self.metrics.histogram(
                "repro_sendset_size", buckets=SIZE_BUCKETS
            ).observe(size, now_s=self._now(now_s))
        if self._trace is not None:
            self._span(
                "sendset",
                "execute",
                now_s,
                now_s,
                self._trace.op_span_id((self.round, step)),
                source=source,
                size=size,
            )

    def attempt_finished(
        self,
        now_s: float,
        step: int,
        op_kind: str,
        planned: str,
        condition: str,
        span: "AttemptSpan",
    ) -> None:
        source = span.source or planned
        self._emit(
            now_s,
            "attempt",
            round=self.round,
            step=step,
            op=op_kind,
            planned=planned,
            source=source,
            condition=condition,
            attempt=span.attempt,
            start=span.start_s,
            end=span.end_s,
            fate=span.fate.value,
            hedge=span.hedge,
            cost=span.cost,
            items_sent=span.items_sent,
            items_received=span.items_received,
            rows_loaded=span.rows_loaded,
            messages=span.messages,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.counter(
                "repro_attempts_total", source=source, fate=span.fate.value
            ).inc(now_s=stamp)
            self.metrics.counter(
                "repro_wire_busy_seconds_total", source=source
            ).inc(span.duration_s, now_s=stamp)
            self.metrics.counter(
                "repro_op_cost_total", source=source
            ).inc(span.cost, now_s=stamp)
            self.metrics.counter(
                "repro_op_items_sent_total", source=source
            ).inc(span.items_sent, now_s=stamp)
            self.metrics.counter(
                "repro_op_items_received_total", source=source
            ).inc(span.items_received, now_s=stamp)
            if span.rows_loaded:
                self.metrics.counter(
                    "repro_op_rows_loaded_total", source=source
                ).inc(span.rows_loaded, now_s=stamp)
            self.metrics.histogram(
                "repro_attempt_duration_s", buckets=DURATION_BUCKETS_S
            ).observe(span.duration_s, now_s=stamp)
        if self._trace is not None:
            self._span(
                "attempt",
                "execute",
                span.start_s,
                span.end_s,
                self._trace.op_span_id((self.round, step)),
                attempt=span.attempt,
                source=source,
                fate=span.fate.value,
                hedge=span.hedge,
                cost=span.cost,
            )

    def retry_scheduled(
        self, now_s: float, step: int, source: str, retries: int, at_s: float
    ) -> None:
        self._emit(
            now_s,
            "retry",
            round=self.round,
            step=step,
            source=source,
            retries=retries,
            at=at_s,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_retries_total", source=source
            ).inc(now_s=self._now(now_s))
        if self._trace is not None:
            # The backoff window is blocked time on the op's critical
            # path; recording it as a span lets the analyzer classify
            # it separately from wire time.
            self._span(
                "backoff",
                "execute",
                now_s,
                at_s,
                self._trace.op_span_id((self.round, step)),
                source=source,
                retries=retries,
            )

    def hedge_launched(
        self, now_s: float, step: int, primary: str, target: str, trigger: str
    ) -> None:
        self._emit(
            now_s,
            "hedge",
            round=self.round,
            step=step,
            primary=primary,
            target=target,
            trigger=trigger,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_hedges_total", target=target, trigger=trigger
            ).inc(now_s=self._now(now_s))
        if self._trace is not None:
            self._span(
                "hedge",
                "execute",
                now_s,
                now_s,
                self._trace.op_span_id((self.round, step)),
                primary=primary,
                target=target,
                trigger=trigger,
            )

    # ------------------------------------------------------------------
    # Health / planning

    def breaker_transition(
        self, now_s: float, source: str, old_state: str, new_state: str
    ) -> None:
        self._emit(
            now_s,
            "breaker",
            source=source,
            **{"from": old_state, "to": new_state},
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_breaker_transitions_total", source=source, to=new_state
            ).inc(now_s=self._now(now_s))
        if self._trace is not None:
            self._span(
                "breaker",
                "execute",
                now_s,
                now_s,
                EXECUTE_SPAN_ID,
                source=source,
                **{"from": old_state, "to": new_state},
            )

    def answer_verified(self, now_s, step, report, score) -> None:
        """One answer passed through the verifier (``report`` is a
        :class:`~repro.runtime.verify.AnswerReport`).

        Metrics count every verified answer; a ``quality`` event is
        emitted only when the answer had detectable issues, so clean
        runs do not bloat the log.
        """
        if self.metrics is not None:
            outcome = "clean" if report.clean else "tainted"
            self.metrics.counter(
                "repro_verify_answers_total",
                source=report.source,
                outcome=outcome,
            ).inc(now_s=self._now(now_s))
            for reason, count in (
                ("corrupt", report.corrupt),
                ("duplicate", report.duplicates),
                ("conflict", report.conflicts),
            ):
                if count:
                    self.metrics.counter(
                        "repro_verify_values_dropped_total",
                        source=report.source,
                        reason=reason,
                    ).inc(count, now_s=self._now(now_s))
            self.metrics.gauge(
                "repro_verify_quality_score", source=report.source
            ).set(score, now_s=self._now(now_s))
        if not report.clean:
            self._emit(
                now_s,
                "quality",
                step=step,
                source=report.source,
                delivered=report.delivered,
                kept=report.kept,
                corrupt=report.corrupt,
                duplicates=report.duplicates,
                conflicts=report.conflicts,
                score=score,
            )
        if self._trace is not None:
            self._span(
                "verify",
                "execute",
                now_s,
                now_s,
                self._trace.op_span_id((self.round, step)),
                source=report.source,
                outcome="clean" if report.clean else "tainted",
                kept=report.kept,
                dropped=report.delivered - report.kept,
            )

    def quarantine_changed(
        self, now_s, source: str, action: str, score: float, answers: int
    ) -> None:
        """A source entered or left data-quality quarantine."""
        self._emit(
            now_s,
            "quarantine",
            source=source,
            action=action,
            score=score,
            answers=answers,
        )
        if self.metrics is not None and action == "enter":
            self.metrics.counter(
                "repro_verify_quarantines_total", source=source
            ).inc(now_s=self._now(now_s))
        if self._trace is not None:
            self._span(
                "quarantine",
                "execute",
                now_s,
                now_s,
                EXECUTE_SPAN_ID,
                source=source,
                action=action,
            )

    def round_planned(
        self,
        now_s: float,
        round_no: int,
        optimizer: str,
        sources: list[str],
        masked: list[str],
        estimated_cost: float,
    ) -> None:
        self._emit(
            now_s,
            "replan",
            round=round_no,
            optimizer=optimizer,
            sources=sources,
            masked=masked,
            estimated_cost=estimated_cost,
        )
        if self.metrics is not None and round_no > 0:
            self.metrics.counter("repro_replan_rounds_total").inc(
                now_s=self._now(now_s)
            )

    # ------------------------------------------------------------------
    # Serving tier (repro.serve)

    def _serve(
        self,
        now_s: float,
        phase: str,
        query: int,
        tenant: str,
        queue_depth: int,
        in_flight: int,
        detail: str = "",
        latency: float = 0.0,
    ) -> None:
        self._emit(
            now_s,
            "serve",
            phase=phase,
            query=query,
            tenant=tenant,
            queue_depth=queue_depth,
            in_flight=in_flight,
            detail=detail,
            latency=latency,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.gauge("repro_serve_queue_depth").set(
                queue_depth, now_s=stamp
            )
            self.metrics.gauge("repro_serve_in_flight").set(
                in_flight, now_s=stamp
            )

    def query_admitted(
        self, now_s: float, query: int, tenant: str,
        queue_depth: int, in_flight: int,
    ) -> None:
        self._serve(now_s, "admitted", query, tenant, queue_depth, in_flight)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_admitted_total", tenant=tenant
            ).inc(now_s=self._now(now_s))

    def query_rejected(
        self, now_s: float, query: int, tenant: str, reason: str,
        queue_depth: int, in_flight: int,
    ) -> None:
        self._serve(
            now_s, "rejected", query, tenant, queue_depth, in_flight,
            detail=reason,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_rejected_total", tenant=tenant, reason=reason
            ).inc(now_s=self._now(now_s))

    def query_dispatched(
        self, now_s: float, query: int, tenant: str,
        queue_depth: int, in_flight: int,
    ) -> None:
        self._serve(now_s, "dispatched", query, tenant, queue_depth, in_flight)

    def query_completed(
        self, now_s: float, query: int, tenant: str,
        queue_depth: int, in_flight: int,
        latency_s: float, error: str = "",
        partial: bool = False,
    ) -> None:
        self._serve(
            now_s,
            "failed" if error else "completed",
            query, tenant, queue_depth, in_flight,
            detail=error, latency=latency_s,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.counter(
                "repro_serve_completed_total",
                tenant=tenant,
                outcome="error" if error else "ok",
            ).inc(now_s=stamp)
            if partial and not error:
                # Completeness SLOs read this next to the ok counter.
                self.metrics.counter(
                    "repro_serve_partial_total", tenant=tenant
                ).inc(now_s=stamp)
            self.metrics.histogram(
                "repro_serve_latency_s",
                buckets=DURATION_BUCKETS_S,
                tenant=tenant,
            ).observe(latency_s, now_s=stamp)

    # ------------------------------------------------------------------
    # Causal tracing (repro.obs.spans)

    def query_planned(
        self,
        now_s: float,
        query: int,
        tenant: str,
        trace_id: str,
        cache: str,
        strategy: str,
        subsets: int,
        elapsed_s: float,
        exhausted: bool,
    ) -> None:
        """The serving tier planned one admitted query."""
        self._emit(
            now_s,
            "plan",
            query=query,
            tenant=tenant,
            trace=trace_id,
            cache=cache,
            strategy=strategy,
            subsets=subsets,
            elapsed=elapsed_s,
            exhausted=exhausted,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.counter(
                "repro_serve_plans_total", cache=cache
            ).inc(now_s=stamp)
            self.metrics.histogram(
                "repro_plan_latency_s", buckets=DURATION_BUCKETS_S
            ).observe(elapsed_s, now_s=stamp)

    def query_trace(
        self,
        trace_id: str,
        query: int,
        tenant: str,
        status: str,
        submitted_s: float,
        planned_s: float,
        plan_elapsed_s: float,
        dispatched_s: float,
        finished_s: float,
        completed_s: float,
        cache: str = "off",
        strategy: str = "",
    ) -> None:
        """Materialize the serving-tier spans of one finished query.

        Called once, at completion, when every phase boundary is known;
        the engine spans recorded during execution already parent under
        the fixed ``EXECUTE_SPAN_ID``.  The six phase spans tile
        ``[submitted, completed]`` exactly: admission (instantaneous),
        queue wait, planning, pool acquisition, execution, and the
        final merge/bookkeeping gap.
        """
        if self.spans is None:
            return
        plan_end = min(planned_s + plan_elapsed_s, dispatched_s)
        add = self.spans.add

        def span(
            span_id: int,
            parent_id: int | None,
            name: str,
            category: str,
            start_s: float,
            end_s: float,
            **attributes,
        ) -> None:
            add(
                Span(
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_id=parent_id,
                    name=name,
                    category=category,
                    start_s=start_s,
                    end_s=end_s,
                    attributes=attributes,
                )
            )

        span(
            ROOT_SPAN_ID,
            None,
            "query",
            "serve",
            submitted_s,
            completed_s,
            query=query,
            tenant=tenant,
            status=status,
        )
        span(
            ADMISSION_SPAN_ID,
            ROOT_SPAN_ID,
            "admission",
            "serve",
            submitted_s,
            submitted_s,
        )
        span(
            QUEUE_SPAN_ID, ROOT_SPAN_ID, "queue", "serve",
            submitted_s, planned_s,
        )
        span(
            PLAN_SPAN_ID,
            ROOT_SPAN_ID,
            "plan",
            "plan",
            planned_s,
            plan_end,
            cache=cache,
            strategy=strategy,
        )
        span(
            POOL_SPAN_ID, ROOT_SPAN_ID, "pool", "serve",
            plan_end, dispatched_s,
        )
        span(
            EXECUTE_SPAN_ID,
            ROOT_SPAN_ID,
            "execute",
            "execute",
            dispatched_s,
            finished_s,
        )
        span(
            MERGE_SPAN_ID, ROOT_SPAN_ID, "merge", "serve",
            finished_s, completed_s,
        )

    def query_phases(
        self,
        now_s: float,
        query: int,
        tenant: str,
        trace_id: str,
        phases: dict[str, float],
        total_s: float,
    ) -> None:
        """Critical-path attribution of one completed query.

        ``phases`` is the analyzer's by-phase dict (see
        :data:`repro.obs.spans.PHASES`); the event schema folds the
        (always instantaneous) admission phase into the queue field.
        """
        self._emit(
            now_s,
            "phases",
            query=query,
            tenant=tenant,
            trace=trace_id,
            queue=phases.get("admission", 0.0) + phases.get("queue", 0.0),
            plan=phases.get("plan", 0.0),
            pool=phases.get("pool", 0.0),
            exec_wait=phases.get("exec.wait", 0.0),
            exec_wire=phases.get("exec.wire", 0.0),
            exec_backoff=phases.get("exec.backoff", 0.0),
            merge=phases.get("merge", 0.0),
            total=total_s,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            for phase, seconds in sorted(phases.items()):
                self.metrics.histogram(
                    "repro_serve_phase_latency_s",
                    buckets=DURATION_BUCKETS_S,
                    phase=phase,
                ).observe(seconds, now_s=stamp)

    def query_shed(
        self,
        now_s: float,
        query: int,
        tenant: str,
        reason: str,
        predicted_s: float,
        deadline_s: float,
    ) -> None:
        """Latency-aware shedding refused a query at admission."""
        self._emit(
            now_s,
            "shed",
            query=query,
            tenant=tenant,
            reason=reason,
            predicted=predicted_s,
            deadline=deadline_s,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_deadline_shed_total", tenant=tenant, reason=reason
            ).inc(now_s=self._now(now_s))

    def deadline_expired(
        self,
        now_s: float,
        query: int,
        tenant: str,
        stage: str,
        budget_s: float,
        overrun_s: float,
    ) -> None:
        """A query's deadline budget ran out in queue or mid-execution."""
        self._emit(
            now_s,
            "deadline",
            query=query,
            tenant=tenant,
            stage=stage,
            budget=budget_s,
            overrun=max(0.0, overrun_s),
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_deadline_expired_total",
                tenant=tenant,
                stage=stage,
            ).inc(now_s=self._now(now_s))

    def deadline_outcome(
        self, now_s: float, tenant: str, missed: bool
    ) -> None:
        """Deadline met/missed tally for one completed query."""
        if self.metrics is not None:
            name = (
                "repro_serve_deadline_missed_total"
                if missed
                else "repro_serve_deadline_met_total"
            )
            self.metrics.counter(name, tenant=tenant).inc(
                now_s=self._now(now_s)
            )

    def op_finished(self, now_s: float, span: "OpSpan") -> None:
        op = span.operation
        condition = getattr(op, "condition", None)
        self._emit(
            now_s,
            "op",
            round=self.round,
            step=span.step,
            op=op.kind.value,
            target=op.target,
            source=span.source,
            remote=op.remote,
            condition="" if condition is None else condition.to_sql(),
            queued=span.queued_s,
            started=span.started_s,
            finished=span.finished_s,
            status=span.status.value,
            output=span.output_size,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.counter(
                "repro_ops_total", status=span.status.value
            ).inc(now_s=stamp)
            if op.remote:
                self.metrics.histogram(
                    "repro_op_queue_wait_s", buckets=DURATION_BUCKETS_S
                ).observe(span.queue_wait_s, now_s=stamp)
        if self._trace is not None:
            # Uses the id pre-allocated when the op's first attempt (or
            # sendset/retry) referenced this step, so children emitted
            # earlier already parent correctly.
            self._span(
                "op",
                "execute",
                span.queued_s,
                span.finished_s,
                EXECUTE_SPAN_ID,
                span_id=self._trace.op_span_id((self.round, span.step)),
                step=span.step,
                op=op.kind.value,
                source=span.source,
                remote=op.remote,
                started=self.clock_offset_s + span.started_s,
                status=span.status.value,
                output=span.output_size,
            )
