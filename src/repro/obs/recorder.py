"""The instrumentation hub the execution layers report into.

A :class:`Recorder` owns (optionally) a metrics registry and an event
log and exposes one domain-level method per observable incident; each
call updates both sinks consistently, so engines never touch metric
names or event schemas directly.  Everything is keyed to the virtual
clock passed by the caller.

A recorder is shared across re-plan rounds: the resilient executor bumps
``round`` and ``clock_offset_s`` between rounds, so event timestamps
stay monotone across a whole resilient run even though each engine round
restarts its clock at zero.

With ``Recorder()`` (no sinks requested) both a metrics registry and an
event log are created; pass ``metrics=None`` / ``events=None`` through
the keyword-only constructor arguments to drop one side.  The execution
layers accept ``recorder=None`` (their default) and skip all
instrumentation, which keeps the zero-config runtime byte-identical to
the uninstrumented one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import EventLog
from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    SIZE_BUCKETS,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.trace import AttemptSpan, OpSpan


_UNSET = object()


class Recorder:
    """Collects events and metrics from one mediator's executions."""

    def __init__(
        self,
        metrics: MetricsRegistry | None | object = _UNSET,
        events: EventLog | None | object = _UNSET,
    ):
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics is _UNSET else metrics  # type: ignore[assignment]
        )
        self.events: EventLog | None = (
            EventLog() if events is _UNSET else events  # type: ignore[assignment]
        )
        #: Current re-plan round (0 = initial plan), set by the caller.
        self.round = 0
        #: Added to every timestamp — keeps event time monotone across
        #: re-plan rounds whose engine clocks each restart at zero.
        self.clock_offset_s = 0.0

    # ------------------------------------------------------------------
    # Low-level sinks

    def _emit(self, now_s: float, event_type: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(
                self.clock_offset_s + now_s, event_type, **fields
            )

    def _now(self, now_s: float) -> float:
        return self.clock_offset_s + now_s

    # ------------------------------------------------------------------
    # Run lifecycle

    def run_started(
        self, now_s: float, backend: str, plan, result_register: str
    ) -> None:
        self._emit(
            now_s,
            "run_start",
            backend=backend,
            round=self.round,
            plan_ops=len(plan.operations),
            remote_ops=plan.remote_op_count,
            result=result_register,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_runs_total", backend=backend
            ).inc(now_s=self._now(now_s))

    def run_finished(
        self,
        now_s: float,
        backend: str,
        makespan_s: float,
        retries: int,
        degraded: int,
        recovered: int,
        hedges: int,
        cost: float,
        items: int,
    ) -> None:
        self._emit(
            now_s,
            "run_end",
            backend=backend,
            round=self.round,
            makespan=makespan_s,
            retries=retries,
            degraded=degraded,
            recovered=recovered,
            hedges=hedges,
            cost=cost,
            items=items,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.gauge("repro_makespan_s").set(
                self.clock_offset_s + makespan_s, now_s=stamp
            )
            self.metrics.counter("repro_answer_items_total").inc(
                items, now_s=stamp
            )

    # ------------------------------------------------------------------
    # Wire attempts

    def sendset_shipped(
        self, now_s: float, step: int, source: str, condition: str, size: int
    ) -> None:
        self._emit(
            now_s,
            "sendset",
            round=self.round,
            step=step,
            source=source,
            condition=condition,
            size=size,
        )
        if self.metrics is not None:
            self.metrics.histogram(
                "repro_sendset_size", buckets=SIZE_BUCKETS
            ).observe(size, now_s=self._now(now_s))

    def attempt_finished(
        self,
        now_s: float,
        step: int,
        op_kind: str,
        planned: str,
        condition: str,
        span: "AttemptSpan",
    ) -> None:
        source = span.source or planned
        self._emit(
            now_s,
            "attempt",
            round=self.round,
            step=step,
            op=op_kind,
            planned=planned,
            source=source,
            condition=condition,
            attempt=span.attempt,
            start=span.start_s,
            end=span.end_s,
            fate=span.fate.value,
            hedge=span.hedge,
            cost=span.cost,
            items_sent=span.items_sent,
            items_received=span.items_received,
            rows_loaded=span.rows_loaded,
            messages=span.messages,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.counter(
                "repro_attempts_total", source=source, fate=span.fate.value
            ).inc(now_s=stamp)
            self.metrics.counter(
                "repro_wire_busy_seconds_total", source=source
            ).inc(span.duration_s, now_s=stamp)
            self.metrics.counter(
                "repro_op_cost_total", source=source
            ).inc(span.cost, now_s=stamp)
            self.metrics.counter(
                "repro_op_items_sent_total", source=source
            ).inc(span.items_sent, now_s=stamp)
            self.metrics.counter(
                "repro_op_items_received_total", source=source
            ).inc(span.items_received, now_s=stamp)
            if span.rows_loaded:
                self.metrics.counter(
                    "repro_op_rows_loaded_total", source=source
                ).inc(span.rows_loaded, now_s=stamp)
            self.metrics.histogram(
                "repro_attempt_duration_s", buckets=DURATION_BUCKETS_S
            ).observe(span.duration_s, now_s=stamp)

    def retry_scheduled(
        self, now_s: float, step: int, source: str, retries: int, at_s: float
    ) -> None:
        self._emit(
            now_s,
            "retry",
            round=self.round,
            step=step,
            source=source,
            retries=retries,
            at=at_s,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_retries_total", source=source
            ).inc(now_s=self._now(now_s))

    def hedge_launched(
        self, now_s: float, step: int, primary: str, target: str, trigger: str
    ) -> None:
        self._emit(
            now_s,
            "hedge",
            round=self.round,
            step=step,
            primary=primary,
            target=target,
            trigger=trigger,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_hedges_total", target=target, trigger=trigger
            ).inc(now_s=self._now(now_s))

    # ------------------------------------------------------------------
    # Health / planning

    def breaker_transition(
        self, now_s: float, source: str, old_state: str, new_state: str
    ) -> None:
        self._emit(
            now_s,
            "breaker",
            source=source,
            **{"from": old_state, "to": new_state},
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_breaker_transitions_total", source=source, to=new_state
            ).inc(now_s=self._now(now_s))

    def answer_verified(self, now_s, step, report, score) -> None:
        """One answer passed through the verifier (``report`` is a
        :class:`~repro.runtime.verify.AnswerReport`).

        Metrics count every verified answer; a ``quality`` event is
        emitted only when the answer had detectable issues, so clean
        runs do not bloat the log.
        """
        if self.metrics is not None:
            outcome = "clean" if report.clean else "tainted"
            self.metrics.counter(
                "repro_verify_answers_total",
                source=report.source,
                outcome=outcome,
            ).inc(now_s=self._now(now_s))
            for reason, count in (
                ("corrupt", report.corrupt),
                ("duplicate", report.duplicates),
                ("conflict", report.conflicts),
            ):
                if count:
                    self.metrics.counter(
                        "repro_verify_values_dropped_total",
                        source=report.source,
                        reason=reason,
                    ).inc(count, now_s=self._now(now_s))
            self.metrics.gauge(
                "repro_verify_quality_score", source=report.source
            ).set(score, now_s=self._now(now_s))
        if not report.clean:
            self._emit(
                now_s,
                "quality",
                step=step,
                source=report.source,
                delivered=report.delivered,
                kept=report.kept,
                corrupt=report.corrupt,
                duplicates=report.duplicates,
                conflicts=report.conflicts,
                score=score,
            )

    def quarantine_changed(
        self, now_s, source: str, action: str, score: float, answers: int
    ) -> None:
        """A source entered or left data-quality quarantine."""
        self._emit(
            now_s,
            "quarantine",
            source=source,
            action=action,
            score=score,
            answers=answers,
        )
        if self.metrics is not None and action == "enter":
            self.metrics.counter(
                "repro_verify_quarantines_total", source=source
            ).inc(now_s=self._now(now_s))

    def round_planned(
        self,
        now_s: float,
        round_no: int,
        optimizer: str,
        sources: list[str],
        masked: list[str],
        estimated_cost: float,
    ) -> None:
        self._emit(
            now_s,
            "replan",
            round=round_no,
            optimizer=optimizer,
            sources=sources,
            masked=masked,
            estimated_cost=estimated_cost,
        )
        if self.metrics is not None and round_no > 0:
            self.metrics.counter("repro_replan_rounds_total").inc(
                now_s=self._now(now_s)
            )

    # ------------------------------------------------------------------
    # Serving tier (repro.serve)

    def _serve(
        self,
        now_s: float,
        phase: str,
        query: int,
        tenant: str,
        queue_depth: int,
        in_flight: int,
        detail: str = "",
        latency: float = 0.0,
    ) -> None:
        self._emit(
            now_s,
            "serve",
            phase=phase,
            query=query,
            tenant=tenant,
            queue_depth=queue_depth,
            in_flight=in_flight,
            detail=detail,
            latency=latency,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.gauge("repro_serve_queue_depth").set(
                queue_depth, now_s=stamp
            )
            self.metrics.gauge("repro_serve_in_flight").set(
                in_flight, now_s=stamp
            )

    def query_admitted(
        self, now_s: float, query: int, tenant: str,
        queue_depth: int, in_flight: int,
    ) -> None:
        self._serve(now_s, "admitted", query, tenant, queue_depth, in_flight)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_admitted_total", tenant=tenant
            ).inc(now_s=self._now(now_s))

    def query_rejected(
        self, now_s: float, query: int, tenant: str, reason: str,
        queue_depth: int, in_flight: int,
    ) -> None:
        self._serve(
            now_s, "rejected", query, tenant, queue_depth, in_flight,
            detail=reason,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_rejected_total", tenant=tenant, reason=reason
            ).inc(now_s=self._now(now_s))

    def query_dispatched(
        self, now_s: float, query: int, tenant: str,
        queue_depth: int, in_flight: int,
    ) -> None:
        self._serve(now_s, "dispatched", query, tenant, queue_depth, in_flight)

    def query_completed(
        self, now_s: float, query: int, tenant: str,
        queue_depth: int, in_flight: int,
        latency_s: float, error: str = "",
    ) -> None:
        self._serve(
            now_s,
            "failed" if error else "completed",
            query, tenant, queue_depth, in_flight,
            detail=error, latency=latency_s,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.counter(
                "repro_serve_completed_total",
                tenant=tenant,
                outcome="error" if error else "ok",
            ).inc(now_s=stamp)
            self.metrics.histogram(
                "repro_serve_latency_s",
                buckets=DURATION_BUCKETS_S,
                tenant=tenant,
            ).observe(latency_s, now_s=stamp)

    def query_shed(
        self,
        now_s: float,
        query: int,
        tenant: str,
        reason: str,
        predicted_s: float,
        deadline_s: float,
    ) -> None:
        """Latency-aware shedding refused a query at admission."""
        self._emit(
            now_s,
            "shed",
            query=query,
            tenant=tenant,
            reason=reason,
            predicted=predicted_s,
            deadline=deadline_s,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_deadline_shed_total", tenant=tenant, reason=reason
            ).inc(now_s=self._now(now_s))

    def deadline_expired(
        self,
        now_s: float,
        query: int,
        tenant: str,
        stage: str,
        budget_s: float,
        overrun_s: float,
    ) -> None:
        """A query's deadline budget ran out in queue or mid-execution."""
        self._emit(
            now_s,
            "deadline",
            query=query,
            tenant=tenant,
            stage=stage,
            budget=budget_s,
            overrun=max(0.0, overrun_s),
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_deadline_expired_total",
                tenant=tenant,
                stage=stage,
            ).inc(now_s=self._now(now_s))

    def deadline_outcome(
        self, now_s: float, tenant: str, missed: bool
    ) -> None:
        """Deadline met/missed tally for one completed query."""
        if self.metrics is not None:
            name = (
                "repro_serve_deadline_missed_total"
                if missed
                else "repro_serve_deadline_met_total"
            )
            self.metrics.counter(name, tenant=tenant).inc(
                now_s=self._now(now_s)
            )

    def op_finished(self, now_s: float, span: "OpSpan") -> None:
        op = span.operation
        condition = getattr(op, "condition", None)
        self._emit(
            now_s,
            "op",
            round=self.round,
            step=span.step,
            op=op.kind.value,
            target=op.target,
            source=span.source,
            remote=op.remote,
            condition="" if condition is None else condition.to_sql(),
            queued=span.queued_s,
            started=span.started_s,
            finished=span.finished_s,
            status=span.status.value,
            output=span.output_size,
        )
        if self.metrics is not None:
            stamp = self._now(now_s)
            self.metrics.counter(
                "repro_ops_total", status=span.status.value
            ).inc(now_s=stamp)
            if op.remote:
                self.metrics.histogram(
                    "repro_op_queue_wait_s", buckets=DURATION_BUCKETS_S
                ).observe(span.queue_wait_s, now_s=stamp)
