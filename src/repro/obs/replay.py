"""Rebuild a :class:`~repro.runtime.trace.RuntimeTrace` from events.

The ASCII timeline used to be producible only by the live engine; with
the structured event log it becomes a *renderer*: ``op`` and ``attempt``
records carry everything :meth:`RuntimeTrace.timeline`,
:meth:`utilization_report`, and :meth:`summary` consume, so a trace
rebuilt from a persisted JSONL file renders byte-for-byte what the
original run printed.

Replayed spans wrap a lightweight stand-in for the plan operation (the
trace only reads ``kind.value``, ``target``, ``remote``, and ``source``
from it), so replay needs no access to the original plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ObservabilityError
from repro.obs.events import Event, EventLog
from repro.runtime.faults import AttemptFate
from repro.runtime.trace import AttemptSpan, OpSpan, OpStatus, RuntimeTrace


@dataclass(frozen=True)
class _ReplayKind:
    value: str


@dataclass(frozen=True)
class _ReplayOperation:
    """Just enough of a plan operation for trace rendering."""

    kind: _ReplayKind
    target: str
    source: str
    remote: bool
    condition_sql: str

    def render(self, labels=None) -> str:
        text = f"{self.kind.value} -> {self.target}"
        if self.source:
            text += f" @ {self.source}"
        if self.condition_sql:
            text += f" [{self.condition_sql}]"
        return text


def trace_from_events(
    events: EventLog | Iterable[Event], round_no: int | None = None
) -> RuntimeTrace:
    """Reconstruct one round's :class:`RuntimeTrace` from an event log.

    Args:
        events: An :class:`EventLog` (or any iterable of events) holding
            at least the ``op`` records of the run; ``attempt`` records
            fill in the per-attempt detail and ``run_end`` the makespan.
        round_no: Which re-plan round to reconstruct.  ``None`` (the
            default) selects the highest round present — the one whose
            plan actually completed.

    Raises:
        ObservabilityError: when the log has no ``op`` events for the
            selected round.
    """
    all_events = list(events)
    op_events = [e for e in all_events if e.type == "op"]
    if round_no is None:
        round_no = max((e["round"] for e in op_events), default=0)
    op_events = [e for e in op_events if e["round"] == round_no]
    if not op_events:
        raise ObservabilityError(
            f"no 'op' events for round {round_no} — was the run recorded?"
        )

    attempts_by_step: dict[int, list[AttemptSpan]] = {}
    for event in all_events:
        if event.type != "attempt" or event["round"] != round_no:
            continue
        attempts_by_step.setdefault(event["step"], []).append(
            AttemptSpan(
                attempt=event["attempt"],
                start_s=event["start"],
                end_s=event["end"],
                fate=AttemptFate(event["fate"]),
                cost=event["cost"],
                items_sent=event["items_sent"],
                items_received=event["items_received"],
                rows_loaded=event["rows_loaded"],
                messages=event["messages"],
                source=event["source"],
                hedge=event["hedge"],
            )
        )

    spans = []
    for event in sorted(op_events, key=lambda e: e["step"]):
        operation = _ReplayOperation(
            kind=_ReplayKind(event["op"]),
            target=event["target"],
            source=event["source"],
            remote=event["remote"],
            condition_sql=event["condition"],
        )
        spans.append(
            OpSpan(
                step=event["step"],
                operation=operation,  # type: ignore[arg-type]
                queued_s=event["queued"],
                started_s=event["started"],
                finished_s=event["finished"],
                attempts=tuple(attempts_by_step.get(event["step"], ())),
                status=OpStatus(event["status"]),
                output_size=event["output"],
            )
        )

    makespan = max((e["finished"] for e in op_events), default=0.0)
    for event in all_events:
        if event.type == "run_end" and event["round"] == round_no:
            makespan = event["makespan"]
    return RuntimeTrace(spans=tuple(spans), makespan_s=makespan)
