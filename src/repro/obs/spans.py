"""Causal span trees: per-query traces, Chrome export, critical paths.

Every query served by :class:`~repro.serve.service.MediatorService` (and
every single-shot :meth:`~repro.mediator.session.Mediator.answer`) gets a
deterministic ``trace_id`` — :func:`derive_trace_id` mixes the workload
seed with the submission sequence number, so a deterministic-mode run
replays its whole span forest byte-identically — and a hierarchical
span tree recorded through the :class:`~repro.obs.recorder.Recorder`:

* serving-tier phases: ``admission``, ``queue``, ``plan`` (plan-cache
  hit/miss and search strategy as attributes), ``pool`` acquisition,
  ``execute``, and the final ``merge``;
* engine children under ``execute``: one ``op`` span per plan operation
  (queued → finished) with ``attempt`` / ``sendset`` / ``backoff`` /
  ``hedge`` / ``verify`` children, plus ``breaker`` and ``quarantine``
  transition markers.

The :class:`SpanLog` is the storage: thread-safe, append-only, exported
either as Chrome trace-event JSON (:meth:`SpanLog.to_chrome_json`,
loadable in Perfetto — each query is one track) or walked by the
critical-path analyzer (:func:`analyze_trace`), which tiles a query's
end-to-end latency into :class:`PhaseSlice` segments whose durations sum
*exactly* to the measured latency — the property CI asserts.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ObservabilityError

#: Serving-tier span ids are fixed per trace, so the serving layer can
#: parent engine spans under ``execute`` before the serve spans are
#: materialized (they are only emitted once the query completes and all
#: phase boundaries are known).
ROOT_SPAN_ID = 1
ADMISSION_SPAN_ID = 2
QUEUE_SPAN_ID = 3
PLAN_SPAN_ID = 4
POOL_SPAN_ID = 5
EXECUTE_SPAN_ID = 6
MERGE_SPAN_ID = 7
#: First id handed to dynamically allocated engine spans.
FIRST_ENGINE_SPAN_ID = 8

#: Phase vocabulary of the critical-path analyzer, in timeline order.
PHASES = (
    "admission",
    "queue",
    "plan",
    "pool",
    "exec.wait",
    "exec.wire",
    "exec.backoff",
    "merge",
)

_TRACE_MIX_A = 0x9E3779B97F4A7C15
_TRACE_MIX_B = 0xBF58476D1CE4E5B9
_TRACE_MIX_C = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def derive_trace_id(workload_seed: int, seq: int) -> str:
    """Deterministic 64-bit trace id from workload seed + sequence.

    A splitmix-style integer hash: stable across runs and platforms,
    collision-averse across both arguments, and cheap.  Same seed and
    sequence number always name the same trace, which is what makes
    deterministic-mode trace replay byte-identical.
    """
    value = (workload_seed * _TRACE_MIX_A + seq * _TRACE_MIX_B + _TRACE_MIX_C) & _MASK64
    value = ((value ^ (value >> 30)) * _TRACE_MIX_B) & _MASK64
    value = ((value ^ (value >> 27)) * _TRACE_MIX_C) & _MASK64
    value ^= value >> 31
    return f"{value:016x}"


@dataclass(frozen=True)
class Span:
    """One node of a query's span tree.

    Times are service-timeline seconds (virtual clock in deterministic
    mode, seconds since service start under threads).  ``parent_id`` is
    ``None`` only for the root ``query`` span.
    """

    trace_id: str
    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_s: float
    end_s: float
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_s < self.start_s - 1e-9:
            raise ObservabilityError(
                f"span {self.name!r} ends ({self.end_s}) before it "
                f"starts ({self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


class SpanLog:
    """Thread-safe append-only store for finished spans.

    One log is shared by every recorder of a service (deterministic
    mode has a single recorder; thread mode gives each worker its own
    recorder but they all append here), so the lock is load-bearing.
    Append order is deterministic under the virtual clock; the Chrome
    exporter additionally sorts within each trace so the bytes do not
    depend on insertion interleaving in thread mode.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        #: trace_id -> first-seen index, for stable track numbering.
        self._trace_order: dict[str, int] = {}

    def add(self, span: Span) -> Span:
        with self._lock:
            if span.trace_id not in self._trace_order:
                self._trace_order[span.trace_id] = len(self._trace_order)
            self._spans.append(span)
        return span

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        with self._lock:
            return iter(list(self._spans))

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def trace_ids(self) -> list[str]:
        """Trace ids in first-seen order."""
        with self._lock:
            return sorted(self._trace_order, key=self._trace_order.__getitem__)

    def for_trace(self, trace_id: str) -> list[Span]:
        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]

    # ------------------------------------------------------------------
    # Chrome trace-event export (Perfetto-loadable)

    def to_chrome_trace(self) -> dict[str, Any]:
        """The span forest as a Chrome trace-event JSON object.

        One ``pid`` for the whole service; one ``tid`` (track) per
        trace in first-submitted order, named by its trace id; every
        span a complete (``"ph": "X"``) event with microsecond
        timestamps.  Span identity and parentage ride in ``args`` so
        the tree survives the format round trip.
        """
        events: list[dict[str, Any]] = []
        with self._lock:
            order = dict(self._trace_order)
            spans = list(self._spans)
        for trace_id in sorted(order, key=order.__getitem__):
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": order[trace_id] + 1,
                    "name": "thread_name",
                    "args": {"name": f"trace {trace_id}"},
                }
            )
        for span in sorted(
            spans,
            key=lambda s: (order[s.trace_id], s.start_s, s.span_id),
        ):
            args: dict[str, Any] = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
            }
            for key in sorted(span.attributes):
                args[key] = span.attributes[key]
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": order[span.trace_id] + 1,
                    "name": span.name,
                    "cat": span.category,
                    "ts": round(span.start_s * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "args": args,
                }
            )
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def to_chrome_json(self) -> str:
        """Deterministic bytes: same seed, same trace, same string."""
        return json.dumps(
            self.to_chrome_trace(), sort_keys=True, separators=(",", ":")
        )

    def write_chrome_trace(self, path: str) -> str:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_chrome_json() + "\n")
        return path


#: Required keys (and Python types) of an exported complete-span event —
#: the span schema CI validates exported traces against.
CHROME_EVENT_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "ph": str,
    "pid": int,
    "tid": int,
    "name": str,
    "cat": str,
    "ts": (int, float),
    "dur": (int, float),
    "args": dict,
}


def validate_chrome_trace(data: Mapping[str, Any]) -> int:
    """Validate an exported Chrome trace against the span schema.

    Checks the envelope, every complete event's fields and types, span
    identity in ``args``, and that every non-root span's parent exists
    within its trace.  Returns the number of spans validated; raises
    :class:`~repro.errors.ObservabilityError` on the first violation.
    """
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ObservabilityError("trace JSON must carry a traceEvents list")
    by_trace: dict[str, set[int]] = {}
    complete: list[Mapping[str, Any]] = []
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            raise ObservabilityError(f"unexpected event phase {phase!r}")
        for key, expected in CHROME_EVENT_SCHEMA.items():
            if key not in event:
                raise ObservabilityError(f"span event missing {key!r}")
            if not isinstance(event[key], expected) or isinstance(
                event[key], bool
            ):
                raise ObservabilityError(
                    f"span event field {key!r} has wrong type "
                    f"{type(event[key]).__name__}"
                )
        args = event["args"]
        trace_id = args.get("trace_id")
        span_id = args.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, int):
            raise ObservabilityError(
                "span args must carry trace_id (str) and span_id (int)"
            )
        if event["dur"] < 0:
            raise ObservabilityError(f"span {span_id} has negative duration")
        by_trace.setdefault(trace_id, set()).add(span_id)
        complete.append(event)
    for event in complete:
        args = event["args"]
        parent = args.get("parent_id")
        if parent is None:
            continue
        if parent not in by_trace[args["trace_id"]]:
            raise ObservabilityError(
                f"span {args['span_id']} of trace {args['trace_id']} "
                f"references missing parent {parent}"
            )
    return len(complete)


# ----------------------------------------------------------------------
# Critical-path analysis


@dataclass(frozen=True)
class PhaseSlice:
    """One segment of a query's blocking chain."""

    phase: str
    start_s: float
    end_s: float
    detail: str = ""

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


@dataclass(frozen=True)
class CriticalPath:
    """A query's end-to-end latency, tiled into blocking segments.

    The slices partition ``[submit, complete]`` with no gaps and no
    overlap, so ``sum(slice durations) == total_s`` exactly (up to
    float associativity) — the invariant the acceptance tests check.
    """

    trace_id: str
    slices: tuple[PhaseSlice, ...]

    @property
    def total_s(self) -> float:
        if not self.slices:
            return 0.0
        return self.slices[-1].end_s - self.slices[0].start_s

    def by_phase(self) -> dict[str, float]:
        """Seconds attributed to each phase (every phase listed)."""
        totals = {phase: 0.0 for phase in PHASES}
        for piece in self.slices:
            totals[piece.phase] = totals.get(piece.phase, 0.0) + piece.duration_s
        return totals

    def dominant_phase(self) -> str:
        totals = self.by_phase()
        return max(PHASES, key=lambda phase: (totals.get(phase, 0.0),))


_EPS = 1e-9


def _chain_ops(op_spans: list[Span]) -> list[Span]:
    """The blocking chain through the engine's op spans, latest first.

    An op span runs ``[queued, finished]`` with ``started`` in its
    attributes.  Under the discrete-event clock an op becomes ready at
    the instant its last input finished, so the predecessor of a chain
    op is exactly the op whose ``finished`` equals its ``queued``; ties
    resolve deterministically by (end, step).
    """
    if not op_spans:
        return []
    ordered = sorted(
        op_spans,
        key=lambda s: (s.end_s, s.attributes.get("step", 0)),
    )
    chain = [ordered[-1]]
    # Zero-duration ops sharing an instant would chain to each other
    # forever; a visited set makes the walk terminate unconditionally.
    seen = {id(ordered[-1])}
    while True:
        current = chain[-1]
        candidates = [
            span
            for span in ordered
            if id(span) not in seen
            and abs(span.end_s - current.start_s) <= _EPS
            and span.start_s <= current.start_s + _EPS
        ]
        if not candidates:
            break
        chain.append(candidates[-1])
        seen.add(id(candidates[-1]))
    return chain


def _merge_intervals(
    intervals: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1] + _EPS:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _op_slices(op: Span, children: list[Span]) -> list[PhaseSlice]:
    """Tile one chain op's ``[queued, finished]`` window into phases.

    ``[queued, started]`` is engine-side source wait; inside
    ``[started, finished]`` time covered by an attempt is wire time,
    time covered by a scheduled backoff is backoff, and anything else
    (e.g. parked on a confirmation) is wait.  Local (merge) ops are
    instantaneous and classify as ``merge``.
    """
    detail = str(op.attributes.get("source", "") or op.name)
    started = float(op.attributes.get("started", op.start_s))
    if not op.attributes.get("remote", True):
        return [PhaseSlice("merge", op.start_s, op.end_s, detail=op.name)]
    slices: list[PhaseSlice] = []
    if started > op.start_s + _EPS:
        slices.append(
            PhaseSlice("exec.wait", op.start_s, started, detail=detail)
        )
    wire = _merge_intervals(
        [
            (max(started, child.start_s), min(op.end_s, child.end_s))
            for child in children
            if child.name == "attempt" and child.end_s > started
        ]
    )
    backoff = _merge_intervals(
        [
            (max(started, child.start_s), min(op.end_s, child.end_s))
            for child in children
            if child.name == "backoff" and child.end_s > started
        ]
    )
    cursor = started
    points = sorted(
        {started, op.end_s}
        | {t for pair in wire for t in pair}
        | {t for pair in backoff for t in pair}
    )
    for left, right in zip(points, points[1:]):
        if right <= cursor + _EPS or right > op.end_s + _EPS:
            continue
        mid = (left + right) / 2.0
        if any(s - _EPS <= mid <= e + _EPS for s, e in wire):
            phase = "exec.wire"
        elif any(s - _EPS <= mid <= e + _EPS for s, e in backoff):
            phase = "exec.backoff"
        else:
            phase = "exec.wait"
        if slices and slices[-1].phase == phase and slices[-1].detail == detail:
            slices[-1] = PhaseSlice(phase, slices[-1].start_s, right, detail)
        else:
            slices.append(PhaseSlice(phase, left, right, detail))
        cursor = right
    if cursor < op.end_s - _EPS:
        slices.append(PhaseSlice("exec.wait", cursor, op.end_s, detail=detail))
    return slices


def analyze_trace(spans: Iterable[Span]) -> CriticalPath | None:
    """Walk one trace's blocking chain into a :class:`CriticalPath`.

    Returns ``None`` when the trace has no root span (nothing to
    attribute).  The serving-tier spans tile ``[submit, dispatch]`` by
    construction; inside ``execute`` the chain of op spans is walked
    back from the last-finishing operation, each link split into
    wait/wire/backoff segments.  Any unattributed remainder becomes an
    ``exec.wait`` slice, so the tiling — and the sum — is exact even
    for traces with unusual shapes.
    """
    spans = list(spans)
    by_id = {span.span_id: span for span in spans}
    root = by_id.get(ROOT_SPAN_ID)
    if root is None or root.name != "query":
        return None
    slices: list[PhaseSlice] = []

    def serve_slice(span_id: int, phase: str) -> None:
        span = by_id.get(span_id)
        if span is not None and span.duration_s > _EPS:
            slices.append(PhaseSlice(phase, span.start_s, span.end_s))

    serve_slice(ADMISSION_SPAN_ID, "admission")
    serve_slice(QUEUE_SPAN_ID, "queue")
    serve_slice(PLAN_SPAN_ID, "plan")
    serve_slice(POOL_SPAN_ID, "pool")
    execute = by_id.get(EXECUTE_SPAN_ID)
    if execute is not None and execute.duration_s > _EPS:
        op_spans = [
            span
            for span in spans
            if span.category == "execute" and span.name == "op"
        ]
        children: dict[int, list[Span]] = {}
        for span in spans:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        exec_slices: list[PhaseSlice] = []
        for op in reversed(_chain_ops(op_spans)):
            exec_slices.extend(_op_slices(op, children.get(op.span_id, [])))
        # Tile gaps (chain not reaching the dispatch instant, or ops
        # finishing before the engine's final clock tick) as wait.
        tiled: list[PhaseSlice] = []
        cursor = execute.start_s
        for piece in exec_slices:
            if piece.start_s > cursor + _EPS:
                tiled.append(PhaseSlice("exec.wait", cursor, piece.start_s))
            clipped_start = max(piece.start_s, cursor)
            clipped_end = min(piece.end_s, execute.end_s)
            if clipped_end > clipped_start + _EPS or (
                piece.phase == "merge" and clipped_end >= clipped_start
            ):
                tiled.append(
                    PhaseSlice(
                        piece.phase, clipped_start, clipped_end, piece.detail
                    )
                )
                cursor = clipped_end
        if cursor < execute.end_s - _EPS:
            tiled.append(PhaseSlice("exec.wait", cursor, execute.end_s))
        slices.extend(tiled)
    serve_slice(MERGE_SPAN_ID, "merge")
    # Exact tiling of [submit, complete]: clamp boundaries so adjacent
    # slices always touch — rounding never creates gaps or overlaps.
    tiled: list[PhaseSlice] = []
    cursor = root.start_s
    for piece in slices:
        start = cursor
        end = max(start, min(piece.end_s, root.end_s))
        tiled.append(PhaseSlice(piece.phase, start, end, piece.detail))
        cursor = end
    if cursor < root.end_s - _EPS or not tiled:
        tiled.append(PhaseSlice("exec.wait", cursor, root.end_s))
    else:
        last = tiled[-1]
        tiled[-1] = PhaseSlice(last.phase, last.start_s, root.end_s, last.detail)
    return CriticalPath(trace_id=root.trace_id, slices=tuple(tiled))


def analyze_log(log: SpanLog) -> dict[str, CriticalPath]:
    """Critical paths for every trace in the log, in trace order."""
    spans_by_trace: dict[str, list[Span]] = {}
    for span in log.spans:
        spans_by_trace.setdefault(span.trace_id, []).append(span)
    out: dict[str, CriticalPath] = {}
    for trace_id in log.trace_ids():
        path = analyze_trace(spans_by_trace.get(trace_id, []))
        if path is not None:
            out[trace_id] = path
    return out


def top_contributors(
    paths: Iterable[CriticalPath], limit: int = 5
) -> list[tuple[str, float]]:
    """The heaviest (phase, detail) contributors across many queries.

    Aggregates blocked seconds by ``phase[@detail]`` label and returns
    the ``limit`` largest — the "where did the p99 go" table of the
    workload report.
    """
    totals: dict[str, float] = {}
    for path in paths:
        for piece in path.slices:
            label = piece.phase
            if piece.detail:
                label = f"{piece.phase}@{piece.detail}"
            totals[label] = totals.get(label, 0.0) + piece.duration_s
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return [(label, total) for label, total in ranked[:limit] if total > 0.0]
