"""Service-level objectives over the metrics registry.

An :class:`SLOMonitor` turns the serving tier's raw metrics into the
operator's view: *are we meeting our objectives, and how fast are we
burning the error budget?*  Two objective kinds:

* **latency** — "a fraction ``objective`` of completed queries answer
  within ``threshold_s``", evaluated from the ``repro_serve_latency_s``
  histograms via interpolated cumulative-bucket counts
  (:meth:`~repro.obs.metrics.Histogram.fraction_le`);
* **completeness** — "a fraction ``objective`` of completed queries
  return the full (non-partial, non-error) answer", evaluated from the
  ``repro_serve_completed_total`` / ``repro_serve_partial_total``
  counters.

Evaluation writes ``repro_slo_*`` gauges back into the registry
(compliance, burn rate, remaining error budget — all labeled by SLO
name) so the objectives export to Prometheus next to the raw series,
and renders a deterministic text report for ``workload --slo``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.metrics import Histogram, MetricsRegistry

#: Objective kinds the monitor evaluates.
SLO_KINDS = ("latency", "completeness")


@dataclass(frozen=True)
class SLOSpec:
    """One objective: a target fraction of good events.

    ``threshold_s`` is only meaningful for ``kind="latency"``.
    """

    name: str
    kind: str
    objective: float
    threshold_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ObservabilityError(
                f"unknown SLO kind {self.kind!r}; choose from {SLO_KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ObservabilityError(
                f"SLO objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == "latency" and not self.threshold_s > 0:
            raise ObservabilityError(
                f"latency SLO needs a positive threshold, "
                f"got {self.threshold_s}"
            )


@dataclass(frozen=True)
class SLOStatus:
    """One objective's standing over the evaluated window."""

    spec: SLOSpec
    good: float
    total: float

    @property
    def compliance(self) -> float:
        """Observed good fraction (1.0 when nothing happened yet)."""
        if self.total <= 0:
            return 1.0
        return self.good / self.total

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction: ``1 - objective``."""
        return 1.0 - self.spec.objective

    @property
    def burn_rate(self) -> float:
        """Observed bad fraction over the allowed bad fraction.

        1.0 means the budget is being spent exactly as provisioned;
        above 1.0 the budget runs out before the window does.
        """
        return (1.0 - self.compliance) / self.error_budget

    @property
    def budget_remaining(self) -> float:
        """Fraction of the error budget left (clamped at 0)."""
        return max(0.0, 1.0 - self.burn_rate)

    @property
    def met(self) -> bool:
        return self.compliance >= self.spec.objective - 1e-12

    def describe(self) -> str:
        target = (
            f"<= {self.spec.threshold_s:g}s"
            if self.spec.kind == "latency"
            else "full answers"
        )
        return (
            f"{self.spec.name}: {self.compliance * 100:.2f}% {target} "
            f"(objective {self.spec.objective * 100:g}%, "
            f"burn rate {self.burn_rate:.2f}x, "
            f"budget remaining {self.budget_remaining * 100:.0f}%) "
            f"[{'OK' if self.met else 'VIOLATED'}]"
        )


def parse_slo_spec(text: str) -> list[SLOSpec]:
    """Parse the CLI's ``--slo`` syntax into specs.

    Comma-separated objectives: ``latency:<threshold_s>:<objective>``
    or ``completeness:<objective>``, e.g.
    ``latency:1.0:0.95,completeness:0.99``.
    """
    specs: list[SLOSpec] = []
    for index, part in enumerate(filter(None, text.split(","))):
        pieces = part.strip().split(":")
        kind = pieces[0].strip()
        try:
            if kind == "latency" and len(pieces) == 3:
                threshold, objective = float(pieces[1]), float(pieces[2])
                specs.append(
                    SLOSpec(
                        name=f"latency_p{objective * 100:g}_{threshold:g}s",
                        kind="latency",
                        objective=objective,
                        threshold_s=threshold,
                    )
                )
                continue
            if kind == "completeness" and len(pieces) == 2:
                objective = float(pieces[1])
                specs.append(
                    SLOSpec(
                        name=f"completeness_{objective * 100:g}",
                        kind="completeness",
                        objective=objective,
                    )
                )
                continue
        except ValueError as exc:
            raise ObservabilityError(
                f"bad --slo component {part!r}: {exc}"
            ) from exc
        raise ObservabilityError(
            f"bad --slo component {part!r}; expected "
            "latency:<threshold_s>:<objective> or "
            "completeness:<objective>"
        )
    if not specs:
        raise ObservabilityError("--slo needs at least one objective")
    return specs


class SLOMonitor:
    """Evaluates objectives against a live metrics registry."""

    def __init__(self, specs: list[SLOSpec]):
        if not specs:
            raise ObservabilityError("SLOMonitor needs at least one SLOSpec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ObservabilityError(f"duplicate SLO names in {names}")
        self.specs = list(specs)

    # -- metric scraping ------------------------------------------------

    @staticmethod
    def _latency_counts(
        registry: MetricsRegistry, threshold_s: float
    ) -> tuple[float, float]:
        good = total = 0.0
        for metric in registry._sorted():
            if metric.name != "repro_serve_latency_s" or not isinstance(
                metric, Histogram
            ):
                continue
            good += metric.fraction_le(threshold_s) * metric.count
            total += metric.count
        return good, total

    @staticmethod
    def _completeness_counts(
        registry: MetricsRegistry,
    ) -> tuple[float, float]:
        ok = errors = partial = 0.0
        for metric in registry._sorted():
            labels = dict(metric.labels)
            if metric.name == "repro_serve_completed_total":
                if labels.get("outcome") == "ok":
                    ok += metric.value
                else:
                    errors += metric.value
            elif metric.name == "repro_serve_partial_total":
                partial += metric.value
        total = ok + errors
        return max(0.0, ok - partial), total

    # -- evaluation -----------------------------------------------------

    def evaluate(
        self, registry: MetricsRegistry, now_s: float | None = None
    ) -> list[SLOStatus]:
        """Score every objective and record ``repro_slo_*`` gauges."""
        statuses: list[SLOStatus] = []
        for spec in self.specs:
            if spec.kind == "latency":
                good, total = self._latency_counts(registry, spec.threshold_s)
            else:
                good, total = self._completeness_counts(registry)
            status = SLOStatus(spec=spec, good=good, total=total)
            statuses.append(status)
            registry.gauge("repro_slo_compliance", slo=spec.name).set(
                status.compliance, now_s=now_s
            )
            registry.gauge("repro_slo_burn_rate", slo=spec.name).set(
                status.burn_rate, now_s=now_s
            )
            registry.gauge("repro_slo_budget_remaining", slo=spec.name).set(
                status.budget_remaining, now_s=now_s
            )
        return statuses

    @staticmethod
    def render(statuses: list[SLOStatus]) -> str:
        lines = ["SLO report:"]
        for status in statuses:
            lines.append(f"  {status.describe()}")
        violated = [s for s in statuses if not s.met]
        lines.append(
            f"  {len(statuses) - len(violated)}/{len(statuses)} objectives met"
        )
        return "\n".join(lines)
