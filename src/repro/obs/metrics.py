"""Metrics registry: counters, gauges, histograms; JSON + Prometheus out.

All timestamps are *virtual-clock* seconds supplied by the caller (the
discrete-event runtime), never wall-clock, so exported snapshots are
deterministic and replayable: two runs with the same seed export the
same bytes.  Histograms use fixed bucket boundaries declared at first
registration — no adaptive resizing, so bucket counts diff cleanly
across runs.

Identity is ``(name, sorted labels)``, Prometheus-style::

    registry = MetricsRegistry()
    registry.counter("repro_attempts_total", source="R1", fate="ok").inc()
    registry.histogram("repro_attempt_duration_s").observe(0.4, now_s=1.5)
    print(registry.to_prometheus())
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ObservabilityError

#: Default histogram boundaries for virtual-time durations (seconds).
DURATION_BUCKETS_S: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default histogram boundaries for item-count distributions.
SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0,
)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format escaping for label values.

    The text format requires backslash, double-quote, and line-feed to
    be escaped inside quoted label values; anything else passes
    through.  Without this, a label value containing e.g. a SQL snippet
    with quotes produced unparseable exposition text.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(labels: LabelItems) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


class _Metric:
    """Shared identity + last-update bookkeeping."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        #: Virtual-clock time of the last update (None = never stamped).
        self.updated_s: float | None = None
        # Guards the value/bucket updates: one registry is shared by
        # every worker of a serving tier, so increments must not race.
        self._lock = threading.Lock()

    def _stamp(self, now_s: float | None) -> None:
        if now_s is not None:
            self.updated_s = now_s


class Counter(_Metric):
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0, now_s: float | None = None) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self.value += amount
            self._stamp(now_s)


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float, now_s: float | None = None) -> None:
        with self._lock:
            self.value = float(value)
            self._stamp(now_s)

    def inc(self, amount: float = 1.0, now_s: float | None = None) -> None:
        with self._lock:
            self.value += amount
            self._stamp(now_s)


class Histogram(_Metric):
    """Cumulative-bucket histogram over fixed boundaries."""

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelItems, buckets: Sequence[float]
    ):
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {self.name} buckets must be strictly "
                f"increasing and non-empty, got {buckets!r}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last bucket = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, now_s: float | None = None) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            self._stamp(now_s)

    def cumulative(self) -> list[int]:
        """Cumulative counts per boundary plus the +Inf total."""
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out

    def fraction_le(self, value: float) -> float:
        """Estimated fraction of observations ``<= value``.

        Linear interpolation inside the containing bucket (each
        bucket's lower edge is the previous boundary, 0.0 for the
        first), matching the assumptions of
        ``histogram_quantile``-style estimation.  Returns 0.0 for an
        empty histogram.
        """
        with self._lock:
            counts = list(self.counts)
            total = self.count
        if total == 0:
            return 0.0
        below = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                width = bound - lower
                inside = counts[i]
                fraction = 1.0 if width <= 0 else (value - lower) / width
                return (below + inside * min(1.0, max(0.0, fraction))) / total
            below += counts[i]
            lower = bound
        return 1.0  # beyond the last finite boundary

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the cumulative buckets.

        ``q`` is a fraction in [0, 1] (0.5 = p50, 0.99 = p99).  The
        estimate interpolates linearly within the bucket containing the
        target rank; ranks falling in the +Inf bucket clamp to the last
        finite boundary (the histogram cannot resolve beyond it).
        Deterministic: depends only on bucket counts.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0, 1], got {q}"
            )
        with self._lock:
            counts = list(self.counts)
            total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        below = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            inside = counts[i]
            if below + inside >= rank and inside > 0:
                fraction = (rank - below) / inside
                return lower + (bound - lower) * min(1.0, max(0.0, fraction))
            below += inside
            lower = bound
        return self.buckets[-1]

    def quantiles(
        self, qs: Sequence[float] = (0.50, 0.95, 0.99)
    ) -> tuple[float, ...]:
        """Interpolated p50/p95/p99 (by default) in one call."""
        return tuple(self.quantile(q) for q in qs)


class MetricsRegistry:
    """All metrics of one run, keyed by (name, labels).

    Example:
        >>> registry = MetricsRegistry()
        >>> registry.counter("demo_total", source="R1").inc(2, now_s=1.0)
        >>> registry.counter("demo_total", source="R1").value
        2.0
    """

    def __init__(self):
        self._metrics: dict[tuple[str, LabelItems], _Metric] = {}
        self._kinds: dict[str, str] = {}
        # Guards registration and the exporters' iteration; individual
        # metric updates take the metric's own lock instead, so hot
        # inc()/observe() paths never contend on the registry.
        self._lock = threading.RLock()

    def _get(
        self,
        name: str,
        labels: dict[str, str],
        factory: Callable[[str, LabelItems], _Metric],
        kind: str,
    ) -> _Metric:
        with self._lock:
            declared = self._kinds.get(name)
            if declared is not None and declared != kind:
                raise ObservabilityError(
                    f"metric {name!r} already registered as {declared}, "
                    f"requested {kind}"
                )
            key = (name, _label_key(labels))
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[1])
                self._metrics[key] = metric
                self._kinds[name] = kind
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, labels, Counter, "counter")  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, labels, Gauge, "gauge")  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DURATION_BUCKETS_S,
        **labels: str,
    ) -> Histogram:
        return self._get(
            name,
            labels,
            lambda n, key: Histogram(n, key, buckets),
            "histogram",
        )  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._metrics)

    def _sorted(self) -> Iterable[_Metric]:
        with self._lock:
            keys = sorted(self._metrics, key=lambda k: (k[0], k[1]))
            return [self._metrics[key] for key in keys]

    # ------------------------------------------------------------------
    # Exporters

    def to_json(self) -> dict[str, Any]:
        """Deterministic JSON-ready snapshot of every metric."""
        out: dict[str, Any] = {}
        for metric in self._sorted():
            entry: dict[str, Any] = {"kind": metric.kind}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = list(metric.counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value  # type: ignore[attr-defined]
            if metric.updated_s is not None:
                entry["updated_s"] = metric.updated_s
            out[metric.name + _label_text(metric.labels)] = entry
        return out

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (deterministic ordering)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for metric in self._sorted():
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                seen_types.add(metric.name)
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative()
                for bound, count in zip(metric.buckets, cumulative):
                    labels = metric.labels + (("le", format(bound, "g")),)
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_label_text(tuple(sorted(labels)))} {count}"
                    )
                labels = metric.labels + (("le", "+Inf"),)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_label_text(tuple(sorted(labels)))} {cumulative[-1]}"
                )
                lines.append(
                    f"{metric.name}_sum{_label_text(metric.labels)} "
                    f"{format(metric.sum, 'g')}"
                )
                lines.append(
                    f"{metric.name}_count{_label_text(metric.labels)} "
                    f"{metric.count}"
                )
            else:
                value = metric.value  # type: ignore[attr-defined]
                lines.append(
                    f"{metric.name}{_label_text(metric.labels)} "
                    f"{format(value, 'g')}"
                )
        return "\n".join(lines)


def traffic_metrics_observer(
    registry: MetricsRegistry,
) -> Callable[[Any], None]:
    """A :func:`repro.sources.network.install_traffic_observer` callback.

    Folds every :class:`~repro.sources.network.TrafficRecord` charged
    anywhere in the process into ``registry`` — the benchmark harness
    uses this to snapshot traffic moved (messages, items, rows, cost)
    per source and operation next to each experiment report.
    """

    def observe(record: Any) -> None:
        source = record.source_name
        registry.counter(
            "repro_messages_total", source=source, op=record.operation
        ).inc()
        registry.counter(
            "repro_items_sent_total", source=source
        ).inc(record.items_sent)
        registry.counter(
            "repro_items_received_total", source=source
        ).inc(record.items_received)
        registry.counter(
            "repro_rows_loaded_total", source=source
        ).inc(record.rows_loaded)
        registry.counter(
            "repro_wire_cost_total", source=source
        ).inc(record.cost)

    return observe
