"""Structured event log with a stable, validated JSONL schema.

Every observable incident of one mediator run — a wrapper query going on
the wire, a semijoin send-set, a retry being scheduled, a hedge
launched, a circuit breaker changing state, a re-plan round — is one
:class:`Event`: a virtual-clock timestamp, a type, and typed fields.
The schema (:data:`EVENT_SCHEMA`) is part of the public contract:
emission validates against it, CI validates persisted logs line by
line, and downstream consumers (the ASCII timeline renderer in
:mod:`repro.obs.replay`, the log-mined statistics in
:mod:`repro.sources.observed`) rely on exactly these fields.

Records serialize to JSONL with a fixed key order (``ts``, ``type``,
then field names sorted), so two runs with the same seed produce
byte-identical streams.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ObservabilityError

#: Field-type vocabulary used by :data:`EVENT_SCHEMA`.
_TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "list[str]": lambda v: isinstance(v, list)
    and all(isinstance(item, str) for item in v),
}

#: The stable event schema: ``type -> {field: type}``.  Every record also
#: carries ``ts`` (float, virtual-clock seconds) and ``type`` (str).
EVENT_SCHEMA: dict[str, dict[str, str]] = {
    # One plan execution starting (round 0) or a re-plan round starting.
    "run_start": {
        "backend": "str",  # "runtime" | "sequential"
        "round": "int",
        "plan_ops": "int",
        "remote_ops": "int",
        "result": "str",  # the plan's result register
    },
    # One wire attempt finished (succeeded, failed, or was cancelled).
    "attempt": {
        "round": "int",
        "step": "int",
        "op": "str",  # "sq" | "sjq" | "lq"
        "planned": "str",  # the plan's source
        "source": "str",  # the source that actually served
        "condition": "str",  # condition SQL ("" for lq)
        "attempt": "int",  # 1-based per step
        "start": "float",
        "end": "float",
        "fate": "str",  # AttemptFate value
        "hedge": "bool",
        "cost": "float",
        "items_sent": "int",
        "items_received": "int",
        "rows_loaded": "int",
        "messages": "int",
    },
    # A semijoin shipped its binding set to a source.
    "sendset": {
        "round": "int",
        "step": "int",
        "source": "str",
        "condition": "str",
        "size": "int",
    },
    # A failed attempt scheduled a retry after backoff.
    "retry": {
        "round": "int",
        "step": "int",
        "source": "str",
        "retries": "int",  # retries used after this one fires
        "at": "float",  # virtual time the retry fires
    },
    # A speculative duplicate attempt was launched on a substitute.
    "hedge": {
        "round": "int",
        "step": "int",
        "primary": "str",
        "target": "str",
        "trigger": "str",  # "timer" | "failure"
    },
    # A circuit breaker changed state.
    "breaker": {
        "source": "str",
        "from": "str",  # BreakerState value
        "to": "str",
    },
    # The answer verifier found issues in one delivered answer.
    "quality": {
        "step": "int",
        "source": "str",
        "delivered": "int",  # tuples as delivered (duplicates included)
        "kept": "int",  # tuples that survived verification
        "corrupt": "int",  # schema/type-violating values dropped
        "duplicates": "int",  # duplicate tuples collapsed
        "conflicts": "int",  # values outvoted in a cross-replica vote
        "score": "float",  # the source's quality score after this answer
    },
    # A source entered or left data-quality quarantine.
    "quarantine": {
        "source": "str",
        "action": "str",  # "enter" | "exit"
        "score": "float",  # quality score at the transition
        "answers": "int",  # verified answers the score is based on
    },
    # One plan operation produced its value (remote or local).
    "op": {
        "round": "int",
        "step": "int",
        "op": "str",  # OpKind value
        "target": "str",
        "source": "str",  # "" for local operations
        "remote": "bool",
        "condition": "str",  # "" when the operation has no condition
        "queued": "float",
        "started": "float",
        "finished": "float",
        "status": "str",  # OpStatus value
        "output": "int",
    },
    # One plan execution finished.
    "run_end": {
        "backend": "str",
        "round": "int",
        "makespan": "float",
        "retries": "int",
        "degraded": "int",
        "recovered": "int",
        "hedges": "int",
        "cost": "float",
        "items": "int",
    },
    # The resilient executor planned one round (0 = the initial plan).
    "replan": {
        "round": "int",
        "optimizer": "str",
        "sources": "list[str]",
        "masked": "list[str]",
        "estimated_cost": "float",
    },
    # A query was shed at admission because its deadline is infeasible.
    "shed": {
        "query": "int",  # per-service submission sequence number
        "tenant": "str",
        "reason": "str",  # "infeasible" | "invalid"
        "predicted": "float",  # predicted completion (submit-relative s)
        "deadline": "float",  # the query's deadline budget in seconds
    },
    # A query's deadline budget expired (in queue or mid-execution).
    "deadline": {
        "query": "int",
        "tenant": "str",
        "stage": "str",  # "queue" | "execution"
        "budget": "float",  # the deadline budget in seconds
        "overrun": "float",  # elapsed - budget at expiry (>= 0)
    },
    # The serving tier planned one admitted query (cache hit or miss).
    "plan": {
        "query": "int",  # per-service submission sequence number
        "tenant": "str",
        "trace": "str",  # the query's deterministic trace id
        "cache": "str",  # "hit" | "miss" | "off"
        "strategy": "str",  # OptimizationResult.search_strategy
        "subsets": "int",  # subsets considered by this optimization
        "elapsed": "float",  # wall planning seconds (0.0 on the virtual clock)
        "exhausted": "bool",  # anytime budget cut the search short
    },
    # Critical-path latency attribution of one completed query: the
    # per-phase seconds tile [submit, complete] exactly, so
    # queue + plan + pool + exec_* + merge == total (one sum per query).
    "phases": {
        "query": "int",
        "tenant": "str",
        "trace": "str",
        "queue": "float",
        "plan": "float",
        "pool": "float",
        "exec_wait": "float",  # engine-side source-connection wait
        "exec_wire": "float",  # attempt time on the wire
        "exec_backoff": "float",  # retry backoff gaps
        "merge": "float",  # local set-algebra + answer assembly
        "total": "float",  # end-to-end latency (== the sum above)
    },
    # A serving-tier lifecycle transition of one submitted query.
    "serve": {
        "phase": "str",  # "admitted" | "rejected" | "dispatched" | "completed" | "failed"
        "query": "int",  # per-service submission sequence number
        "tenant": "str",
        "queue_depth": "int",  # run-queue depth after the transition
        "in_flight": "int",  # dispatched-but-unfinished after the transition
        "detail": "str",  # rejection reason / error class ("" otherwise)
        "latency": "float",  # submit->complete seconds (0.0 until completed)
    },
}


def validate_record(record: Mapping[str, Any]) -> None:
    """Check one parsed JSONL record against :data:`EVENT_SCHEMA`.

    Raises:
        ObservabilityError: on an unknown type, a missing or unexpected
            field, or a field of the wrong type.
    """
    event_type = record.get("type")
    if event_type not in EVENT_SCHEMA:
        raise ObservabilityError(f"unknown event type {event_type!r}")
    ts = record.get("ts")
    if not _TYPE_CHECKS["float"](ts):
        raise ObservabilityError(
            f"{event_type}: ts must be a number, got {ts!r}"
        )
    expected = EVENT_SCHEMA[event_type]
    fields = {key for key in record if key not in ("ts", "type")}
    missing = sorted(set(expected) - fields)
    extra = sorted(fields - set(expected))
    if missing or extra:
        raise ObservabilityError(
            f"{event_type}: missing fields {missing}, unexpected {extra}"
        )
    for name, type_name in expected.items():
        if not _TYPE_CHECKS[type_name](record[name]):
            raise ObservabilityError(
                f"{event_type}.{name}: expected {type_name}, "
                f"got {record[name]!r}"
            )


@dataclass(frozen=True)
class Event:
    """One schema-validated telemetry record on the virtual clock."""

    ts: float
    type: str
    fields: Mapping[str, Any]

    def to_record(self) -> dict[str, Any]:
        """Plain dict with the canonical key order (ts, type, sorted)."""
        record: dict[str, Any] = {"ts": self.ts, "type": self.type}
        for key in sorted(self.fields):
            record[key] = self.fields[key]
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_record(), separators=(",", ":"))

    def __getitem__(self, key: str) -> Any:
        if key == "ts":
            return self.ts
        if key == "type":
            return self.type
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default


@dataclass
class EventLog:
    """An append-only sequence of :class:`Event`, JSONL in and out.

    Example:
        >>> log = EventLog()
        >>> log.emit(0.0, "breaker", source="R1",
        ...          **{"from": "closed", "to": "open"})
        >>> print(log.to_jsonl())
        {"ts":0.0,"type":"breaker","from":"closed","source":"R1","to":"open"}
    """

    events: list[Event] = field(default_factory=list)

    def emit(self, ts: float, event_type: str, **fields: Any) -> Event:
        """Validate and append one event; returns it."""
        event = Event(ts=float(ts), type=event_type, fields=fields)
        validate_record(event.to_record())
        self.events.append(event)
        return event

    def of_type(self, *event_types: str) -> list[Event]:
        wanted = set(event_types)
        return [event for event in self.events if event.type in wanted]

    def to_jsonl(self) -> str:
        return "\n".join(event.to_json() for event in self.events)

    def write(self, path: str) -> str:
        """Persist as JSONL (one record per line); returns ``path``.

        Parent directories are created on demand so the conventional
        destination (``results/events.jsonl``) works from a fresh
        checkout.
        """
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(event.to_json() + "\n")
        return path

    @staticmethod
    def from_records(records: Iterable[Mapping[str, Any]]) -> "EventLog":
        """Build (and validate) a log from parsed JSONL records."""
        log = EventLog()
        for record in records:
            validate_record(record)
            fields = {
                key: value
                for key, value in record.items()
                if key not in ("ts", "type")
            }
            log.events.append(
                Event(ts=float(record["ts"]), type=record["type"], fields=fields)
            )
        return log

    @staticmethod
    def from_jsonl(text: str) -> "EventLog":
        records = []
        for line_no, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"line {line_no} is not valid JSON: {exc}"
                ) from exc
        return EventLog.from_records(records)

    @staticmethod
    def read(path: str) -> "EventLog":
        with open(path, "r", encoding="utf-8") as handle:
            return EventLog.from_jsonl(handle.read())

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
