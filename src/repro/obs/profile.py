"""Query profiles: per-step / per-source / per-condition rollups.

A :class:`QueryProfile` condenses one run's event stream into the three
views an operator actually asks for after a query:

* **per step** — what each plan operation cost, how long it spent on the
  wire vs. end-to-end (queue + backoff included), and how it ended;
* **per source** — traffic moved (messages, items shipped and received,
  rows bulk-loaded), attempts and hedges, connection-busy seconds;
* **per condition** — selection items fetched, semijoin binding items
  shipped, and items *confirmed* (survivors received back) for every
  fusion condition.

When the planner's :class:`~repro.plans.cost.PlanCostBreakdown` is
supplied, the profile also reports predicted vs. observed cost in total
and per source — the gap that :class:`repro.sources.observed.ObservedStatistics`
exists to close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.obs.events import Event, EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plans.cost import PlanCostBreakdown


@dataclass(frozen=True)
class StepProfile:
    """One plan operation's observed totals."""

    step: int
    op: str
    source: str
    condition: str
    attempts: int
    cost: float
    wire_s: float  # seconds a connection was busy on this step
    span_s: float  # queued -> finished, backoff and queueing included
    output: int
    status: str


@dataclass(frozen=True)
class SourceProfile:
    """One source's observed totals across the run."""

    source: str
    attempts: int
    failures: int
    hedges: int
    busy_s: float
    cost: float
    items_sent: int
    items_received: int
    rows_loaded: int
    messages: int


@dataclass(frozen=True)
class ConditionProfile:
    """One fusion condition's observed totals across all sources."""

    condition: str
    sq_items: int  # items returned by selection queries
    shipped: int  # semijoin binding items shipped to sources
    confirmed: int  # semijoin survivors received back
    cost: float


@dataclass(frozen=True)
class QueryProfile:
    """Per-step / per-source / per-condition rollup of one run."""

    steps: tuple[StepProfile, ...]
    sources: tuple[SourceProfile, ...]
    conditions: tuple[ConditionProfile, ...]
    makespan_s: float
    wire_s: float
    total_cost: float
    items: int
    predicted_cost: float | None = None
    predicted_by_source: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction

    @staticmethod
    def from_events(
        events: EventLog | Iterable[Event],
        breakdown: "PlanCostBreakdown | None" = None,
    ) -> "QueryProfile":
        """Roll an event stream up into a profile.

        All rounds of a resilient run are folded together: a step
        re-planned into a later round contributes its attempts from
        every round it appeared in.
        """
        all_events = list(events)

        steps: list[StepProfile] = []
        for event in all_events:
            if event.type != "op":
                continue
            steps.append(
                StepProfile(
                    step=event["step"],
                    op=event["op"],
                    source=event["source"],
                    condition=event["condition"],
                    attempts=0,
                    cost=0.0,
                    wire_s=0.0,
                    span_s=event["finished"] - event["queued"],
                    output=event["output"],
                    status=event["status"],
                )
            )

        # Fold attempts into their step rows and the per-source /
        # per-condition rollups.
        step_index = {
            (step.step, step.op): i for i, step in enumerate(steps)
        }
        source_totals: dict[str, dict[str, float]] = {}
        condition_totals: dict[str, dict[str, float]] = {}

        def bucket(table: dict, key: str) -> dict[str, float]:
            return table.setdefault(
                key,
                {
                    "attempts": 0,
                    "failures": 0,
                    "hedges": 0,
                    "busy_s": 0.0,
                    "cost": 0.0,
                    "items_sent": 0,
                    "items_received": 0,
                    "rows_loaded": 0,
                    "messages": 0,
                    "sq_items": 0,
                    "shipped": 0,
                    "confirmed": 0,
                },
            )

        wire_s = 0.0
        for event in all_events:
            if event.type == "sendset":
                if event["condition"]:
                    bucket(condition_totals, event["condition"])[
                        "shipped"
                    ] += event["size"]
                continue
            if event.type != "attempt":
                continue
            duration = event["end"] - event["start"]
            wire_s += duration
            key = (event["step"], event["op"])
            if key in step_index:
                old = steps[step_index[key]]
                steps[step_index[key]] = StepProfile(
                    step=old.step,
                    op=old.op,
                    source=old.source,
                    condition=old.condition,
                    attempts=old.attempts + 1,
                    cost=old.cost + event["cost"],
                    wire_s=old.wire_s + duration,
                    span_s=old.span_s,
                    output=old.output,
                    status=old.status,
                )
            per_source = bucket(source_totals, event["source"])
            per_source["attempts"] += 1
            per_source["failures"] += 0 if event["fate"] == "ok" else 1
            per_source["hedges"] += 1 if event["hedge"] else 0
            per_source["busy_s"] += duration
            per_source["cost"] += event["cost"]
            per_source["items_sent"] += event["items_sent"]
            per_source["items_received"] += event["items_received"]
            per_source["rows_loaded"] += event["rows_loaded"]
            per_source["messages"] += event["messages"]
            if event["condition"] and event["fate"] == "ok":
                per_condition = bucket(condition_totals, event["condition"])
                per_condition["cost"] += event["cost"]
                if event["op"] == "sq":
                    per_condition["sq_items"] += event["items_received"]
                elif event["op"] == "sjq":
                    per_condition["confirmed"] += event["items_received"]

        makespan = 0.0
        items = 0
        total_cost = 0.0
        for event in all_events:
            if event.type == "run_end":
                makespan = max(makespan, event["ts"])
                items = event["items"]
                total_cost += event["cost"]

        predicted = None
        predicted_by_source: dict[str, float] = {}
        if breakdown is not None:
            predicted = breakdown.total
            predicted_by_source = breakdown.by_source()

        return QueryProfile(
            steps=tuple(steps),
            sources=tuple(
                SourceProfile(
                    source=name,
                    attempts=int(totals["attempts"]),
                    failures=int(totals["failures"]),
                    hedges=int(totals["hedges"]),
                    busy_s=totals["busy_s"],
                    cost=totals["cost"],
                    items_sent=int(totals["items_sent"]),
                    items_received=int(totals["items_received"]),
                    rows_loaded=int(totals["rows_loaded"]),
                    messages=int(totals["messages"]),
                )
                for name, totals in sorted(source_totals.items())
            ),
            conditions=tuple(
                ConditionProfile(
                    condition=name,
                    sq_items=int(totals["sq_items"]),
                    shipped=int(totals["shipped"]),
                    confirmed=int(totals["confirmed"]),
                    cost=totals["cost"],
                )
                for name, totals in sorted(condition_totals.items())
            ),
            makespan_s=makespan,
            wire_s=wire_s,
            total_cost=total_cost,
            items=items,
            predicted_cost=predicted,
            predicted_by_source=predicted_by_source,
        )

    # ------------------------------------------------------------------
    # Rendering

    def render(self) -> str:
        """Fixed-width report in the style of :mod:`repro.bench.report`."""
        lines = [self._headline(), ""]
        if self.steps:
            lines.append(
                "step  op         source   attempts    cost  wire s"
                "  span s  output  status"
            )
            for step in sorted(self.steps, key=lambda s: (s.step, s.op)):
                lines.append(
                    f"{step.step:>4}  {step.op:<10} {step.source or '-':<8} "
                    f"{step.attempts:>8} {step.cost:>7.1f} "
                    f"{step.wire_s:>7.3f} {step.span_s:>7.3f} "
                    f"{step.output:>7}  {step.status}"
                )
            lines.append("")
        if self.sources:
            lines.append(
                "source   attempts  fail  hedge  busy s    cost    sent"
                "    recv    rows  msgs"
            )
            for src in self.sources:
                observed = src.cost
                note = ""
                predicted = self.predicted_by_source.get(src.source)
                if predicted is not None:
                    note = f"  (predicted {predicted:.1f})"
                lines.append(
                    f"{src.source:<8} {src.attempts:>8} {src.failures:>5} "
                    f"{src.hedges:>6} {src.busy_s:>7.3f} {observed:>7.1f} "
                    f"{src.items_sent:>7} {src.items_received:>7} "
                    f"{src.rows_loaded:>7} {src.messages:>5}{note}"
                )
            lines.append("")
        if self.conditions:
            lines.append(
                "condition                      sq items  shipped"
                "  confirmed    cost"
            )
            for cond in self.conditions:
                lines.append(
                    f"{cond.condition:<30} {cond.sq_items:>8} "
                    f"{cond.shipped:>8} {cond.confirmed:>10} "
                    f"{cond.cost:>7.1f}"
                )
        return "\n".join(lines).rstrip()

    def _headline(self) -> str:
        text = (
            f"profile: {self.items} items, cost {self.total_cost:.1f}"
        )
        if self.predicted_cost is not None:
            ratio = (
                self.total_cost / self.predicted_cost
                if self.predicted_cost
                else float("inf")
            )
            text += (
                f" (predicted {self.predicted_cost:.1f}, "
                f"observed/predicted {ratio:.2f})"
            )
        text += (
            f"; makespan {self.makespan_s:.3f}s, wire {self.wire_s:.3f}s"
        )
        return text
