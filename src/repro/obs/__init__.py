"""End-to-end telemetry for the fusion-query mediator.

Execution used to be observable only through the ad-hoc ASCII renderers
(:class:`~repro.runtime.trace.RuntimeTrace`, ``HealthRegistry.report``).
This package makes observation a first-class subsystem with three
complementary views, all driven by the runtime's *virtual* clock so
every output is deterministic and replayable:

* :mod:`~repro.obs.metrics` — a metrics registry (counters, gauges,
  histograms with fixed bucket boundaries) with JSON and
  Prometheus-text exporters;
* :mod:`~repro.obs.events` — a structured event log: every wrapper
  query, semijoin send-set, retry, hedge, breaker transition, and
  re-plan round as a JSONL record with a stable, validated schema
  (:data:`~repro.obs.events.EVENT_SCHEMA`);
* :mod:`~repro.obs.profile` — per-step / per-source / per-condition
  query profiles (traffic moved, items confirmed, wall-clock vs wire
  time, predicted vs observed cost);
* :mod:`~repro.obs.spans` — causal span trees: every query carries a
  deterministic trace id, its phases (admission, queue, plan, pool,
  execute, merge) and engine operations become hierarchical spans
  exportable as Chrome trace-event JSON, and a critical-path analyzer
  attributes end-to-end latency to phases exactly;
* :mod:`~repro.obs.slo` — service-level objectives (latency,
  completeness) scored over the registry with error-budget burn rates.

The :class:`~repro.obs.recorder.Recorder` is the hub the engine,
executor, health registry, and re-planner report into; with no recorder
attached (the default) nothing is collected and traces stay
byte-identical to the uninstrumented runtime.  The ASCII timeline is now
a *renderer* over the event stream — :func:`~repro.obs.replay.trace_from_events`
rebuilds a :class:`~repro.runtime.trace.RuntimeTrace` from recorded
events, byte for byte.

Closing the loop, :class:`repro.sources.observed.ObservedStatistics`
mines these event logs for cardinalities and per-condition
selectivities, letting a mediator plan from what it has *watched
happen* instead of oracle ground truth.
"""

from repro.obs.events import (
    EVENT_SCHEMA,
    Event,
    EventLog,
    validate_record,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    traffic_metrics_observer,
)
from repro.obs.profile import QueryProfile
from repro.obs.recorder import Recorder
from repro.obs.replay import trace_from_events
from repro.obs.slo import (
    SLOMonitor,
    SLOSpec,
    SLOStatus,
    parse_slo_spec,
)
from repro.obs.spans import (
    CriticalPath,
    PhaseSlice,
    Span,
    SpanLog,
    analyze_log,
    analyze_trace,
    derive_trace_id,
    top_contributors,
    validate_chrome_trace,
)

__all__ = [
    "EVENT_SCHEMA",
    "Event",
    "EventLog",
    "validate_record",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "traffic_metrics_observer",
    "QueryProfile",
    "Recorder",
    "trace_from_events",
    "SLOMonitor",
    "SLOSpec",
    "SLOStatus",
    "parse_slo_spec",
    "CriticalPath",
    "PhaseSlice",
    "Span",
    "SpanLog",
    "analyze_log",
    "analyze_trace",
    "derive_trace_id",
    "top_contributors",
    "validate_chrome_trace",
]
