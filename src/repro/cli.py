"""The ``python -m repro`` command line.

Subcommands:

* ``demo`` — run the Fig. 1 DMV example end to end;
* ``query SPEC SQL`` — load a federation spec (see :mod:`repro.io`),
  run a fusion query, print plan + trace + answer; ``--runtime`` runs
  it on the concurrent discrete-event engine instead (with
  ``--fault-rate``/``--retries``/``--timeline`` to inject failures and
  watch the retry behaviour, ``--hedge-delay``/``--breaker``/
  ``--replan`` to recover via replicas when the spec declares them,
  ``--robust``/``--robustness-lambda`` to plan for the faulty setting
  by expected completeness, and ``--load-balance`` to spread healthy
  traffic across replica groups; ``--data-faults`` tampers with
  delivered payloads (truncated/stale/duplicate/corrupt), ``--verify``
  sanitizes or cross-replica-votes every answer, and ``--quarantine``
  takes sources with collapsing data quality out of rotation;
  ``--metrics``/``--profile``/
  ``--emit-events`` print a metrics snapshot, the query profile, and
  the structured event log, ``--observed-stats LOG`` plans from
  statistics mined out of a previously recorded log instead of the
  oracle, and ``--deadline S`` bounds the whole run — at expiry the
  best partial answer found so far is returned on time);
* ``workload SPEC SQL [SQL ...]`` — drive a seeded multi-query
  workload through the serving tier (:mod:`repro.serve`): Poisson
  arrivals over the SQL pool, weighted tenants (``--tenant
  name:weight:quota``), admission control and per-source pools, an
  optional mid-workload ``--churn`` wave, and either the
  deterministic virtual clock or a real thread pool (``--mode``);
  ``--deadline`` attaches an end-to-end deadline to every arrival,
  ``--shed-policy`` controls latency-aware shedding, and
  ``--planning-budget`` caps anytime planning per query; prints qps,
  p50/p95/p99 latency, shedding, deadline outcomes, and cache hits;
* ``explain SPEC SQL`` — plan only, with per-step estimated costs;
* ``check SPEC SQL`` — report whether the SQL matches the fusion
  pattern (the Sec. 5 detector), without executing anything;
* ``export-dmv PATH`` — write the Fig. 1 federation as a spec file, a
  convenient starting point for hand-edited federations.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import FusionError, NotAFusionQueryError
from repro.io import load_federation, save_federation
from repro.mediator.session import Mediator
from repro.optimize import (
    FilterOptimizer,
    GreedySJAOptimizer,
    SJAOptimizer,
    SJAPlusOptimizer,
    SJOptimizer,
)
from repro.optimize.search import DEFAULT_BEAM_WIDTH, STRATEGIES
from repro.query.sqlparse import parse_fusion_query
from repro.sources.generators import dmv_fig1

_OPTIMIZERS = {
    "filter": FilterOptimizer,
    "sj": SJOptimizer,
    "sja": SJAOptimizer,
    "sja+": SJAPlusOptimizer,
    "greedy": GreedySJAOptimizer,
}

#: Where ``--emit-events`` lands when no path is given: under
#: ``results/``, next to the benchmark reports, never the repo root.
DEFAULT_EVENTS_PATH = os.path.join("results", "events.jsonl")

#: Where ``--trace-export`` lands when no path is given.
DEFAULT_TRACE_PATH = os.path.join("results", "trace.json")

#: Optimizers whose constructors accept search=/beam_width=.
_SEARCHABLE = {"sj", "sja", "sja+"}


def _make_optimizer(
    name: str, search: str = "auto", beam_width: int = DEFAULT_BEAM_WIDTH
):
    """Instantiate a named optimizer, passing search knobs where they apply."""
    factory = _OPTIMIZERS[name]
    if name in _SEARCHABLE:
        return factory(search=search, beam_width=beam_width)
    return factory()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Fusion queries over (simulated) Internet databases.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("demo", help="run the Fig. 1 DMV example")

    for name, help_text in (
        ("query", "optimize + execute a fusion query"),
        ("explain", "show the chosen plan without executing"),
        ("check", "test whether SQL matches the fusion pattern"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("spec", help="path to a federation spec (JSON)")
        sub.add_argument("sql", help="the fusion query in SQL")
        if name != "check":
            sub.add_argument(
                "--optimizer",
                choices=sorted(_OPTIMIZERS),
                default="sja+",
                help="planning algorithm (default: sja+)",
            )
            sub.add_argument(
                "--search",
                choices=STRATEGIES,
                default="auto",
                help="plan-search strategy: exhaustive is the faithful "
                "m! sweep, dp/bnb the exact subset search, beam an "
                "inexact fallback; auto picks by query arity "
                "(default: auto)",
            )
            sub.add_argument(
                "--beam-width",
                type=int,
                default=DEFAULT_BEAM_WIDTH,
                metavar="K",
                help="beam width for --search beam "
                f"(default: {DEFAULT_BEAM_WIDTH})",
            )
        if name == "query":
            sub.add_argument(
                "--aggregate",
                action="store_true",
                help="treat the SQL as an aggregation fusion query "
                "(COUNT/SUM/AVG/MIN/MAX ... GROUP BY over the fused "
                "entity set); aggregate SQL is also auto-detected",
            )
            sub.add_argument(
                "--pushdown",
                choices=("auto", "force", "off"),
                default="auto",
                help="partial-aggregate pushdown to capable sources: "
                "'auto' chooses per source by estimated cost, 'force' "
                "pushes down everywhere possible, 'off' always fetches "
                "raw tuples (default: auto)",
            )
            sub.add_argument(
                "--adaptive",
                action="store_true",
                help="interleave planning and execution (re-plan each "
                "stage with actual intermediate sizes)",
            )
            sub.add_argument(
                "--runtime",
                action="store_true",
                help="execute concurrently on the discrete-event runtime "
                "(observed makespan, retries, fault tolerance)",
            )
            sub.add_argument(
                "--fault-rate",
                type=float,
                default=0.0,
                metavar="P",
                help="per-attempt transient-failure probability injected "
                "at every source (runtime backend only)",
            )
            sub.add_argument(
                "--fault-seed",
                type=int,
                default=0,
                help="seed for fault injection (default: 0)",
            )
            sub.add_argument(
                "--data-faults",
                metavar="SPEC",
                default=None,
                help="tamper with delivered payloads (runtime backend): "
                "a comma list of [SRC:]KIND=RATE entries with KIND in "
                "{truncated,stale,duplicate,corrupt} (or any "
                "DataFaultProfile field, e.g. stale_fraction); "
                "'stale=0.3' hits every source, 'R1~1:corrupt=1' only "
                "the named one",
            )
            sub.add_argument(
                "--verify",
                choices=("off", "sanitize", "vote"),
                default="off",
                help="answer verification (runtime backend): 'sanitize' "
                "drops schema-violating values and duplicates, 'vote' "
                "additionally cross-checks replica-group answers and "
                "keeps the majority (default: off)",
            )
            sub.add_argument(
                "--quarantine",
                action="store_true",
                help="take sources whose data-quality score collapses "
                "out of rotation (runtime backend; pairs with --verify)",
            )
            sub.add_argument(
                "--retries",
                type=int,
                default=3,
                help="per-operation retry budget (default: 3)",
            )
            sub.add_argument(
                "--timeline",
                action="store_true",
                help="print the ASCII execution timeline (runtime backend)",
            )
            sub.add_argument(
                "--hedge-delay",
                type=float,
                default=None,
                metavar="S",
                help="speculatively duplicate an attempt on a replica "
                "after S virtual seconds, and immediately on failure "
                "(runtime backend; requires replicas/substitutes)",
            )
            sub.add_argument(
                "--breaker",
                choices=("off", "default", "aggressive"),
                default="off",
                help="circuit-breaker profile: trip dead sources and "
                "reroute to replicas (runtime backend)",
            )
            sub.add_argument(
                "--replan",
                type=int,
                default=0,
                metavar="N",
                help="re-plan up to N times around dead sources, merging "
                "answers (runtime backend; default: 0)",
            )
            sub.add_argument(
                "--robust",
                action="store_true",
                help="rank candidate plans by cost + λ·(1−expected "
                "completeness)·penalty instead of cost alone, using "
                "the fault regime and live source health (overrides "
                "--optimizer)",
            )
            sub.add_argument(
                "--robustness-lambda",
                type=float,
                default=1.0,
                metavar="L",
                help="the λ exchange rate of --robust: how much extra "
                "wire cost one unit of expected completeness is worth "
                "(default: 1.0)",
            )
            sub.add_argument(
                "--load-balance",
                action="store_true",
                help="spread healthy runtime traffic round-robin across "
                "replica-group members (runtime backend)",
            )
            sub.add_argument(
                "--metrics",
                nargs="?",
                const="json",
                choices=("json", "prom"),
                default=None,
                metavar="FORMAT",
                help="print a metrics snapshot after the answer, as "
                "deterministic JSON (default) or Prometheus text "
                "exposition ('prom')",
            )
            sub.add_argument(
                "--profile",
                action="store_true",
                help="print the query profile: per-step, per-source and "
                "per-condition rollups with predicted vs observed cost",
            )
            sub.add_argument(
                "--emit-events",
                nargs="?",
                const=DEFAULT_EVENTS_PATH,
                metavar="PATH",
                default=None,
                help="write the structured event log of the run to PATH "
                "as JSON lines (one validated event per line); without "
                f"PATH, defaults to {DEFAULT_EVENTS_PATH}",
            )
            sub.add_argument(
                "--deadline",
                type=float,
                default=None,
                metavar="S",
                help="end-to-end answer budget in virtual seconds "
                "(runtime backend): at expiry in-flight work is "
                "cancelled and the best partial answer so far is "
                "returned, marked PARTIAL, instead of an error",
            )
            sub.add_argument(
                "--observed-stats",
                metavar="PATH",
                default=None,
                help="plan from statistics mined out of a recorded event "
                "log (a --emit-events file from a warm-up run) instead "
                "of the oracle",
            )
            sub.add_argument(
                "--plan-cache",
                nargs="?",
                const=128,
                type=int,
                default=None,
                metavar="N",
                help="cache optimized plans (LRU, capacity N, default "
                "128) keyed on query + statistics fingerprints; "
                "repeated queries skip the optimizer",
            )

    workload = subparsers.add_parser(
        "workload",
        help="drive a multi-query workload through the serving tier",
    )
    workload.add_argument("spec", help="path to a federation spec (JSON)")
    workload.add_argument(
        "sql",
        nargs="+",
        help="fusion-query SQL pool; each arrival draws one uniformly",
    )
    workload.add_argument(
        "--mode",
        choices=("deterministic", "threads"),
        default="deterministic",
        help="virtual clock with byte-identical replay, or a real "
        "thread pool (default: deterministic)",
    )
    workload.add_argument(
        "--count", type=int, default=50,
        help="number of query arrivals (default: 50)",
    )
    workload.add_argument(
        "--rate-qps", type=float, default=4.0, metavar="R",
        help="mean Poisson arrival rate (default: 4.0)",
    )
    workload.add_argument(
        "--seed", type=int, default=0,
        help="workload seed: arrivals, tenant draws, and every "
        "query's fault stream derive from it (default: 0)",
    )
    workload.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool size for --mode threads (default: 4)",
    )
    workload.add_argument(
        "--pool-slots", type=int, default=2, metavar="N",
        help="concurrent connections allowed per source (default: 2)",
    )
    workload.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="admission queue depth before shedding (default: 16)",
    )
    workload.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME[:WEIGHT[:QUOTA]]",
        help="add a tenant (repeatable): scheduling weight and an "
        "optional cap on outstanding queries",
    )
    workload.add_argument(
        "--churn",
        metavar="START:END:SRC,SRC[:RATE]",
        default=None,
        help="a churn wave: the named sources turn flaky at RATE "
        "(default 0.5) for arrivals inside [START, END) seconds",
    )
    workload.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="baseline per-attempt transient-failure probability at "
        "every source (default: 0)",
    )
    workload.add_argument(
        "--breaker", action="store_true",
        help="enable the shared circuit breakers",
    )
    workload.add_argument(
        "--data-faults",
        metavar="SPEC",
        default=None,
        help="tamper with delivered payloads: a comma list of "
        "[SRC:]KIND=RATE entries, KIND in {truncated,stale,"
        "duplicate,corrupt}; see the query subcommand",
    )
    workload.add_argument(
        "--verify",
        choices=("off", "sanitize", "vote"),
        default="off",
        help="answer verification for every query (default: off)",
    )
    workload.add_argument(
        "--quarantine", action="store_true",
        help="quarantine sources whose data-quality score collapses "
        "(shared across queries and tenants)",
    )
    workload.add_argument(
        "--metrics",
        nargs="?",
        const="json",
        choices=("json", "prom"),
        default=None,
        metavar="FORMAT",
        help="print the serving metrics snapshot after the run",
    )
    workload.add_argument(
        "--emit-events",
        nargs="?",
        const=DEFAULT_EVENTS_PATH,
        metavar="PATH",
        default=None,
        help="write the service event log (admission, dispatch, "
        "completion, plus engine events under the virtual clock) "
        "to PATH as JSON lines; without PATH, defaults to "
        f"{DEFAULT_EVENTS_PATH}",
    )
    workload.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="attach an end-to-end deadline of S seconds to every "
        "arrival: admitted queries answer by their deadline "
        "(possibly partially), and infeasible ones are shed at "
        "admission under --shed-policy deadline",
    )
    workload.add_argument(
        "--shed-policy",
        choices=("none", "deadline"),
        default="deadline",
        help="latency-aware load shedding: 'deadline' refuses "
        "arrivals whose predicted completion already misses their "
        "deadline; 'none' only validates deadlines "
        "(default: deadline)",
    )
    workload.add_argument(
        "--planning-budget",
        type=int,
        default=None,
        metavar="N",
        help="anytime planning: cap the optimizer at N subset "
        "expansions per query when idle, shrinking under queue "
        "pressure and near deadlines (default: unbounded)",
    )
    workload.add_argument(
        "--trace-export",
        nargs="?",
        const=DEFAULT_TRACE_PATH,
        metavar="PATH",
        default=None,
        help="write the run's span forest as Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing) to PATH; without "
        f"PATH, defaults to {DEFAULT_TRACE_PATH}",
    )
    workload.add_argument(
        "--slo",
        metavar="SPEC",
        default=None,
        help="evaluate service-level objectives after the run: a "
        "comma-separated list of latency:<threshold_s>:<objective> "
        "and completeness:<objective> terms, e.g. "
        "'latency:2.0:0.95,completeness:0.99'",
    )

    export = subparsers.add_parser(
        "export-dmv", help="write the Fig. 1 federation as a spec file"
    )
    export.add_argument("path", help="output JSON path")
    return parser


def _command_demo() -> int:
    federation, query = dmv_fig1()
    mediator = Mediator(federation, verify=True)
    answer = mediator.answer(query)
    print(query.to_sql())
    print()
    print(answer.plan.pretty())
    print()
    print(answer.execution.trace(answer.plan))
    print()
    print("answer:", ", ".join(sorted(answer.items)))
    return 0


def _make_recorder(metrics: str | None, profile: bool, emit_events: str | None):
    """A Recorder when any telemetry flag asked for one, else None."""
    if metrics is None and not profile and emit_events is None:
        return None
    from repro.obs import Recorder

    return Recorder()


def _load_observed_statistics(path: str | None):
    """Mine an ObservedStatistics provider from a recorded event log."""
    if path is None:
        return None
    from repro.obs import EventLog
    from repro.sources.observed import ObservedStatistics

    statistics = ObservedStatistics.from_events(EventLog.read(path))
    print(
        f"planning from observed statistics: "
        f"{statistics.observations} attempts mined from {path}, "
        f"universe ~{statistics.universe_size()}"
    )
    print()
    return statistics


def _write_events(events, path: str) -> None:
    """Persist an event log, creating the target directory if needed."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    events.write(path)
    print()
    print(f"wrote {len(events)} events to {path}")


def _emit_telemetry(
    answer, recorder, metrics: str | None, profile: bool,
    emit_events: str | None,
) -> None:
    """Print/persist whatever telemetry the flags asked for."""
    if recorder is None:
        return
    if profile and answer.execution.profile is not None:
        print()
        print(answer.execution.profile.render())
    if metrics is not None and recorder.metrics is not None:
        print()
        if metrics == "prom":
            print(recorder.metrics.to_prometheus())
        else:
            print(recorder.metrics.to_json_text())
    if emit_events is not None and recorder.events is not None:
        _write_events(recorder.events, emit_events)


def _command_query(
    spec: str,
    sql: str,
    optimizer_name: str,
    adaptive: bool = False,
    runtime: bool = False,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    retries: int = 3,
    timeline: bool = False,
    hedge_delay: float | None = None,
    breaker: str = "off",
    replan: int = 0,
    robust: bool = False,
    robustness: float = 1.0,
    load_balance: bool = False,
    metrics: str | None = None,
    profile: bool = False,
    emit_events: str | None = None,
    observed_stats: str | None = None,
    search: str = "auto",
    beam_width: int = DEFAULT_BEAM_WIDTH,
    plan_cache: int | None = None,
    deadline: float | None = None,
    data_faults: str | None = None,
    verify: str = "off",
    quarantine: bool = False,
    aggregate: bool = False,
    pushdown: str = "auto",
) -> int:
    federation = load_federation(spec)
    recorder = _make_recorder(metrics, profile, emit_events)
    statistics = _load_observed_statistics(observed_stats)
    if not runtime and (
        data_faults is not None or verify != "off" or quarantine
    ):
        from repro.errors import CostModelError

        raise CostModelError(
            "--data-faults/--verify/--quarantine need the runtime "
            "backend; add --runtime"
        )
    from repro.query.sqlparse import is_aggregate_query

    aggregate = aggregate or is_aggregate_query(sql)
    if runtime:
        return _run_runtime(
            federation, sql, optimizer_name, fault_rate, fault_seed,
            retries, timeline, hedge_delay, breaker, replan,
            robust=robust, robustness=robustness,
            load_balance=load_balance,
            recorder=recorder, statistics=statistics,
            metrics=metrics, profile=profile, emit_events=emit_events,
            search=search, beam_width=beam_width, plan_cache=plan_cache,
            deadline=deadline,
            data_faults=data_faults, verify=verify, quarantine=quarantine,
            aggregate=aggregate, pushdown=pushdown,
        )
    mediator = Mediator(
        federation,
        statistics=statistics,
        optimizer=(
            "robust"
            if robust
            else _make_optimizer(optimizer_name, search, beam_width)
        ),
        robustness=robustness,
        recorder=recorder,
        plan_cache=plan_cache,
        search=search,
        beam_width=beam_width,
    )
    if aggregate:
        return _run_aggregate(mediator, sql, pushdown)
    if adaptive:
        return _run_adaptive(mediator, sql)
    answer = mediator.answer(sql)
    print(answer.plan.pretty())
    print()
    print(answer.execution.trace(answer.plan))
    print()
    print("answer:", ", ".join(sorted(map(str, answer.items))) or "(empty)")
    print(answer.summary())
    if mediator.plan_cache is not None:
        print(mediator.plan_cache.summary())
    _emit_telemetry(answer, recorder, metrics, profile, emit_events)
    return 0


def _run_aggregate(
    mediator: Mediator,
    sql: str,
    pushdown: str,
    deadline: float | None = None,
) -> int:
    """Run an aggregation fusion query and print both phases."""
    mode: bool | str = {"auto": True, "force": "force", "off": False}[pushdown]
    answer = mediator.answer_aggregate(
        sql, budget_s=deadline, pushdown=mode
    )
    print(answer.fusion.plan.pretty())
    print()
    print(answer.aggregate_plan.render())
    print()
    print(answer.result.pretty())
    print(answer.summary())
    return 0


def _run_runtime(
    federation,
    sql: str,
    optimizer_name: str,
    fault_rate: float,
    fault_seed: int,
    retries: int,
    timeline: bool,
    hedge_delay: float | None = None,
    breaker: str = "off",
    replan: int = 0,
    robust: bool = False,
    robustness: float = 1.0,
    load_balance: bool = False,
    recorder=None,
    statistics=None,
    metrics: str | None = None,
    profile: bool = False,
    emit_events: str | None = None,
    search: str = "auto",
    beam_width: int = DEFAULT_BEAM_WIDTH,
    plan_cache: int | None = None,
    deadline: float | None = None,
    data_faults: str | None = None,
    verify: str = "off",
    quarantine: bool = False,
    aggregate: bool = False,
    pushdown: str = "auto",
) -> int:
    from dataclasses import replace as dc_replace

    from repro.runtime import (
        BreakerConfig,
        FaultInjector,
        FaultProfile,
        RetryPolicy,
        completeness_report,
    )

    breaker_config = {
        "off": None,
        "default": BreakerConfig.default(),
        "aggressive": BreakerConfig.aggressive(),
    }[breaker]
    base_profile = FaultProfile.flaky(fault_rate)
    profiles: dict | FaultProfile = base_profile
    if data_faults is not None:
        parsed = _parse_data_faults(data_faults)
        if isinstance(parsed, dict):
            profiles = {
                name: dc_replace(base_profile, data=data)
                for name, data in parsed.items()
            }
        else:
            profiles = dc_replace(base_profile, data=parsed)
    mediator = Mediator(
        federation,
        statistics=statistics,
        optimizer=(
            "robust"
            if robust
            else _make_optimizer(optimizer_name, search, beam_width)
        ),
        backend="runtime",
        faults=FaultInjector(
            profiles, seed=fault_seed, default=base_profile
        ),
        verify=verify if verify != "off" else False,
        quarantine=quarantine or None,
        retry_policy=RetryPolicy(max_retries=retries),
        hedge_delay_s=hedge_delay,
        breaker=breaker_config,
        replan=replan,
        robustness=robustness,
        load_balance=load_balance,
        recorder=recorder,
        plan_cache=plan_cache,
        search=search,
        beam_width=beam_width,
    )
    if aggregate:
        return _run_aggregate(mediator, sql, pushdown, deadline=deadline)
    answer = mediator.answer(sql, budget_s=deadline)
    assert answer.runtime is not None
    print(answer.plan.pretty())
    print()
    if robust:
        opt = answer.optimization
        print(
            f"robust ranking (λ={robustness:g}): "
            f"E[completeness] {opt.expected_completeness:.3f}, "
            f"utility {opt.utility:.1f}"
        )
        for candidate in opt.candidates:
            print(f"  {candidate.summary()}")
        print()
    if timeline:
        print(answer.runtime.trace.timeline())
        print()
        print(answer.runtime.trace.utilization_report())
        print()
    if answer.resilient is not None and answer.resilient.replans:
        print(f"replanning: {answer.resilient.summary()}")
    if breaker_config is not None:
        print(mediator.runtime.health.report())
        print()
    print("answer:", ", ".join(sorted(map(str, answer.items))) or "(empty)")
    print(answer.summary())
    if verify != "off":
        quarantined = sorted(mediator.runtime.health.quarantined_names())
        if quarantined:
            print("quarantined:", ", ".join(quarantined))
    if answer.execution.deadline_expired:
        missing = (
            ", ".join(answer.execution.incomplete_conditions) or "(unknown)"
        )
        print(
            f"deadline {deadline:g}s hit: partial answer on time; "
            f"conditions cut: {missing}"
        )
    if fault_rate > 0:
        report = completeness_report(
            federation, answer.query, answer.items,
            trace=answer.runtime.trace,
        )
        print(f"completeness: {report.summary()}")
    _emit_telemetry(answer, recorder, metrics, profile, emit_events)
    return 0


def _run_adaptive(mediator: Mediator, sql: str) -> int:
    from repro.mediator.adaptive import AdaptiveExecutor

    query = mediator._coerce(sql)
    executor = AdaptiveExecutor(
        mediator.federation, mediator.cost_model, mediator.estimator
    )
    result = executor.execute(query)
    for index, stage in enumerate(result.stages, start=1):
        choices = ", ".join(
            f"{source}:{kind}" for source, kind in stage.choices.items()
        )
        print(
            f"stage {index}: {stage.condition.to_sql()} "
            f"[{choices}] -> {stage.output_size} items, "
            f"cost {stage.actual_cost:.1f}"
        )
    print("answer:", ", ".join(sorted(map(str, result.items))) or "(empty)")
    print(result.summary())
    return 0


def _command_explain(
    spec: str,
    sql: str,
    optimizer_name: str,
    search: str = "auto",
    beam_width: int = DEFAULT_BEAM_WIDTH,
) -> int:
    federation = load_federation(spec)
    mediator = Mediator(
        federation,
        optimizer=_make_optimizer(optimizer_name, search, beam_width),
    )
    print(mediator.explain(sql))
    return 0


def _command_check(spec: str, sql: str) -> int:
    federation = load_federation(spec)
    try:
        query = parse_fusion_query(sql, view_name=federation.name)
        query.validate_against_schema(federation.schema)
    except NotAFusionQueryError as exc:
        print(f"NOT a fusion query: {exc}")
        return 1
    print("fusion query detected:")
    print(query.describe())
    return 0


#: Shorthand keys for --data-faults entries -> DataFaultProfile fields.
_DATA_FAULT_KEYS = {
    "truncated": "truncated_rate",
    "stale": "stale_rate",
    "duplicate": "duplicate_rate",
    "corrupt": "corrupt_rate",
}


def _parse_data_faults(text: str):
    """``[SRC:]KIND=RATE,...`` -> DataFaultProfile or {source: profile}."""
    from repro.errors import CostModelError
    from repro.runtime.faults import DataFaultProfile

    def bad(entry: str) -> CostModelError:
        return CostModelError(
            f"bad --data-faults entry {entry!r}; expected [SRC:]KIND=RATE "
            f"with KIND in {sorted(_DATA_FAULT_KEYS)} or a "
            "DataFaultProfile field name"
        )

    per_source: dict[str, dict[str, float]] = {}
    baseline: dict[str, float] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        source, __, body = entry.rpartition(":")
        kind, separator, value = body.partition("=")
        if not separator:
            raise bad(entry)
        field_name = _DATA_FAULT_KEYS.get(kind.strip(), kind.strip())
        try:
            rate = float(value)
        except ValueError:
            raise bad(entry) from None
        fields = per_source.setdefault(source, {}) if source else baseline
        fields[field_name] = rate
    if per_source and baseline:
        raise CostModelError(
            "--data-faults mixes global and per-source entries; name a "
            "source on every entry (SRC:KIND=RATE) or on none"
        )

    def build(fields: dict[str, float]) -> DataFaultProfile:
        try:
            return DataFaultProfile(**fields)
        except TypeError:
            raise CostModelError(
                f"unknown --data-faults field among {sorted(fields)}"
            ) from None

    if per_source:
        return {name: build(fields) for name, fields in per_source.items()}
    return build(baseline)


def _parse_tenant(text: str):
    """``NAME[:WEIGHT[:QUOTA]]`` -> TenantSpec."""
    from repro.errors import CostModelError
    from repro.serve import TenantSpec

    parts = text.split(":")
    if len(parts) > 3 or not parts[0]:
        raise CostModelError(
            f"bad --tenant {text!r}; expected NAME[:WEIGHT[:QUOTA]]"
        )
    try:
        weight = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
        quota = int(parts[2]) if len(parts) > 2 and parts[2] else None
    except ValueError:
        raise CostModelError(
            f"bad --tenant {text!r}; expected NAME[:WEIGHT[:QUOTA]]"
        ) from None
    return TenantSpec(parts[0], weight=weight, quota=quota)


def _parse_churn(text: str):
    """``START:END:SRC,SRC[:RATE]`` -> ChurnWave."""
    from repro.errors import CostModelError
    from repro.serve import ChurnWave

    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise CostModelError(
            f"bad --churn {text!r}; expected START:END:SRC,SRC[:RATE]"
        )
    try:
        start_s, end_s = float(parts[0]), float(parts[1])
        rate = float(parts[3]) if len(parts) == 4 else 0.5
    except ValueError:
        raise CostModelError(
            f"bad --churn {text!r}; expected START:END:SRC,SRC[:RATE]"
        ) from None
    sources = tuple(s for s in parts[2].split(",") if s)
    return ChurnWave(start_s, end_s, sources=sources, rate=rate)


def _command_workload(args) -> int:
    from repro.runtime.faults import FaultProfile
    from repro.serve import (
        MediatorService,
        WorkloadSpec,
        generate_arrivals,
        percentile,
        run_workload,
    )

    federation = load_federation(args.spec)
    tenants = [_parse_tenant(text) for text in args.tenant] or None
    churn = _parse_churn(args.churn) if args.churn else None
    faults = (
        FaultProfile.flaky(args.fault_rate) if args.fault_rate > 0 else None
    )
    data_faults = (
        _parse_data_faults(args.data_faults)
        if args.data_faults is not None
        else None
    )
    service = MediatorService(
        federation,
        mode=args.mode,
        tenants=tenants,
        workers=args.workers,
        pool_slots=args.pool_slots,
        queue_limit=args.queue_limit,
        seed=args.seed,
        faults=faults,
        churn=churn,
        data_faults=data_faults,
        breaker=args.breaker,
        verify=args.verify,
        quarantine=args.quarantine,
        shed_policy=args.shed_policy,
        planning_budget=args.planning_budget,
    )
    spec = WorkloadSpec(
        queries=tuple(args.sql),
        tenants=tuple(service.tenants.values()),
        count=args.count,
        rate_qps=args.rate_qps,
        seed=args.seed,
        deadline_s=args.deadline,
    )
    try:
        report = run_workload(service, generate_arrivals(spec))
    finally:
        if args.mode == "threads":
            service.close()
    print(
        f"workload: {args.count} arrivals at {args.rate_qps:g} q/s "
        f"(seed {args.seed}, mode {args.mode})"
    )
    print(report.summary())
    for name in sorted(report.admitted_by_tenant):
        latencies = report.latency_by_tenant.get(name, [])
        print(
            f"  tenant {name}: {report.admitted_by_tenant[name]} "
            f"admitted, p95 {percentile(latencies, 95):.3f}s"
        )
    for reason in sorted(report.rejected):
        print(f"  shed ({reason}): {report.rejected[reason]}")
    if args.deadline is not None:
        print(
            f"  deadlines ({args.deadline:g}s): "
            f"{report.shed_deadline} shed, "
            f"{report.deadline_misses} missed, "
            f"{report.partial_answers} partial answers"
        )
    if service.plan_cache is not None:
        print(service.plan_cache.summary())
    if service.spans is not None:
        print(report.phase_breakdown())
    if args.slo is not None:
        from repro.obs.slo import SLOMonitor, parse_slo_spec

        monitor = SLOMonitor(parse_slo_spec(args.slo))
        print(SLOMonitor.render(monitor.evaluate(service.metrics)))
    if args.quarantine:
        quarantined = sorted(service.health.quarantined_names())
        if quarantined:
            print("  quarantined:", ", ".join(quarantined))
    if args.metrics is not None:
        print()
        if args.metrics == "prom":
            print(service.metrics.to_prometheus())
        else:
            print(service.metrics.to_json_text())
    if args.emit_events is not None:
        _write_events(service.recorder.events, args.emit_events)
    if args.trace_export is not None:
        if service.spans is None:
            print("trace export: tracing is off, nothing to write")
        else:
            service.spans.write_chrome_trace(args.trace_export)
            print(
                f"wrote {args.trace_export} "
                f"({len(service.spans)} spans)"
            )
    return 0


def _command_export_dmv(path: str) -> int:
    federation, __ = dmv_fig1()
    save_federation(federation, path)
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "demo":
            return _command_demo()
        if args.command == "query":
            return _command_query(
                args.spec,
                args.sql,
                args.optimizer,
                adaptive=args.adaptive,
                runtime=args.runtime,
                fault_rate=args.fault_rate,
                fault_seed=args.fault_seed,
                retries=args.retries,
                timeline=args.timeline,
                hedge_delay=args.hedge_delay,
                breaker=args.breaker,
                replan=args.replan,
                robust=args.robust,
                robustness=args.robustness_lambda,
                load_balance=args.load_balance,
                metrics=args.metrics,
                profile=args.profile,
                emit_events=args.emit_events,
                observed_stats=args.observed_stats,
                search=args.search,
                beam_width=args.beam_width,
                plan_cache=args.plan_cache,
                deadline=args.deadline,
                data_faults=args.data_faults,
                verify=args.verify,
                quarantine=args.quarantine,
                aggregate=args.aggregate,
                pushdown=args.pushdown,
            )
        if args.command == "explain":
            return _command_explain(
                args.spec,
                args.sql,
                args.optimizer,
                search=args.search,
                beam_width=args.beam_width,
            )
        if args.command == "check":
            return _command_check(args.spec, args.sql)
        if args.command == "workload":
            return _command_workload(args)
        return _command_export_dmv(args.path)
    except (FusionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
