"""The ``python -m repro`` command line.

Subcommands:

* ``demo`` — run the Fig. 1 DMV example end to end;
* ``query SPEC SQL`` — load a federation spec (see :mod:`repro.io`),
  run a fusion query, print plan + trace + answer;
* ``explain SPEC SQL`` — plan only, with per-step estimated costs;
* ``check SPEC SQL`` — report whether the SQL matches the fusion
  pattern (the Sec. 5 detector), without executing anything;
* ``export-dmv PATH`` — write the Fig. 1 federation as a spec file, a
  convenient starting point for hand-edited federations.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import FusionError, NotAFusionQueryError
from repro.io import load_federation, save_federation
from repro.mediator.session import Mediator
from repro.optimize import (
    FilterOptimizer,
    GreedySJAOptimizer,
    SJAOptimizer,
    SJAPlusOptimizer,
    SJOptimizer,
)
from repro.query.sqlparse import parse_fusion_query
from repro.sources.generators import dmv_fig1

_OPTIMIZERS = {
    "filter": FilterOptimizer,
    "sj": SJOptimizer,
    "sja": SJAOptimizer,
    "sja+": SJAPlusOptimizer,
    "greedy": GreedySJAOptimizer,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Fusion queries over (simulated) Internet databases.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("demo", help="run the Fig. 1 DMV example")

    for name, help_text in (
        ("query", "optimize + execute a fusion query"),
        ("explain", "show the chosen plan without executing"),
        ("check", "test whether SQL matches the fusion pattern"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("spec", help="path to a federation spec (JSON)")
        sub.add_argument("sql", help="the fusion query in SQL")
        if name != "check":
            sub.add_argument(
                "--optimizer",
                choices=sorted(_OPTIMIZERS),
                default="sja+",
                help="planning algorithm (default: sja+)",
            )
        if name == "query":
            sub.add_argument(
                "--adaptive",
                action="store_true",
                help="interleave planning and execution (re-plan each "
                "stage with actual intermediate sizes)",
            )

    export = subparsers.add_parser(
        "export-dmv", help="write the Fig. 1 federation as a spec file"
    )
    export.add_argument("path", help="output JSON path")
    return parser


def _command_demo() -> int:
    federation, query = dmv_fig1()
    mediator = Mediator(federation, verify=True)
    answer = mediator.answer(query)
    print(query.to_sql())
    print()
    print(answer.plan.pretty())
    print()
    print(answer.execution.trace(answer.plan))
    print()
    print("answer:", ", ".join(sorted(answer.items)))
    return 0


def _command_query(
    spec: str, sql: str, optimizer_name: str, adaptive: bool = False
) -> int:
    federation = load_federation(spec)
    mediator = Mediator(
        federation, optimizer=_OPTIMIZERS[optimizer_name]()
    )
    if adaptive:
        return _run_adaptive(mediator, sql)
    answer = mediator.answer(sql)
    print(answer.plan.pretty())
    print()
    print(answer.execution.trace(answer.plan))
    print()
    print("answer:", ", ".join(sorted(map(str, answer.items))) or "(empty)")
    print(answer.summary())
    return 0


def _run_adaptive(mediator: Mediator, sql: str) -> int:
    from repro.mediator.adaptive import AdaptiveExecutor

    query = mediator._coerce(sql)
    executor = AdaptiveExecutor(
        mediator.federation, mediator.cost_model, mediator.estimator
    )
    result = executor.execute(query)
    for index, stage in enumerate(result.stages, start=1):
        choices = ", ".join(
            f"{source}:{kind}" for source, kind in stage.choices.items()
        )
        print(
            f"stage {index}: {stage.condition.to_sql()} "
            f"[{choices}] -> {stage.output_size} items, "
            f"cost {stage.actual_cost:.1f}"
        )
    print("answer:", ", ".join(sorted(map(str, result.items))) or "(empty)")
    print(result.summary())
    return 0


def _command_explain(spec: str, sql: str, optimizer_name: str) -> int:
    federation = load_federation(spec)
    mediator = Mediator(
        federation, optimizer=_OPTIMIZERS[optimizer_name]()
    )
    print(mediator.explain(sql))
    return 0


def _command_check(spec: str, sql: str) -> int:
    federation = load_federation(spec)
    try:
        query = parse_fusion_query(sql, view_name=federation.name)
        query.validate_against_schema(federation.schema)
    except NotAFusionQueryError as exc:
        print(f"NOT a fusion query: {exc}")
        return 1
    print("fusion query detected:")
    print(query.describe())
    return 0


def _command_export_dmv(path: str) -> int:
    federation, __ = dmv_fig1()
    save_federation(federation, path)
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "demo":
            return _command_demo()
        if args.command == "query":
            return _command_query(
                args.spec, args.sql, args.optimizer, adaptive=args.adaptive
            )
        if args.command == "explain":
            return _command_explain(args.spec, args.sql, args.optimizer)
        if args.command == "check":
            return _command_check(args.spec, args.sql)
        return _command_export_dmv(args.path)
    except (FusionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
