"""The operation vocabulary of fusion-query plans.

Each operation writes one register (its ``target``) and reads zero or
more registers.  Registers hold either *item sets* (the normal case) or
*relations* (targets of ``lq`` loads).  Operations are immutable values;
plans are sequences of them.

Remote operations (cost-bearing, Sec. 2.3/2.4):

* :class:`SelectionOp` — ``X := sq(c, R_j)``
* :class:`SemijoinOp`  — ``X := sjq(c, R_j, Y)``
* :class:`LoadOp`      — ``T := lq(R_j)`` (Sec. 4)

Local operations (free at the mediator):

* :class:`UnionOp`, :class:`IntersectOp` — simple-plan combinators
* :class:`DifferenceOp` — SJA+'s semijoin-set pruning (Sec. 4)
* :class:`LocalSelectionOp` — ``X := sq(c, T)`` over a loaded relation
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.relational.conditions import Condition


class RegisterType(enum.Enum):
    """What a register holds."""

    ITEMS = "items"
    RELATION = "relation"


class OpKind(enum.Enum):
    """Discriminator used by the classifier and the executor."""

    SELECTION = "sq"
    SEMIJOIN = "sjq"
    LOAD = "lq"
    LOCAL_SELECTION = "local-sq"
    UNION = "union"
    INTERSECT = "intersect"
    DIFFERENCE = "difference"


class Operation:
    """Base class for plan operations (see module docstring)."""

    __slots__ = ()

    kind: OpKind
    #: True for operations that contact a source (and therefore cost).
    remote: bool = False

    @property
    def target(self) -> str:
        raise NotImplementedError

    def reads(self) -> tuple[str, ...]:
        """Registers this operation consumes, in order."""
        raise NotImplementedError

    @property
    def result_type(self) -> RegisterType:
        return RegisterType.ITEMS

    def render(self, labels: dict[Condition, str] | None = None) -> str:
        """Paper-style rendering; ``labels`` maps conditions to c_i names."""
        raise NotImplementedError

    def _label(
        self, condition: Condition, labels: dict[Condition, str] | None
    ) -> str:
        if labels and condition in labels:
            return labels[condition]
        return condition.to_sql()


@dataclass(frozen=True)
class SelectionOp(Operation):
    """``target := sq(condition, R_source)`` — a remote selection query."""

    target_register: str
    condition: Condition
    source: str

    kind = OpKind.SELECTION
    remote = True

    @property
    def target(self) -> str:
        return self.target_register

    def reads(self) -> tuple[str, ...]:
        return ()

    def render(self, labels: dict[Condition, str] | None = None) -> str:
        return (
            f"{self.target_register} := "
            f"sq({self._label(self.condition, labels)}, {self.source})"
        )


@dataclass(frozen=True)
class SemijoinOp(Operation):
    """``target := sjq(condition, R_source, input)`` — a remote semijoin."""

    target_register: str
    condition: Condition
    source: str
    input_register: str

    kind = OpKind.SEMIJOIN
    remote = True

    @property
    def target(self) -> str:
        return self.target_register

    def reads(self) -> tuple[str, ...]:
        return (self.input_register,)

    def render(self, labels: dict[Condition, str] | None = None) -> str:
        return (
            f"{self.target_register} := "
            f"sjq({self._label(self.condition, labels)}, {self.source}, "
            f"{self.input_register})"
        )


@dataclass(frozen=True)
class LoadOp(Operation):
    """``target := lq(R_source)`` — load the source's entire relation."""

    target_register: str
    source: str

    kind = OpKind.LOAD
    remote = True

    @property
    def target(self) -> str:
        return self.target_register

    def reads(self) -> tuple[str, ...]:
        return ()

    @property
    def result_type(self) -> RegisterType:
        return RegisterType.RELATION

    def render(self, labels: dict[Condition, str] | None = None) -> str:
        return f"{self.target_register} := lq({self.source})"


@dataclass(frozen=True)
class LocalSelectionOp(Operation):
    """``target := sq(condition, input)`` applied locally on a loaded relation.

    The paper's footnote 7 notes the input is, strictly speaking, a set of
    tuples (condition attributes are needed), which is why the input must
    be a RELATION register produced by a :class:`LoadOp`.
    """

    target_register: str
    condition: Condition
    input_register: str

    kind = OpKind.LOCAL_SELECTION
    remote = False

    @property
    def target(self) -> str:
        return self.target_register

    def reads(self) -> tuple[str, ...]:
        return (self.input_register,)

    def render(self, labels: dict[Condition, str] | None = None) -> str:
        return (
            f"{self.target_register} := "
            f"sq({self._label(self.condition, labels)}, {self.input_register})"
        )


@dataclass(frozen=True)
class UnionOp(Operation):
    """``target := in_1 ∪ in_2 ∪ ...`` — free local combination."""

    target_register: str
    inputs: tuple[str, ...]

    kind = OpKind.UNION
    remote = False

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("union requires at least one input register")

    @property
    def target(self) -> str:
        return self.target_register

    def reads(self) -> tuple[str, ...]:
        return self.inputs

    def render(self, labels: dict[Condition, str] | None = None) -> str:
        return f"{self.target_register} := " + " ∪ ".join(self.inputs)


@dataclass(frozen=True)
class IntersectOp(Operation):
    """``target := in_1 ∩ in_2 ∩ ...`` — free local combination."""

    target_register: str
    inputs: tuple[str, ...]

    kind = OpKind.INTERSECT
    remote = False

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("intersection requires at least one input register")

    @property
    def target(self) -> str:
        return self.target_register

    def reads(self) -> tuple[str, ...]:
        return self.inputs

    def render(self, labels: dict[Condition, str] | None = None) -> str:
        return f"{self.target_register} := " + " ∩ ".join(self.inputs)


@dataclass(frozen=True)
class DifferenceOp(Operation):
    """``target := left − right`` — SJA+'s binding-set pruning (Sec. 4)."""

    target_register: str
    left: str
    right: str

    kind = OpKind.DIFFERENCE
    remote = False

    @property
    def target(self) -> str:
        return self.target_register

    def reads(self) -> tuple[str, ...]:
        return (self.left, self.right)

    def render(self, labels: dict[Condition, str] | None = None) -> str:
        return f"{self.target_register} := {self.left} − {self.right}"


#: Operations allowed in *simple* plans (Sec. 2.3).
SIMPLE_OP_KINDS = frozenset(
    {OpKind.SELECTION, OpKind.SEMIJOIN, OpKind.UNION, OpKind.INTERSECT}
)
