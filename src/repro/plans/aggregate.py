"""The post-fusion aggregate node and its per-source pushdown plan.

An aggregation fusion query executes in two stages: the fusion plan
fixes the qualifying entity set exactly as in the paper, then the
*aggregate node* summarizes every union-view row belonging to a
qualifying entity.  For each source the mediator has two ways to obtain
that evidence:

* **fetch** — second-phase ``fetch`` of the raw matching tuples, with
  partial aggregation at the mediator (always possible); or
* **pushdown** — ship the entity bindings and let the wrapper return
  decomposable partial states (``aq``), available only when the source
  declares ``supports_aggregates`` and the mediator is not running in
  ``vote`` verification (the voter must see raw tuples).

:func:`plan_aggregate` costs both options per source under the link's
cost model and picks the cheaper admissible one; partials are always
merged in sorted source order so both strategies produce bit-identical
floats (see :mod:`repro.relational.aggregates`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.query.aggregate import AggregateQuery
from repro.sources.registry import Federation


@dataclass(frozen=True)
class AggregateTask:
    """How one source contributes evidence to the aggregate node."""

    source: str
    pushdown: bool
    estimated_cost: float
    estimated_rows: float

    def render(self) -> str:
        verb = "aq" if self.pushdown else "fetch"
        return (
            f"P_{self.source} := {verb}({self.source}, X)"
            f"  # est cost {self.estimated_cost:.1f}"
        )


@dataclass(frozen=True)
class AggregatePlan:
    """The aggregate node: one task per source, merged in sorted order."""

    specs: tuple
    group_by: tuple[str, ...]
    tasks: tuple[AggregateTask, ...]

    @property
    def estimated_cost(self) -> float:
        return sum(task.estimated_cost for task in self.tasks)

    @property
    def pushdown_sources(self) -> tuple[str, ...]:
        return tuple(t.source for t in self.tasks if t.pushdown)

    @property
    def fetch_sources(self) -> tuple[str, ...]:
        return tuple(t.source for t in self.tasks if not t.pushdown)

    def render(self) -> str:
        aggs = ", ".join(str(s) for s in self.specs)
        group = (
            f" GROUP BY {', '.join(self.group_by)}" if self.group_by else ""
        )
        lines = [f"aggregate node: {aggs}{group}"]
        for i, task in enumerate(self.tasks, start=1):
            lines.append(f"{i:>3}) {task.render()}")
        lines.append(
            f"     A := merge partials in sorted source order "
            f"(est cost {self.estimated_cost:.1f})"
        )
        return "\n".join(lines)


def _estimated_group_count(
    estimated_rows: float, group_by: tuple[str, ...], answer_size: int
) -> float:
    """A coarse group-count estimate for the pushdown answer.

    With no GROUP BY there is exactly one group; grouping by the merge
    attribute (the common case) yields at most one group per qualifying
    entity; anything else is bounded by the row count.
    """
    if not group_by:
        return 1.0
    return min(estimated_rows, float(max(1, answer_size)))


def plan_aggregate(
    query: AggregateQuery,
    federation: Federation,
    answer_size: int,
    allow_pushdown: bool = True,
    statistics: Any | None = None,
    force_pushdown: bool = False,
) -> AggregatePlan:
    """Choose fetch vs pushdown per source for the aggregate node.

    ``answer_size`` is the (known, post-fusion) number of qualifying
    entities; ``statistics`` (a
    :class:`~repro.sources.statistics.StatisticsProvider`) refines the
    per-source matching-row estimate when available, otherwise the
    source's own cardinality is scaled by the answer's share of its
    distinct items.  ``force_pushdown`` skips the cost comparison and
    pushes down at every capable source (tests and benchmarks use it to
    pin the strategy).
    """
    specs = tuple(query.specs)
    group_by = tuple(query.group_by)
    tasks = []
    for source in sorted(federation, key=lambda s: s.name):
        rows_total = len(source.table)
        distinct = len(source.table.relation.items())
        if statistics is not None:
            try:
                rows_total = statistics.cardinality(source.name)
                distinct = max(1, len(statistics.distinct_items(source.name)))
            except Exception:
                distinct = max(1, distinct)
        distinct = max(1, distinct)
        # Expected matching rows: each qualifying entity matches the
        # source's average number of rows per entity, capped by overlap.
        est_rows = rows_total * min(1.0, answer_size / distinct)
        link = source.link
        fetch_cost = link.request_cost(
            items_sent=answer_size, items_received=0, rows_loaded=round(est_rows)
        )
        if allow_pushdown and source.capabilities.supports_aggregates:
            groups = _estimated_group_count(est_rows, group_by, answer_size)
            push_cost = link.request_cost(
                items_sent=answer_size,
                items_received=round(groups * max(1, len(specs))),
            )
            if force_pushdown or push_cost <= fetch_cost:
                tasks.append(
                    AggregateTask(
                        source=source.name,
                        pushdown=True,
                        estimated_cost=push_cost,
                        estimated_rows=est_rows,
                    )
                )
                continue
        tasks.append(
            AggregateTask(
                source=source.name,
                pushdown=False,
                estimated_cost=fetch_cost,
                estimated_rows=est_rows,
            )
        )
    return AggregatePlan(specs=specs, group_by=group_by, tasks=tuple(tasks))
