"""Static plan costing: estimated cost of *any* plan under a cost model.

The optimizers of Sec. 3 cost staged plans inline while searching (the
pseudocode of Figs. 3/4); this module is the general-purpose counterpart
that can cost an arbitrary plan — including the extended plans SJA+
produces and the non-staged simple plans the brute-force search samples.

Register sizes are propagated as expected values.  Local set operations
treat register contents as independent random subsets of the item
universe ``D``: a register of estimated size ``s`` contains each item
with probability ``p = s / D``, so

* union:        ``D * (1 - prod_k (1 - p_k))``
* intersection: ``D * prod_k p_k``
* difference:   ``D * p_left * (1 - p_right)``

which is exactly the independence assumption the paper's optimizers
already make for intermediate sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costs.estimates import SizeEstimator
from repro.costs.model import CostModel
from repro.errors import PlanValidationError
from repro.plans.operations import (
    DifferenceOp,
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    Operation,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan


@dataclass(frozen=True)
class OpCostEstimate:
    """Cost/size estimate of one plan step."""

    step: int
    operation: Operation
    cost: float
    output_size: float


@dataclass(frozen=True)
class PlanCostBreakdown:
    """Estimated total cost and per-step detail of a plan."""

    total: float
    steps: tuple[OpCostEstimate, ...]
    result_size: float

    def remote_total(self) -> float:
        """Total over remote operations only (equals ``total`` since local
        ops are free, but kept for symmetry with execution traces)."""
        return sum(step.cost for step in self.steps if step.operation.remote)

    def by_source(self) -> dict[str, float]:
        """Estimated cost attributed to each source."""
        totals: dict[str, float] = {}
        for step in self.steps:
            if step.operation.remote:
                source = step.operation.source  # type: ignore[attr-defined]
                totals[source] = totals.get(source, 0.0) + step.cost
        return totals


def estimate_plan_cost(
    plan: Plan,
    cost_model: CostModel,
    estimator: SizeEstimator,
) -> PlanCostBreakdown:
    """Estimate the cost of ``plan`` under ``cost_model``.

    Example:
        >>> from repro.sources.generators import dmv_fig1
        >>> from repro.sources.statistics import ExactStatistics
        >>> from repro.costs.charge import ChargeCostModel
        >>> from repro.plans.builder import build_filter_plan
        >>> federation, query = dmv_fig1()
        >>> estimator = SizeEstimator(ExactStatistics(federation),
        ...                           federation.source_names)
        >>> model = ChargeCostModel.for_federation(federation, estimator)
        >>> breakdown = estimate_plan_cost(
        ...     build_filter_plan(query, federation.source_names),
        ...     model, estimator)
        >>> round(breakdown.total, 1)
        68.0
    """
    universe = float(estimator.statistics.universe_size())
    sizes: dict[str, float] = {}
    relation_provenance: dict[str, str] = {}
    steps: list[OpCostEstimate] = []
    total = 0.0

    def probability(register: str) -> float:
        if universe <= 0:
            return 0.0
        return min(1.0, sizes[register] / universe)

    for index, op in enumerate(plan.operations, start=1):
        if isinstance(op, SelectionOp):
            cost = cost_model.sq_cost(op.condition, op.source)
            size = estimator.sq_output_size(op.condition, op.source)
        elif isinstance(op, SemijoinOp):
            input_size = sizes[op.input_register]
            cost = cost_model.sjq_cost(op.condition, op.source, input_size)
            size = estimator.sjq_output_size(
                op.condition, op.source, input_size
            )
        elif isinstance(op, LoadOp):
            cost = cost_model.lq_cost(op.source)
            size = float(estimator.statistics.cardinality(op.source))
            relation_provenance[op.target] = op.source
        elif isinstance(op, LocalSelectionOp):
            source = relation_provenance.get(op.input_register)
            if source is None:
                raise PlanValidationError(
                    f"local selection reads {op.input_register!r} which is "
                    "not a loaded relation"
                )
            cost = 0.0
            size = estimator.sq_output_size(op.condition, source)
        elif isinstance(op, UnionOp):
            cost = 0.0
            miss = 1.0
            for register in op.inputs:
                miss *= 1.0 - probability(register)
            size = universe * (1.0 - miss)
        elif isinstance(op, IntersectOp):
            cost = 0.0
            product = 1.0
            for register in op.inputs:
                product *= probability(register)
            size = universe * product
        elif isinstance(op, DifferenceOp):
            cost = 0.0
            size = universe * probability(op.left) * (
                1.0 - probability(op.right)
            )
        else:  # pragma: no cover - new op kinds must be handled explicitly
            raise PlanValidationError(f"cannot cost operation {op!r}")

        sizes[op.target] = size
        total += cost
        steps.append(OpCostEstimate(index, op, cost, size))

    return PlanCostBreakdown(
        total=total, steps=tuple(steps), result_size=sizes[plan.result]
    )
