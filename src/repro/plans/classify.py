"""Classifying plans into the Sec. 2.5 taxonomy.

The classes, most specific first:

* FILTER — selection queries and local ∪/∩ only (Fig. 2(a));
* SEMIJOIN — staged, one condition at a time, *uniform* per-stage choice
  between selections and semijoins against ``X_{i-1}`` (Fig. 2(b));
* SEMIJOIN_ADAPTIVE — staged with *per-source* choices (Fig. 2(c));
* SIMPLE — any plan over sq/sjq/∪/∩ that is not staged (e.g. a semijoin
  whose binding set is an older intermediate);
* EXTENDED — uses lq, local selections, or set difference (the SJA+
  postoptimization outputs, Sec. 4).

Every filter plan is also a semijoin plan and every semijoin plan is
also semijoin-adaptive (the paper's classes are nested); ``classify``
returns the *most specific* class, and the ``is_*`` predicates implement
the nesting directly.
"""

from __future__ import annotations

import enum

from repro.plans.operations import (
    OpKind,
    SIMPLE_OP_KINDS,
    SemijoinOp,
)
from repro.plans.plan import Plan


class PlanClass(enum.Enum):
    """The plan taxonomy of Sec. 2.5 (+ EXTENDED from Sec. 4)."""

    FILTER = "filter"
    SEMIJOIN = "semijoin"
    SEMIJOIN_ADAPTIVE = "semijoin-adaptive"
    SIMPLE = "simple"
    EXTENDED = "extended"


def is_simple_plan(plan: Plan) -> bool:
    """True when the plan uses only simple-plan operations (Sec. 2.3)."""
    return all(op.kind in SIMPLE_OP_KINDS for op in plan.operations)


def is_filter_plan(plan: Plan) -> bool:
    """True when the plan uses only selections and local ∪/∩."""
    allowed = {OpKind.SELECTION, OpKind.UNION, OpKind.INTERSECT}
    return all(op.kind in allowed for op in plan.operations)


def _staged_blocks(plan: Plan) -> list[list] | None:
    """Split remote ops into contiguous per-condition blocks, or None.

    A staged plan touches each condition exactly once, in one contiguous
    run of remote operations.
    """
    blocks: list[list] = []
    seen_conditions = []
    for op in plan.remote_operations:
        condition = op.condition  # type: ignore[attr-defined]
        if seen_conditions and condition == seen_conditions[-1]:
            blocks[-1].append(op)
        else:
            if condition in seen_conditions:
                return None  # condition revisited -> not staged
            seen_conditions.append(condition)
            blocks.append([op])
    return blocks


def _stage_registers(plan: Plan, blocks: list[list]) -> list[str] | None:
    """The combined register of each stage, or None if unrecognizable.

    The stage register is the target of the last local operation
    executed after a block's remote ops and before the next block (or
    the plan result for the last block).
    """
    remote_positions = [
        index for index, op in enumerate(plan.operations) if op.remote
    ]
    # Position of the last remote op of each block within plan.operations.
    block_ends = []
    cursor = 0
    for block in blocks:
        cursor += len(block)
        block_ends.append(remote_positions[cursor - 1])
    registers: list[str] = []
    boundaries = block_ends[1:] + [len(plan.operations)]
    for end, boundary in zip(block_ends, boundaries):
        next_remote = next(
            (
                index
                for index in remote_positions
                if index > end
            ),
            len(plan.operations),
        )
        limit = min(boundary + 1, next_remote) if boundary < len(
            plan.operations
        ) else next_remote
        local_targets = [
            op.target
            for op in plan.operations[end + 1 : max(limit, next_remote)]
            if not op.remote
        ]
        if not local_targets:
            return None
        registers.append(local_targets[-1])
    return registers


def _staged_kind(plan: Plan) -> PlanClass | None:
    """SEMIJOIN / SEMIJOIN_ADAPTIVE / None for a simple, non-filter plan."""
    blocks = _staged_blocks(plan)
    if blocks is None or len(blocks) < 1:
        return None
    first_block = blocks[0]
    if any(op.kind is not OpKind.SELECTION for op in first_block):
        return None
    registers = _stage_registers(plan, blocks)
    if registers is None:
        return None
    uniform = True
    for stage_index, block in enumerate(blocks[1:], start=1):
        expected_input = registers[stage_index - 1]
        kinds = {op.kind for op in block}
        for op in block:
            if isinstance(op, SemijoinOp) and op.input_register != expected_input:
                return None  # binding set is not X_{i-1} -> merely simple
        if len(kinds) > 1:
            uniform = False
    return PlanClass.SEMIJOIN if uniform else PlanClass.SEMIJOIN_ADAPTIVE


def is_semijoin_adaptive_plan(plan: Plan) -> bool:
    """True when the plan is staged with per-source choices (or stricter)."""
    if not is_simple_plan(plan):
        return False
    if is_filter_plan(plan):
        return True  # filter ⊂ semijoin ⊂ semijoin-adaptive
    return _staged_kind(plan) is not None


def is_semijoin_plan(plan: Plan) -> bool:
    """True when the plan is staged with uniform per-stage choices."""
    if not is_simple_plan(plan):
        return False
    if is_filter_plan(plan):
        return True
    return _staged_kind(plan) is PlanClass.SEMIJOIN


def classify(plan: Plan) -> PlanClass:
    """Return the most specific Sec. 2.5 class of ``plan``.

    Example:
        >>> from repro.plans.builder import build_filter_plan
        >>> from repro.query.fusion import FusionQuery
        >>> query = FusionQuery.from_strings("L", ["V = 'dui'", "V = 'sp'"])
        >>> classify(build_filter_plan(query, ["R1", "R2"])).value
        'filter'
    """
    if not is_simple_plan(plan):
        return PlanClass.EXTENDED
    if is_filter_plan(plan):
        return PlanClass.FILTER
    staged = _staged_kind(plan)
    if staged is not None:
        return staged
    return PlanClass.SIMPLE
