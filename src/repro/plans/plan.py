"""The Plan container: a validated sequence of operations.

A :class:`Plan` is an ordered operation list plus the name of the result
register.  Validation enforces single assignment per register being read
before redefinition is not required by the paper's notation (Fig. 2
reassigns ``X_2 := X_2 ∩ X_1``), so registers *may* be overwritten; what
must hold is def-before-use, type agreement (item-set vs relation
registers), and a defined result.

Plans built by the staged builder additionally carry :class:`StageInfo`
annotations — one per condition — that postoptimization passes use to
locate each stage's source operations without re-deriving structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import PlanValidationError
from repro.plans.operations import (
    Operation,
    OpKind,
    RegisterType,
)
from repro.query.fusion import FusionQuery
from repro.relational.conditions import Condition


@dataclass(frozen=True)
class StageInfo:
    """Builder annotation: one condition's stage within a staged plan.

    Attributes:
        condition: The condition this stage evaluates.
        input_register: The register holding ``X_{i-1}`` (empty for the
            first stage).
        source_registers: The per-source output registers ``X_i_j`` in
            source order.
        stage_register: The register holding ``X_i`` after combination.
    """

    condition: Condition
    input_register: str
    source_registers: tuple[str, ...]
    stage_register: str


class Plan:
    """An executable fusion-query plan.

    Example:
        >>> from repro.plans.operations import SelectionOp, UnionOp
        >>> from repro.relational.parser import parse_condition
        >>> c = parse_condition("V = 'dui'")
        >>> plan = Plan(
        ...     [SelectionOp("X1", c, "R1"), SelectionOp("X2", c, "R2"),
        ...      UnionOp("X", ("X1", "X2"))],
        ...     result="X",
        ... )
        >>> plan.remote_op_count
        2
    """

    def __init__(
        self,
        operations: Sequence[Operation],
        result: str,
        query: FusionQuery | None = None,
        description: str = "",
        stages: Sequence[StageInfo] = (),
    ):
        self.operations: tuple[Operation, ...] = tuple(operations)
        self.result = result
        self.query = query
        self.description = description
        self.stages: tuple[StageInfo, ...] = tuple(stages)
        self._validate()

    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if not self.operations:
            raise PlanValidationError("a plan requires at least one operation")
        register_types: dict[str, RegisterType] = {}
        for index, op in enumerate(self.operations):
            for read in op.reads():
                if read not in register_types:
                    raise PlanValidationError(
                        f"step {index + 1} ({op.render()}) reads undefined "
                        f"register {read!r}"
                    )
            self._check_read_types(index, op, register_types)
            register_types[op.target] = op.result_type
        if self.result not in register_types:
            raise PlanValidationError(
                f"result register {self.result!r} is never defined"
            )
        if register_types[self.result] is not RegisterType.ITEMS:
            raise PlanValidationError(
                f"result register {self.result!r} holds a relation, not items"
            )

    @staticmethod
    def _check_read_types(
        index: int, op: Operation, register_types: dict[str, RegisterType]
    ) -> None:
        expected = RegisterType.ITEMS
        for position, read in enumerate(op.reads()):
            if op.kind is OpKind.LOCAL_SELECTION and position == 0:
                expected_here = RegisterType.RELATION
            else:
                expected_here = expected
            actual = register_types[read]
            if actual is not expected_here:
                raise PlanValidationError(
                    f"step {index + 1} ({op.render()}) reads {read!r} as "
                    f"{expected_here.value} but it holds {actual.value}"
                )

    # ------------------------------------------------------------------
    # Introspection

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Plan):
            return NotImplemented
        return (
            self.operations == other.operations and self.result == other.result
        )

    def __hash__(self) -> int:
        return hash((self.operations, self.result))

    def __repr__(self) -> str:
        return (
            f"Plan({len(self.operations)} ops, result={self.result!r}"
            f"{', ' + self.description if self.description else ''})"
        )

    @property
    def remote_operations(self) -> tuple[Operation, ...]:
        """The cost-bearing operations, in order."""
        return tuple(op for op in self.operations if op.remote)

    @property
    def remote_op_count(self) -> int:
        return len(self.remote_operations)

    def count_by_kind(self) -> dict[OpKind, int]:
        """Operation histogram, e.g. for plan-shape assertions in tests."""
        counts: dict[OpKind, int] = {}
        for op in self.operations:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def sources_used(self) -> frozenset[str]:
        """Names of sources the plan contacts."""
        return frozenset(
            op.source  # type: ignore[attr-defined]
            for op in self.operations
            if op.remote
        )

    def condition_labels(self) -> dict[Condition, str]:
        """Map conditions to ``c_i`` labels using the attached query."""
        if self.query is None:
            return {}
        return {
            condition: f"c{i + 1}"
            for i, condition in enumerate(self.query.conditions)
        }

    def pretty(self, use_labels: bool = True) -> str:
        """Numbered, paper-style listing of the plan.

        Example output (compare Fig. 2(c))::

            1) X1_1 := sq(c1, R1)
            2) X1_2 := sq(c1, R2)
            3) X1 := X1_1 ∪ X1_2
            ...
        """
        labels = self.condition_labels() if use_labels else None
        width = len(str(len(self.operations)))
        lines = []
        if self.description:
            lines.append(f"-- {self.description}")
        for index, op in enumerate(self.operations, start=1):
            lines.append(f"{str(index).rjust(width)}) {op.render(labels)}")
        lines.append(f"result: {self.result}")
        return "\n".join(lines)

    def with_description(self, description: str) -> "Plan":
        """A copy of this plan with a different description."""
        return Plan(
            self.operations,
            self.result,
            query=self.query,
            description=description,
            stages=self.stages,
        )
