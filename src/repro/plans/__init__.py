"""Plan representation: operations, plans, classification, costing, spaces.

Plans are first-class data — ordered sequences of operations over named
item-set registers, exactly the notation of Figs. 2 and 5:

    1) X1_1 := sq(c1, R1)
    2) X1_2 := sq(c1, R2)
    3) X1   := X1_1 ∪ X1_2
    ...

Simple-plan operations (Sec. 2.3): remote ``sq`` / ``sjq`` plus local
union and intersection.  Postoptimized plans (Sec. 4) add ``lq`` loads,
local selections over loaded relations, and set difference — these make
a plan *extended* (outside the simple-plan space).

The same representation is consumed by the optimizers (construction),
the classifier (Sec. 2.5 taxonomy), the static coster (estimated cost
under a cost model), the executor (actual evaluation), and the pretty
printer (paper-style listings).
"""

from repro.plans.operations import (
    DifferenceOp,
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    Operation,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.aggregate import AggregatePlan, AggregateTask, plan_aggregate
from repro.plans.plan import Plan, StageInfo
from repro.plans.builder import (
    StagedChoice,
    build_filter_plan,
    build_staged_plan,
)
from repro.plans.classify import PlanClass, classify
from repro.plans.cost import PlanCostBreakdown, estimate_plan_cost
from repro.plans.serialize import (
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from repro.plans.viz import plan_to_dot, schedule_gantt

__all__ = [
    "Operation",
    "SelectionOp",
    "SemijoinOp",
    "LoadOp",
    "LocalSelectionOp",
    "UnionOp",
    "IntersectOp",
    "DifferenceOp",
    "Plan",
    "StageInfo",
    "AggregatePlan",
    "AggregateTask",
    "plan_aggregate",
    "StagedChoice",
    "build_staged_plan",
    "build_filter_plan",
    "PlanClass",
    "classify",
    "estimate_plan_cost",
    "PlanCostBreakdown",
    "plan_to_dict",
    "plan_from_dict",
    "plan_to_json",
    "plan_from_json",
    "plan_to_dot",
    "schedule_gantt",
]
