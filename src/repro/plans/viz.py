"""Plan and schedule visualization.

Two renderers, both dependency-free:

* :func:`plan_to_dot` — the plan's dataflow as a Graphviz DOT digraph
  (operations as nodes, register flows as edges, sources as shaded
  boxes), for papers/slides/debugging: ``dot -Tpng plan.dot``;
* :func:`schedule_gantt` — an ASCII Gantt chart of a
  :class:`~repro.mediator.schedule.Schedule`, one row per remote
  operation, showing the parallel rounds and the semijoin barrier.
"""

from __future__ import annotations

from repro.mediator.schedule import Schedule
from repro.plans.operations import (
    LoadOp,
    SelectionOp,
    SemijoinOp,
)
from repro.plans.plan import Plan


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def plan_to_dot(plan: Plan, name: str = "plan") -> str:
    """Render a plan's dataflow as Graphviz DOT.

    Each operation becomes a node labelled with its paper-notation
    rendering; an edge ``A -> B`` means B reads a register A wrote.
    Remote operations are drawn as shaded boxes tagged with their
    source; local operations as plain ellipses.

    Example:
        >>> from repro.plans.builder import build_filter_plan
        >>> from repro.query.fusion import FusionQuery
        >>> query = FusionQuery.from_strings("L", ["V = 'a'"])
        >>> dot = plan_to_dot(build_filter_plan(query, ["R1"]))
        >>> "digraph" in dot and "sq(" in dot
        True
    """
    labels = plan.condition_labels()
    lines = [f'digraph "{_dot_escape(name)}" {{', "  rankdir=TB;"]
    writer_of: dict[str, int] = {}
    for index, op in enumerate(plan.operations, start=1):
        label = _dot_escape(op.render(labels))
        if op.remote:
            shape = 'shape=box, style=filled, fillcolor="#dce6f2"'
        else:
            shape = "shape=ellipse"
        lines.append(f'  op{index} [label="{index}) {label}", {shape}];')
        for register in op.reads():
            source_step = writer_of.get(register)
            if source_step is not None:
                lines.append(
                    f'  op{source_step} -> op{index} '
                    f'[label="{_dot_escape(register)}"];'
                )
        writer_of[op.target] = index
    result_step = writer_of[plan.result]
    lines.append(
        '  answer [label="answer", shape=doublecircle];'
    )
    lines.append(f'  op{result_step} -> answer [label="{plan.result}"];')
    lines.append("}")
    return "\n".join(lines)


def schedule_gantt(schedule: Schedule, width: int = 60) -> str:
    """ASCII Gantt chart of a parallel schedule (remote ops only).

    Example output::

        R1  sq(c1, R1)    |####......................|
        R2  sq(c1, R2)    |#####.....................|
        R1  sjq(c2,R1,X1) |......###############.....|
    """
    remote = [op for op in schedule.ops if op.operation.remote]
    if not remote:
        return "(no remote operations)"
    makespan = schedule.makespan_s or 1.0
    label_width = max(
        len(_op_label(scheduled)) for scheduled in remote
    )
    lines = []
    for scheduled in remote:
        start = int(round(scheduled.start_s / makespan * width))
        finish = max(start + 1, int(round(scheduled.finish_s / makespan * width)))
        finish = min(finish, width)
        bar = "." * start + "#" * (finish - start) + "." * (width - finish)
        lines.append(f"{_op_label(scheduled).ljust(label_width)} |{bar}|")
    lines.append(
        f"{'makespan'.ljust(label_width)}  {schedule.makespan_s:.3f}s "
        f"(serial {schedule.total_time_s:.3f}s, "
        f"speedup {schedule.parallel_speedup:.2f}x)"
    )
    return "\n".join(lines)


def _op_label(scheduled) -> str:
    op = scheduled.operation
    source = getattr(op, "source", "")
    if isinstance(op, SelectionOp):
        kind = "sq"
    elif isinstance(op, SemijoinOp):
        kind = "sjq"
    elif isinstance(op, LoadOp):
        kind = "lq"
    else:  # pragma: no cover - only remote kinds reach here
        kind = op.kind.value
    return f"{scheduled.step:>3}) {source:<6} {kind}->{op.target}"
