"""Plan-space enumeration, counting, and sampling.

Sec. 3 sizes the spaces the optimizers search: ``O(m! * 2^(m-2))``
distinct semijoin plans and ``O(m! * 2^(n(m-2)))`` semijoin-adaptive
plans.  This module provides:

* the raw (pre-deduplication) space sizes and generators over them,
  used by the C1 benchmark and by brute-force validation of SJ/SJA;
* the *shared staged-cost accounting* — the exact arithmetic of the
  Fig. 3/4 pseudocode — so that optimizers and enumerators cost plans
  identically (an optimality check is only meaningful when both sides
  use the same ruler);
* canonical deduplication of semijoin specs equivalent under the cost
  model (the source of the paper's ``2^(m-2)`` vs the raw ``2^(m-1)``);
* a sampler of *general* simple plans — staged shapes whose semijoin
  binding sets may come from any earlier stage — used to probe the
  claim that the best semijoin-adaptive plan is optimal among simple
  plans for ``m = 2`` / independent conditions.
"""

from __future__ import annotations

import math
import random
from itertools import permutations, product
from typing import Iterator, Sequence

from repro.costs.estimates import SizeEstimator
from repro.costs.model import CostModel
from repro.plans.builder import StagedChoice
from repro.plans.operations import (
    IntersectOp,
    Operation,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan, StageInfo
from repro.query.fusion import FusionQuery
from repro.relational.conditions import Condition

# ----------------------------------------------------------------------
# Space sizes


def raw_semijoin_space_size(m: int) -> int:
    """Number of (ordering, per-stage choice) semijoin specs: m! * 2^(m-1)."""
    if m < 1:
        return 0
    return math.factorial(m) * 2 ** (m - 1)


def raw_adaptive_space_size(m: int, n: int) -> int:
    """Number of (ordering, per-source choice) specs: m! * 2^(n(m-1))."""
    if m < 1 or n < 1:
        return 0
    return math.factorial(m) * 2 ** (n * (m - 1))


# ----------------------------------------------------------------------
# Spec generators


def enumerate_semijoin_specs(
    m: int,
) -> Iterator[tuple[tuple[int, ...], tuple[bool, ...]]]:
    """All (ordering, semijoin_stages) semijoin-plan specs.

    ``semijoin_stages[i]`` is True when stage ``i`` is evaluated with
    semijoin queries at every source; stage 0 is always False.
    """
    for ordering in permutations(range(m)):
        for tail in product((False, True), repeat=m - 1):
            yield ordering, (False, *tail)


def enumerate_adaptive_specs(
    m: int, n: int
) -> Iterator[tuple[tuple[int, ...], tuple[tuple[StagedChoice, ...], ...]]]:
    """All (ordering, per-source choices) semijoin-adaptive specs.

    Exponential in ``n * (m - 1)`` — use only for tiny instances (the
    brute-force validation of SJA's optimality).
    """
    first_stage = tuple([StagedChoice.SELECTION] * n)
    options = (StagedChoice.SELECTION, StagedChoice.SEMIJOIN)
    for ordering in permutations(range(m)):
        for flat in product(options, repeat=n * (m - 1)):
            later = tuple(
                tuple(flat[stage * n : (stage + 1) * n])
                for stage in range(m - 1)
            )
            yield ordering, (first_stage, *later)


def choices_from_stages(
    semijoin_stages: Sequence[bool], n: int
) -> tuple[tuple[StagedChoice, ...], ...]:
    """Expand per-stage uniform booleans to a per-source choice matrix."""
    return tuple(
        tuple(
            StagedChoice.SEMIJOIN if use_semijoin else StagedChoice.SELECTION
            for __ in range(n)
        )
        for use_semijoin in semijoin_stages
    )


# ----------------------------------------------------------------------
# Shared staged-cost accounting (the Figs. 3/4 arithmetic)


def stage_option_costs(
    condition: Condition,
    source_names: Sequence[str],
    cost_model: CostModel,
    input_size: float,
) -> tuple[list[float], list[float]]:
    """Per-source (selection cost, semijoin cost) options for one stage."""
    sq_costs = [cost_model.sq_cost(condition, s) for s in source_names]
    sjq_costs = [
        cost_model.sjq_cost(condition, s, input_size) for s in source_names
    ]
    return sq_costs, sjq_costs


def staged_plan_cost(
    query: FusionQuery,
    ordering: Sequence[int],
    choices: Sequence[Sequence[StagedChoice]],
    source_names: Sequence[str],
    cost_model: CostModel,
    estimator: SizeEstimator,
) -> float:
    """Estimated cost of a staged spec, exactly as Figs. 3/4 account it.

    Stage 1 pays ``sum_j sq_cost(c_{o_1}, R_j)``; stage ``i`` pays, per
    source, the chosen option's cost with binding-set size ``|X_{i-1}|``
    estimated under independence.  Local operations are free.
    """
    conditions = [query.conditions[index] for index in ordering]
    total = 0.0
    prefix_size = 0.0
    for stage_index, condition in enumerate(conditions):
        if stage_index == 0:
            total += sum(
                cost_model.sq_cost(condition, source)
                for source in source_names
            )
            prefix_size = estimator.union_selection_size(condition)
            continue
        for source_index, source in enumerate(source_names):
            if choices[stage_index][source_index] is StagedChoice.SELECTION:
                total += cost_model.sq_cost(condition, source)
            else:
                total += cost_model.sjq_cost(condition, source, prefix_size)
        prefix_size *= estimator.global_selectivity(condition)
    return total


# ----------------------------------------------------------------------
# Equivalence-aware counting


def canonical_semijoin_key(
    ordering: Sequence[int], semijoin_stages: Sequence[bool]
) -> frozenset:
    """Canonical form of a semijoin spec w.r.t. the general cost model.

    A semijoin plan's cost depends only on, for each condition, (a) how
    it is evaluated and (b) — for semijoin stages — *which set* of
    conditions precedes it (that set determines ``X_{i-1}``).  Two specs
    with equal canonical keys cost the same under every cost model in
    the paper's family; deduplicating by this key yields the smaller
    count behind the paper's ``O(m! * 2^(m-2))``.
    """
    entries = []
    for position, condition_index in enumerate(ordering):
        if semijoin_stages[position]:
            predecessors = frozenset(ordering[:position])
            entries.append((condition_index, True, predecessors))
        else:
            entries.append((condition_index, False, None))
    return frozenset(entries)


def count_distinct_semijoin_plans(m: int) -> int:
    """Count cost-distinct semijoin plans by canonical-key dedup."""
    keys = {
        canonical_semijoin_key(ordering, stages)
        for ordering, stages in enumerate_semijoin_specs(m)
    }
    return len(keys)


# ----------------------------------------------------------------------
# General simple-plan sampling


def random_simple_plan(
    query: FusionQuery,
    source_names: Sequence[str],
    rng: random.Random,
) -> Plan:
    """Sample a simple plan more general than the semijoin-adaptive shape.

    The plan is staged, but each semijoin may draw its binding set from
    *any* earlier stage register, not just ``X_{i-1}`` — a strict
    superset of the semijoin-adaptive space within simple plans.  Every
    stage ends with ``X_i := X_{i-1} ∩ (∪_j X_i_j)``, which keeps the
    answer correct regardless of the binding-set choices.
    """
    m = query.arity
    n = len(source_names)
    ordering = list(range(m))
    rng.shuffle(ordering)
    conditions = [query.conditions[index] for index in ordering]

    operations: list[Operation] = []
    stages: list[StageInfo] = []
    for stage_index, condition in enumerate(conditions, start=1):
        registers = []
        for source_index, source in enumerate(source_names, start=1):
            register = f"X{stage_index}_{source_index}"
            registers.append(register)
            if stage_index == 1 or rng.random() < 0.5:
                operations.append(SelectionOp(register, condition, source))
            else:
                binding_stage = rng.randint(1, stage_index - 1)
                operations.append(
                    SemijoinOp(register, condition, source, f"X{binding_stage}")
                )
        combined = f"X{stage_index}"
        operations.append(UnionOp(combined, tuple(registers)))
        if stage_index > 1:
            operations.append(
                IntersectOp(combined, (f"X{stage_index - 1}", combined))
            )
        stages.append(
            StageInfo(
                condition=condition,
                input_register=f"X{stage_index - 1}" if stage_index > 1 else "",
                source_registers=tuple(registers),
                stage_register=combined,
            )
        )
    return Plan(
        operations,
        result=f"X{m}",
        query=query,
        description="sampled simple plan",
        stages=stages,
    )
