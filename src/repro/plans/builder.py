"""Constructing staged plans — the shapes of Figs. 2, 3, and 4.

A *staged* plan processes conditions one at a time in some order
(Sec. 2.5).  Stage 1 always evaluates its condition with selection
queries at every source; stage ``i >= 2`` evaluates per source with
either a selection or a semijoin against ``X_{i-1}``; each stage ends by
combining the per-source registers.

The builder is shared by all optimizers: FILTER passes all-selection
choices, SJ passes per-stage-uniform choices, SJA passes per-source
choices.  The emitted operation sequence matches the paper's figures,
including the register-reassignment idiom (``X2 := X2 ∩ X1``).
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.errors import PlanValidationError
from repro.plans.operations import (
    IntersectOp,
    Operation,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan, StageInfo
from repro.query.fusion import FusionQuery


class StagedChoice(enum.Enum):
    """How one (condition, source) pair is evaluated."""

    SELECTION = "sq"
    SEMIJOIN = "sjq"


class IntersectPolicy(enum.Enum):
    """When to emit the stage-end intersection with ``X_{i-1}``.

    * AUTO — only when the stage contains at least one selection (a pure
      semijoin stage already returns subsets of ``X_{i-1}``); this is
      what Figs. 2(b) and 3 do.
    * ALWAYS — unconditionally, matching the SJA pseudocode of Fig. 4.
    """

    AUTO = "auto"
    ALWAYS = "always"


def stage_register(i: int) -> str:
    """Name of the combined register after stage ``i`` (1-based)."""
    return f"X{i}"


def source_register(i: int, j: int) -> str:
    """Name of the per-source register for stage ``i``, source ``j``."""
    return f"X{i}_{j}"


def build_staged_plan(
    query: FusionQuery,
    ordering: Sequence[int],
    choices: Sequence[Sequence[StagedChoice]],
    source_names: Sequence[str],
    intersect_policy: IntersectPolicy = IntersectPolicy.AUTO,
    description: str = "",
) -> Plan:
    """Build the staged plan for a given condition ordering and choices.

    Args:
        query: The fusion query; ``ordering`` permutes its conditions.
        ordering: A permutation of ``range(query.arity)`` giving the
            stage order ``c_{o_1}, ..., c_{o_m}``.
        choices: ``choices[i][j]`` is the evaluation choice for stage
            ``i`` (0-based) at source ``j``.  Stage 0 must be all
            SELECTION (a semijoin needs a binding set, and none exists
            yet — Sec. 2.5: "the first condition in a semijoin plan is
            always evaluated by selection queries").
        source_names: Sources in federation order.
        intersect_policy: See :class:`IntersectPolicy`.
        description: Free-text label stored on the plan.

    Returns:
        A validated :class:`~repro.plans.plan.Plan` with stage
        annotations.
    """
    m = query.arity
    n = len(source_names)
    if sorted(ordering) != list(range(m)):
        raise PlanValidationError(f"ordering {ordering!r} is not a permutation")
    if len(choices) != m or any(len(stage) != n for stage in choices):
        raise PlanValidationError(
            f"choices must be {m} stages x {n} sources"
        )
    if any(choice is not StagedChoice.SELECTION for choice in choices[0]):
        raise PlanValidationError(
            "the first stage must be evaluated by selection queries"
        )

    operations: list[Operation] = []
    stages: list[StageInfo] = []
    conditions = [query.conditions[index] for index in ordering]

    for stage_index, condition in enumerate(conditions, start=1):
        previous = stage_register(stage_index - 1) if stage_index > 1 else ""
        registers: list[str] = []
        any_selection = False
        for source_index, source in enumerate(source_names, start=1):
            register = source_register(stage_index, source_index)
            registers.append(register)
            choice = choices[stage_index - 1][source_index - 1]
            if choice is StagedChoice.SELECTION:
                any_selection = True
                operations.append(SelectionOp(register, condition, source))
            else:
                operations.append(
                    SemijoinOp(register, condition, source, previous)
                )
        combined = stage_register(stage_index)
        operations.append(UnionOp(combined, tuple(registers)))
        needs_intersection = stage_index > 1 and (
            intersect_policy is IntersectPolicy.ALWAYS or any_selection
        )
        if needs_intersection:
            # The paper's reassignment idiom: X_i := X_{i-1} ∩ X_i.
            operations.append(IntersectOp(combined, (previous, combined)))
        stages.append(
            StageInfo(
                condition=condition,
                input_register=previous,
                source_registers=tuple(registers),
                stage_register=combined,
            )
        )

    return Plan(
        operations,
        result=stage_register(m),
        query=query,
        description=description,
        stages=stages,
    )


def all_selection_choices(m: int, n: int) -> list[list[StagedChoice]]:
    """The choice matrix of a filter plan: selections everywhere."""
    return [[StagedChoice.SELECTION] * n for __ in range(m)]


def build_filter_plan(
    query: FusionQuery,
    source_names: Sequence[str],
    description: str = "filter plan",
) -> Plan:
    """The (unique up to ordering) best filter plan of Sec. 3.

    Pushes every condition to every source (``m * n`` selection queries)
    and combines results — Fig. 2(a).  Ordering is irrelevant to its
    cost, so the identity ordering is used.
    """
    m = query.arity
    n = len(source_names)
    return build_staged_plan(
        query,
        ordering=list(range(m)),
        choices=all_selection_choices(m, n),
        source_names=source_names,
        intersect_policy=IntersectPolicy.AUTO,
        description=description,
    )


def uniform_choices(
    m: int, n: int, semijoin_stages: Sequence[bool]
) -> list[list[StagedChoice]]:
    """Choice matrix for a *semijoin plan*: per-stage uniform decisions.

    ``semijoin_stages[i]`` selects semijoin evaluation for stage ``i``
    (must be False for stage 0).
    """
    if len(semijoin_stages) != m:
        raise PlanValidationError("semijoin_stages must have one entry per stage")
    if m > 0 and semijoin_stages[0]:
        raise PlanValidationError("stage 0 cannot be a semijoin stage")
    return [
        [
            StagedChoice.SEMIJOIN if use_semijoin else StagedChoice.SELECTION
            for __ in range(n)
        ]
        for use_semijoin in semijoin_stages
    ]
