"""Plan serialization: plans to/from JSON-able dicts.

A deployed mediator wants to cache plans, ship them to workers, and
diff EXPLAIN output across versions; that requires plans to be data all
the way down.  Conditions serialize as their SQL text (the condition
parser is the inverse), operations as tagged records, stage annotations
alongside.

Round-trip guarantee: ``plan_from_dict(plan_to_dict(p)) == p`` for every
plan the library can build (property-tested).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import PlanValidationError
from repro.plans.operations import (
    DifferenceOp,
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    Operation,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan, StageInfo
from repro.query.fusion import FusionQuery
from repro.relational.parser import parse_condition


def _op_to_dict(op: Operation) -> dict[str, Any]:
    if isinstance(op, SelectionOp):
        return {
            "op": "sq",
            "target": op.target_register,
            "condition": op.condition.to_sql(),
            "source": op.source,
        }
    if isinstance(op, SemijoinOp):
        return {
            "op": "sjq",
            "target": op.target_register,
            "condition": op.condition.to_sql(),
            "source": op.source,
            "input": op.input_register,
        }
    if isinstance(op, LoadOp):
        return {"op": "lq", "target": op.target_register, "source": op.source}
    if isinstance(op, LocalSelectionOp):
        return {
            "op": "local-sq",
            "target": op.target_register,
            "condition": op.condition.to_sql(),
            "input": op.input_register,
        }
    if isinstance(op, UnionOp):
        return {"op": "union", "target": op.target_register,
                "inputs": list(op.inputs)}
    if isinstance(op, IntersectOp):
        return {"op": "intersect", "target": op.target_register,
                "inputs": list(op.inputs)}
    if isinstance(op, DifferenceOp):
        return {
            "op": "difference",
            "target": op.target_register,
            "left": op.left,
            "right": op.right,
        }
    raise PlanValidationError(f"cannot serialize operation {op!r}")


def _op_from_dict(data: dict[str, Any]) -> Operation:
    kind = data.get("op")
    try:
        if kind == "sq":
            return SelectionOp(
                data["target"], parse_condition(data["condition"]),
                data["source"],
            )
        if kind == "sjq":
            return SemijoinOp(
                data["target"],
                parse_condition(data["condition"]),
                data["source"],
                data["input"],
            )
        if kind == "lq":
            return LoadOp(data["target"], data["source"])
        if kind == "local-sq":
            return LocalSelectionOp(
                data["target"], parse_condition(data["condition"]),
                data["input"],
            )
        if kind == "union":
            return UnionOp(data["target"], tuple(data["inputs"]))
        if kind == "intersect":
            return IntersectOp(data["target"], tuple(data["inputs"]))
        if kind == "difference":
            return DifferenceOp(data["target"], data["left"], data["right"])
    except KeyError as exc:
        raise PlanValidationError(
            f"operation record {data!r} missing key {exc}"
        ) from exc
    raise PlanValidationError(f"unknown operation kind {kind!r}")


def plan_to_dict(plan: Plan) -> dict[str, Any]:
    """Serialize a plan (operations, result, query, stages) to a dict."""
    record: dict[str, Any] = {
        "operations": [_op_to_dict(op) for op in plan.operations],
        "result": plan.result,
        "description": plan.description,
    }
    if plan.query is not None:
        record["query"] = {
            "merge": plan.query.merge_attribute,
            "conditions": [c.to_sql() for c in plan.query.conditions],
            "name": plan.query.name,
        }
    if plan.stages:
        record["stages"] = [
            {
                "condition": stage.condition.to_sql(),
                "input": stage.input_register,
                "source_registers": list(stage.source_registers),
                "stage_register": stage.stage_register,
            }
            for stage in plan.stages
        ]
    return record


def plan_from_dict(data: dict[str, Any]) -> Plan:
    """Rebuild a plan from :func:`plan_to_dict` output."""
    operations = [_op_from_dict(entry) for entry in data["operations"]]
    query = None
    if "query" in data:
        query_record = data["query"]
        query = FusionQuery(
            query_record["merge"],
            tuple(
                parse_condition(text) for text in query_record["conditions"]
            ),
            name=query_record.get("name", ""),
        )
    stages = tuple(
        StageInfo(
            condition=parse_condition(entry["condition"]),
            input_register=entry["input"],
            source_registers=tuple(entry["source_registers"]),
            stage_register=entry["stage_register"],
        )
        for entry in data.get("stages", ())
    )
    return Plan(
        operations,
        result=data["result"],
        query=query,
        description=data.get("description", ""),
        stages=stages,
    )


def plan_to_json(plan: Plan, indent: int | None = 2) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: str) -> Plan:
    """Parse a plan from :func:`plan_to_json` output."""
    return plan_from_dict(json.loads(text))
