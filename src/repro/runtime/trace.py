"""Execution tracing for the concurrent runtime.

Every remote operation the engine runs leaves an :class:`OpSpan` —
queued/started/finished timestamps on the virtual clock plus one
:class:`AttemptSpan` per wire attempt (so retries and their backoff gaps
are visible).  A :class:`RuntimeTrace` aggregates the spans into
per-source utilization and renders a fixed-width ASCII timeline in the
same spirit as :func:`repro.plans.viz.schedule_gantt` and the
:mod:`repro.bench.report` tables: plain text that diffs cleanly and
pastes into reports unchanged.

Timeline legend: ``#`` successful attempt, ``x`` failed attempt,
``c`` cancelled hedge attempt, ``.`` waiting (queued, blocked on
inputs, or backing off).

With hedged dispatch an operation's attempts may run on *different*
sources (the primary and a replica racing); each :class:`AttemptSpan`
therefore carries the source it actually ran on, and utilization is
accounted per serving source, not per planned source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.plans.operations import Operation
from repro.runtime.faults import AttemptFate


class OpStatus(enum.Enum):
    """Terminal state of one operation under the runtime."""

    OK = "ok"
    DEGRADED = "degraded"  # retry budget exhausted; empty result substituted
    RECOVERED = "recovered"  # served by a replica after the planned source failed
    DEADLINE = "deadline"  # query budget expired; empty result substituted


@dataclass(frozen=True)
class AttemptSpan:
    """One wire attempt of a remote operation."""

    attempt: int  # 1-based
    start_s: float
    end_s: float
    fate: AttemptFate
    cost: float
    items_sent: int
    items_received: int
    rows_loaded: int
    messages: int
    #: The source this attempt actually ran on.  Empty means "the
    #: operation's planned source" (pre-hedging traces).
    source: str = ""
    #: True for speculative duplicates launched by hedged dispatch.
    hedge: bool = False
    #: True for cross-replica confirmation fetches launched by the
    #: answer verifier's ``vote`` mode.
    confirm: bool = False

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class OpSpan:
    """One operation's full history on the virtual clock."""

    step: int  # 1-based plan position
    operation: Operation
    queued_s: float  # inputs ready; waiting for the source connection
    started_s: float  # first attempt began
    finished_s: float  # value produced (or degradation decided)
    attempts: tuple[AttemptSpan, ...]
    status: OpStatus
    output_size: int

    @property
    def source(self) -> str:
        return getattr(self.operation, "source", "")

    @property
    def retries(self) -> int:
        """Primary-path re-attempts.

        Hedge duplicates and verification confirm-fetches are extra
        reads of the same answer, not retries of a failed one.
        """
        return max(
            0,
            sum(1 for a in self.attempts if not a.hedge and not a.confirm)
            - 1,
        )

    @property
    def busy_s(self) -> float:
        """Time the source connection was actually occupied (no backoff)."""
        return sum(span.duration_s for span in self.attempts)

    @property
    def cost(self) -> float:
        return sum(span.cost for span in self.attempts)

    @property
    def messages(self) -> int:
        return sum(span.messages for span in self.attempts)

    @property
    def items_sent(self) -> int:
        return sum(span.items_sent for span in self.attempts)

    @property
    def items_received(self) -> int:
        return sum(span.items_received for span in self.attempts)

    @property
    def queue_wait_s(self) -> float:
        return self.started_s - self.queued_s

    @property
    def served_by(self) -> str:
        """The source whose attempt produced the value (last attempt)."""
        for span in reversed(self.attempts):
            if span.fate is AttemptFate.OK:
                return span.source or self.source
        return self.source

    @property
    def hedged(self) -> bool:
        """True when a speculative duplicate attempt was launched."""
        return any(span.hedge for span in self.attempts)

    def render(self, labels=None) -> str:
        flags = ""
        if self.retries:
            flags += f" [{self.retries} retries]"
        if self.status is OpStatus.DEGRADED:
            flags += " [DEGRADED]"
        if self.status is OpStatus.DEADLINE:
            flags += " [DEADLINE]"
        if self.status is OpStatus.RECOVERED:
            flags += f" [RECOVERED via {self.served_by}]"
        return (
            f"{self.step:>3}) {self.operation.render(labels):<60} "
            f"{self.started_s:>8.3f}s -> {self.finished_s:>8.3f}s, "
            f"{self.output_size:>6} items{flags}"
        )


@dataclass(frozen=True)
class RuntimeTrace:
    """The observable record of one concurrent plan execution.

    Traces come from two places: the live engine builds one as it runs,
    and :meth:`from_events` rebuilds one from a recorded
    :mod:`repro.obs` event stream — the ASCII renderers below are pure
    functions of the span data, so both sources print identically.
    """

    spans: tuple[OpSpan, ...]
    makespan_s: float

    @staticmethod
    def from_events(events, round_no: int | None = None) -> "RuntimeTrace":
        """Rebuild a trace from recorded ``op``/``attempt`` events.

        Delegates to :func:`repro.obs.replay.trace_from_events`
        (imported lazily — the runtime package does not depend on
        :mod:`repro.obs`).
        """
        from repro.obs.replay import trace_from_events

        return trace_from_events(events, round_no=round_no)

    @property
    def remote_spans(self) -> tuple[OpSpan, ...]:
        return tuple(s for s in self.spans if s.operation.remote)

    @property
    def degraded_steps(self) -> tuple[int, ...]:
        return tuple(
            s.step for s in self.spans if s.status is OpStatus.DEGRADED
        )

    @property
    def deadline_steps(self) -> tuple[int, ...]:
        """Steps cut short because the query's deadline budget expired."""
        return tuple(
            s.step for s in self.spans if s.status is OpStatus.DEADLINE
        )

    @property
    def recovered_steps(self) -> tuple[int, ...]:
        """Steps whose planned source failed but a replica served them."""
        return tuple(
            s.step for s in self.spans if s.status is OpStatus.RECOVERED
        )

    @property
    def hedge_attempts(self) -> int:
        """Speculative duplicate attempts launched across all steps."""
        return sum(
            1 for s in self.spans for a in s.attempts if a.hedge
        )

    @property
    def total_retries(self) -> int:
        return sum(s.retries for s in self.spans)

    @property
    def total_cost(self) -> float:
        return sum(s.cost for s in self.spans)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.spans)

    def by_source(self) -> dict[str, list[OpSpan]]:
        grouped: dict[str, list[OpSpan]] = {}
        for span in self.remote_spans:
            grouped.setdefault(span.source, []).append(span)
        return grouped

    def busy_by_serving_source(self) -> dict[str, float]:
        """Connection-busy seconds per source that actually served attempts.

        Unlike :meth:`by_source` (which groups by the *planned* source),
        hedge attempts are charged to the replica they ran on.
        """
        busy: dict[str, float] = {}
        for span in self.remote_spans:
            for attempt in span.attempts:
                name = attempt.source or span.source
                busy[name] = busy.get(name, 0.0) + attempt.duration_s
        return busy

    def per_source_utilization(self) -> dict[str, float]:
        """Fraction of the makespan each source connection was busy."""
        busy = self.busy_by_serving_source()
        if self.makespan_s <= 0:
            return {name: 0.0 for name in busy}
        return {
            name: seconds / self.makespan_s for name, seconds in busy.items()
        }

    # ------------------------------------------------------------------
    # Rendering

    def timeline(self, width: int = 60) -> str:
        """ASCII timeline of remote operations, retries visible.

        One row per remote operation; ``#`` marks time inside a
        successful attempt, ``x`` inside a failed one, ``c`` inside a
        cancelled hedge duplicate, ``.`` waiting.
        """
        remote = self.remote_spans
        if not remote:
            return "(no remote operations)"
        makespan = self.makespan_s or 1.0

        def column(t: float) -> int:
            return min(width, max(0, int(round(t / makespan * width))))

        label_width = max(len(self._label(span)) for span in remote)
        lines = []
        for span in remote:
            cells = ["."] * width
            for attempt in span.attempts:
                start = column(attempt.start_s)
                end = max(start + 1, column(attempt.end_s))
                if attempt.fate is AttemptFate.CANCELLED:
                    mark = "c"
                elif attempt.fate.failed:
                    mark = "x"
                else:
                    mark = "#"
                for i in range(start, min(end, width)):
                    cells[i] = mark
            if span.status is OpStatus.DEGRADED:
                note = " DEGRADED"
            elif span.status is OpStatus.DEADLINE:
                note = " DEADLINE"
            elif span.status is OpStatus.RECOVERED:
                note = f" RECOVERED<-{span.served_by}"
            else:
                note = ""
            lines.append(
                f"{self._label(span).ljust(label_width)} "
                f"|{''.join(cells)}|{note}"
            )
        lines.append(
            f"{'makespan'.ljust(label_width)}  {self.makespan_s:.3f}s, "
            f"{self.total_retries} retries, "
            f"{len(self.degraded_steps) + len(self.deadline_steps)} degraded"
        )
        return "\n".join(lines)

    def utilization_report(self) -> str:
        """Per-source busy time / utilization, fixed width.

        Rows are serving sources: a replica that only ever served hedge
        or rerouted attempts gets its own row; a planned source that
        never actually served (fully rerouted) still shows with zero
        busy time.
        """
        busy = self.busy_by_serving_source()
        utilization = self.per_source_utilization()
        attempts: dict[str, list[AttemptSpan]] = {}
        for span in self.remote_spans:
            attempts.setdefault(span.source, [])
            for attempt in span.attempts:
                name = attempt.source or span.source
                attempts.setdefault(name, []).append(attempt)
        lines = ["source   busy s     util  attempts  hedges"]
        for name in sorted(attempts):
            served = attempts[name]
            hedges = sum(1 for a in served if a.hedge)
            lines.append(
                f"{name:<8} {busy.get(name, 0.0):>7.3f} "
                f"{utilization.get(name, 0.0):>7.1%} "
                f"{len(served):>8} {hedges:>7}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        text = (
            f"makespan {self.makespan_s:.3f}s, "
            f"{len(self.remote_spans)} remote ops, "
            f"{self.total_retries} retries, "
            f"{len(self.degraded_steps)} degraded, "
            f"cost {self.total_cost:.1f}"
        )
        if self.deadline_steps:
            text += f", {len(self.deadline_steps)} cut at deadline"
        if self.recovered_steps or self.hedge_attempts:
            text += (
                f", {len(self.recovered_steps)} recovered, "
                f"{self.hedge_attempts} hedges"
            )
        return text

    @staticmethod
    def _label(span: OpSpan) -> str:
        op = span.operation
        return f"{span.step:>3}) {span.source:<6} {op.kind.value}->{op.target}"
