"""Execution tracing for the concurrent runtime.

Every remote operation the engine runs leaves an :class:`OpSpan` —
queued/started/finished timestamps on the virtual clock plus one
:class:`AttemptSpan` per wire attempt (so retries and their backoff gaps
are visible).  A :class:`RuntimeTrace` aggregates the spans into
per-source utilization and renders a fixed-width ASCII timeline in the
same spirit as :func:`repro.plans.viz.schedule_gantt` and the
:mod:`repro.bench.report` tables: plain text that diffs cleanly and
pastes into reports unchanged.

Timeline legend: ``#`` successful attempt, ``x`` failed attempt,
``.`` waiting (queued, blocked on inputs, or backing off).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.plans.operations import Operation
from repro.runtime.faults import AttemptFate


class OpStatus(enum.Enum):
    """Terminal state of one operation under the runtime."""

    OK = "ok"
    DEGRADED = "degraded"  # retry budget exhausted; empty result substituted


@dataclass(frozen=True)
class AttemptSpan:
    """One wire attempt of a remote operation."""

    attempt: int  # 1-based
    start_s: float
    end_s: float
    fate: AttemptFate
    cost: float
    items_sent: int
    items_received: int
    rows_loaded: int
    messages: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class OpSpan:
    """One operation's full history on the virtual clock."""

    step: int  # 1-based plan position
    operation: Operation
    queued_s: float  # inputs ready; waiting for the source connection
    started_s: float  # first attempt began
    finished_s: float  # value produced (or degradation decided)
    attempts: tuple[AttemptSpan, ...]
    status: OpStatus
    output_size: int

    @property
    def source(self) -> str:
        return getattr(self.operation, "source", "")

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def busy_s(self) -> float:
        """Time the source connection was actually occupied (no backoff)."""
        return sum(span.duration_s for span in self.attempts)

    @property
    def cost(self) -> float:
        return sum(span.cost for span in self.attempts)

    @property
    def messages(self) -> int:
        return sum(span.messages for span in self.attempts)

    @property
    def items_sent(self) -> int:
        return sum(span.items_sent for span in self.attempts)

    @property
    def items_received(self) -> int:
        return sum(span.items_received for span in self.attempts)

    @property
    def queue_wait_s(self) -> float:
        return self.started_s - self.queued_s

    def render(self, labels=None) -> str:
        flags = ""
        if self.retries:
            flags += f" [{self.retries} retries]"
        if self.status is OpStatus.DEGRADED:
            flags += " [DEGRADED]"
        return (
            f"{self.step:>3}) {self.operation.render(labels):<60} "
            f"{self.started_s:>8.3f}s -> {self.finished_s:>8.3f}s, "
            f"{self.output_size:>6} items{flags}"
        )


@dataclass(frozen=True)
class RuntimeTrace:
    """The observable record of one concurrent plan execution."""

    spans: tuple[OpSpan, ...]
    makespan_s: float

    @property
    def remote_spans(self) -> tuple[OpSpan, ...]:
        return tuple(s for s in self.spans if s.operation.remote)

    @property
    def degraded_steps(self) -> tuple[int, ...]:
        return tuple(
            s.step for s in self.spans if s.status is OpStatus.DEGRADED
        )

    @property
    def total_retries(self) -> int:
        return sum(s.retries for s in self.spans)

    @property
    def total_cost(self) -> float:
        return sum(s.cost for s in self.spans)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.spans)

    def by_source(self) -> dict[str, list[OpSpan]]:
        grouped: dict[str, list[OpSpan]] = {}
        for span in self.remote_spans:
            grouped.setdefault(span.source, []).append(span)
        return grouped

    def per_source_utilization(self) -> dict[str, float]:
        """Fraction of the makespan each source connection was busy."""
        if self.makespan_s <= 0:
            return {name: 0.0 for name in self.by_source()}
        return {
            name: sum(span.busy_s for span in spans) / self.makespan_s
            for name, spans in self.by_source().items()
        }

    # ------------------------------------------------------------------
    # Rendering

    def timeline(self, width: int = 60) -> str:
        """ASCII timeline of remote operations, retries visible.

        One row per remote operation; ``#`` marks time inside a
        successful attempt, ``x`` inside a failed one, ``.`` waiting.
        """
        remote = self.remote_spans
        if not remote:
            return "(no remote operations)"
        makespan = self.makespan_s or 1.0

        def column(t: float) -> int:
            return min(width, max(0, int(round(t / makespan * width))))

        label_width = max(len(self._label(span)) for span in remote)
        lines = []
        for span in remote:
            cells = ["."] * width
            for attempt in span.attempts:
                start = column(attempt.start_s)
                end = max(start + 1, column(attempt.end_s))
                mark = "x" if attempt.fate.failed else "#"
                for i in range(start, min(end, width)):
                    cells[i] = mark
            note = " DEGRADED" if span.status is OpStatus.DEGRADED else ""
            lines.append(
                f"{self._label(span).ljust(label_width)} "
                f"|{''.join(cells)}|{note}"
            )
        lines.append(
            f"{'makespan'.ljust(label_width)}  {self.makespan_s:.3f}s, "
            f"{self.total_retries} retries, "
            f"{len(self.degraded_steps)} degraded"
        )
        return "\n".join(lines)

    def utilization_report(self) -> str:
        """Per-source busy time / utilization, fixed width."""
        lines = ["source   busy s     util   ops  retries"]
        utilization = self.per_source_utilization()
        for name, spans in sorted(self.by_source().items()):
            busy = sum(span.busy_s for span in spans)
            retries = sum(span.retries for span in spans)
            lines.append(
                f"{name:<8} {busy:>7.3f} {utilization[name]:>7.1%} "
                f"{len(spans):>5} {retries:>8}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        return (
            f"makespan {self.makespan_s:.3f}s, "
            f"{len(self.remote_spans)} remote ops, "
            f"{self.total_retries} retries, "
            f"{len(self.degraded_steps)} degraded, "
            f"cost {self.total_cost:.1f}"
        )

    @staticmethod
    def _label(span: OpSpan) -> str:
        op = span.operation
        return f"{span.step:>3}) {span.source:<6} {op.kind.value}->{op.target}"
