"""Per-source health tracking and circuit breakers on the virtual clock.

Retrying a dead source buys nothing but wire traffic and makespan; the
classic remedy is a *circuit breaker* per source.  A
:class:`CircuitBreaker` watches the rolling attempt history kept by
:class:`SourceHealth` and moves through three states:

* **CLOSED** — normal operation; every dispatch is allowed.
* **OPEN** — the source tripped (too many consecutive failures, or the
  rolling failure rate crossed the threshold with enough volume).  New
  dispatches are refused, so the engine reroutes them to healthy
  replicas instead of burning the retry budget.
* **HALF_OPEN** — the cooldown elapsed; a bounded number of probe
  attempts are let through.  A probe success closes the breaker, a
  probe failure re-opens it for another cooldown.

Everything is driven by the engine's virtual clock and the seeded fault
streams — no wall-clock, no hidden randomness — so runs with breakers
enabled replay byte-identically.
"""

from __future__ import annotations

import enum
import math
import threading
from collections import deque
from dataclasses import dataclass

from repro.errors import CostModelError


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs of one circuit breaker.

    Attributes:
        failure_threshold: Consecutive failures that trip the breaker.
        failure_rate_to_open: Rolling failure rate that trips it (once
            ``min_volume`` attempts are in the window).
        window: Number of recent attempts kept per source.
        min_volume: Attempts required before the rate rule may trip.
        cooldown_s: Virtual time an open breaker waits before allowing
            half-open probes.
        half_open_probes: Concurrent probe attempts allowed while
            half-open.
    """

    failure_threshold: int = 3
    failure_rate_to_open: float = 0.5
    window: int = 20
    min_volume: int = 5
    cooldown_s: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        for name in ("failure_threshold", "window", "min_volume", "half_open_probes"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise CostModelError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not (
            math.isfinite(self.failure_rate_to_open)
            and 0.0 < self.failure_rate_to_open <= 1.0
        ):
            raise CostModelError(
                "failure_rate_to_open must be in (0, 1], got "
                f"{self.failure_rate_to_open}"
            )
        if not (math.isfinite(self.cooldown_s) and self.cooldown_s >= 0):
            raise CostModelError(
                f"cooldown_s must be finite and non-negative, got {self.cooldown_s}"
            )

    @staticmethod
    def default() -> "BreakerConfig":
        return BreakerConfig()

    @staticmethod
    def aggressive() -> "BreakerConfig":
        """Trip fast, probe soon — for very flaky federations."""
        return BreakerConfig(
            failure_threshold=2, failure_rate_to_open=0.34, cooldown_s=5.0
        )


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class SourceHealth:
    """Rolling failure/latency statistics of one source.

    Records the last ``window`` attempts as ``(ok, duration_s)`` pairs
    plus lifetime counters; used by the breaker's rate rule and by the
    registry report.
    """

    def __init__(self, window: int = 20):
        self._recent: deque[tuple[bool, float]] = deque(maxlen=window)
        self.attempts = 0
        self.failures = 0
        self.busy_s = 0.0

    def record(self, ok: bool, duration_s: float) -> None:
        self._recent.append((ok, duration_s))
        self.attempts += 1
        self.busy_s += duration_s
        if not ok:
            self.failures += 1

    @property
    def volume(self) -> int:
        """Attempts currently in the rolling window."""
        return len(self._recent)

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the rolling window (0.0 when empty)."""
        if not self._recent:
            return 0.0
        return sum(1 for ok, __ in self._recent if not ok) / len(self._recent)

    @property
    def mean_latency_s(self) -> float:
        """Mean attempt duration over the rolling window."""
        if not self._recent:
            return 0.0
        return sum(duration for __, duration in self._recent) / len(self._recent)


class CircuitBreaker:
    """One source's breaker state machine on the virtual clock.

    ``notify`` (optional) is called as ``notify(now_s, old, new)`` with
    the state *values* on every transition — the registry uses it to
    forward transitions to an attached telemetry observer.
    """

    def __init__(
        self,
        config: BreakerConfig,
        health: SourceHealth,
        notify=None,
    ):
        self.config = config
        self.health = health
        self.notify = notify
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: float | None = None
        self.probes_in_flight = 0
        self.times_opened = 0

    def _transition(self, now_s: float, new_state: BreakerState) -> None:
        if new_state is self.state:
            return
        old = self.state
        self.state = new_state
        if self.notify is not None:
            self.notify(now_s, old.value, new_state.value)

    @property
    def reopens_at_s(self) -> float | None:
        """When an OPEN breaker becomes probe-able (None if not open)."""
        if self.state is not BreakerState.OPEN:
            return None
        assert self.opened_at_s is not None
        return self.opened_at_s + self.config.cooldown_s

    def allow(self, now_s: float) -> bool:
        """Whether a dispatch to this source may start at ``now_s``.

        Transitions OPEN -> HALF_OPEN once the cooldown has elapsed and
        counts half-open probes; callers must follow every allowed
        dispatch with exactly one :meth:`record_success` /
        :meth:`record_failure`.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            reopens = self.reopens_at_s
            assert reopens is not None
            if now_s + 1e-12 < reopens:
                return False
            self._transition(now_s, BreakerState.HALF_OPEN)
            self.probes_in_flight = 0
        # HALF_OPEN: admit a bounded number of concurrent probes.
        if self.probes_in_flight >= self.config.half_open_probes:
            return False
        self.probes_in_flight += 1
        return True

    def record_success(self, now_s: float, duration_s: float) -> None:
        self.health.record(True, duration_s)
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._transition(now_s, BreakerState.CLOSED)
            self.opened_at_s = None

    def abandon(self) -> None:
        """Release an admitted dispatch that never ran to completion.

        Hedged dispatch can cancel an in-flight attempt when its sibling
        wins the race; the attempt then reports neither success nor
        failure, but if it was admitted as a half-open probe its slot
        must be returned or the breaker would starve.
        """
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)

    def record_failure(self, now_s: float, duration_s: float) -> None:
        self.health.record(False, duration_s)
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._trip(now_s)
            return
        if self.state is BreakerState.CLOSED and self._should_trip():
            self._trip(now_s)

    def _should_trip(self) -> bool:
        if self.consecutive_failures >= self.config.failure_threshold:
            return True
        return (
            self.health.volume >= self.config.min_volume
            and self.health.failure_rate >= self.config.failure_rate_to_open
        )

    def _trip(self, now_s: float) -> None:
        self._transition(now_s, BreakerState.OPEN)
        self.opened_at_s = now_s
        self.times_opened += 1


class HealthRegistry:
    """Health stats and (optional) breakers for every source.

    Created once per :class:`~repro.runtime.engine.RuntimeEngine`, so
    breaker knowledge persists across plans and re-planning rounds run
    on the same engine.  With ``config=None`` the registry still tracks
    health but every dispatch is allowed (breakers disabled).

    The registry is thread-safe: a :class:`~repro.serve.MediatorService`
    shares one registry across every worker so a breaker tripped by one
    query reroutes the next, and ``allow``/``record`` mutate breaker
    state.  A single reentrant lock guards the maps and every state
    machine; individual :class:`SourceHealth`/:class:`CircuitBreaker`
    objects are only ever touched with it held.
    """

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config
        self._health: dict[str, SourceHealth] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.RLock()
        #: Optional transition observer, called as
        #: ``observer(now_s, source, old_state, new_state)`` with the
        #: state values.  Checked at call time, so it may be attached
        #: after breakers already exist.
        self.observer = None

    @property
    def enabled(self) -> bool:
        return self.config is not None

    def health_of(self, source_name: str) -> SourceHealth:
        with self._lock:
            health = self._health.get(source_name)
            if health is None:
                window = self.config.window if self.config else 20
                health = SourceHealth(window)
                self._health[source_name] = health
            return health

    def breaker_of(self, source_name: str) -> CircuitBreaker | None:
        if self.config is None:
            return None
        with self._lock:
            breaker = self._breakers.get(source_name)
            if breaker is None:

                def notify(now_s, old, new, name=source_name):
                    if self.observer is not None:
                        self.observer(now_s, name, old, new)

                breaker = CircuitBreaker(
                    self.config, self.health_of(source_name), notify=notify
                )
                self._breakers[source_name] = breaker
            return breaker

    def allow(self, source_name: str, now_s: float) -> bool:
        with self._lock:
            breaker = self.breaker_of(source_name)
            return True if breaker is None else breaker.allow(now_s)

    def reopens_at(self, source_name: str) -> float | None:
        with self._lock:
            breaker = self.breaker_of(source_name)
            return None if breaker is None else breaker.reopens_at_s

    def abandon(self, source_name: str) -> None:
        """Return a probe slot for a cancelled (raced-out) dispatch."""
        with self._lock:
            breaker = self.breaker_of(source_name)
            if breaker is not None:
                breaker.abandon()

    def record(
        self, source_name: str, now_s: float, ok: bool, duration_s: float
    ) -> None:
        with self._lock:
            breaker = self.breaker_of(source_name)
            if breaker is None:
                self.health_of(source_name).record(ok, duration_s)
            elif ok:
                breaker.record_success(now_s, duration_s)
            else:
                breaker.record_failure(now_s, duration_s)

    def state_of(self, source_name: str) -> BreakerState:
        with self._lock:
            breaker = self.breaker_of(source_name)
            return BreakerState.CLOSED if breaker is None else breaker.state

    def snapshot(self) -> dict[str, dict]:
        """Per-source health as plain data (tests and telemetry read
        this instead of poking registry internals).

        Keys are the sources seen so far; each value holds lifetime
        ``attempts`` / ``successes`` / ``failures``, rolling-window
        ``failure_rate`` and ``mean_latency_s``, total ``busy_s``, and
        the breaker's ``state`` / ``times_opened`` (a disabled breaker
        reads as permanently closed, never opened).
        """
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for name in sorted(self._health):
            health = self._health[name]
            breaker = self._breakers.get(name)
            out[name] = {
                "attempts": health.attempts,
                "successes": health.attempts - health.failures,
                "failures": health.failures,
                "failure_rate": health.failure_rate,
                "mean_latency_s": health.mean_latency_s,
                "busy_s": health.busy_s,
                "state": (
                    breaker.state.value
                    if breaker
                    else BreakerState.CLOSED.value
                ),
                "times_opened": breaker.times_opened if breaker else 0,
            }
        return out

    def report(self) -> str:
        """Fixed-width per-source health table."""
        lines = ["source   attempts fail  rate   breaker    opened"]
        with self._lock:
            for name in sorted(self._health):
                health = self._health[name]
                breaker = self._breakers.get(name)
                state = breaker.state.value if breaker else "-"
                opened = breaker.times_opened if breaker else 0
                lines.append(
                    f"{name:<8} {health.attempts:>8} {health.failures:>4} "
                    f"{health.failure_rate:>5.0%} {state:>10} {opened:>7}"
                )
        return "\n".join(lines)
