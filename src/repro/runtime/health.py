"""Per-source health tracking and circuit breakers on the virtual clock.

Retrying a dead source buys nothing but wire traffic and makespan; the
classic remedy is a *circuit breaker* per source.  A
:class:`CircuitBreaker` watches the rolling attempt history kept by
:class:`SourceHealth` and moves through three states:

* **CLOSED** — normal operation; every dispatch is allowed.
* **OPEN** — the source tripped (too many consecutive failures, or the
  rolling failure rate crossed the threshold with enough volume).  New
  dispatches are refused, so the engine reroutes them to healthy
  replicas instead of burning the retry budget.
* **HALF_OPEN** — the cooldown elapsed; a bounded number of probe
  attempts are let through.  A probe success closes the breaker, a
  probe failure re-opens it for another cooldown.

Breakers only see *wire* failures — a source that answers promptly with
stale or corrupt data looks perfectly healthy to them.  The registry
therefore also keeps a per-source **data-quality score** fed by the
answer verifier (:mod:`repro.runtime.verify`): the shrunk fraction of
recent answers that arrived clean.  When the score drops below a
:class:`QuarantineConfig` threshold the source enters a fourth state,
**QUARANTINED** — every dispatch is refused (like OPEN, but tripped on
quality, not errors) until an optional cooldown elapses.

Everything is driven by the engine's virtual clock and the seeded fault
streams — no wall-clock, no hidden randomness — so runs with breakers
enabled replay byte-identically.
"""

from __future__ import annotations

import enum
import math
import threading
from collections import deque
from dataclasses import dataclass

from repro.errors import CostModelError


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs of one circuit breaker.

    Attributes:
        failure_threshold: Consecutive failures that trip the breaker.
        failure_rate_to_open: Rolling failure rate that trips it (once
            ``min_volume`` attempts are in the window).
        window: Number of recent attempts kept per source.
        min_volume: Attempts required before the rate rule may trip.
        cooldown_s: Virtual time an open breaker waits before allowing
            half-open probes.
        half_open_probes: Concurrent probe attempts allowed while
            half-open.
    """

    failure_threshold: int = 3
    failure_rate_to_open: float = 0.5
    window: int = 20
    min_volume: int = 5
    cooldown_s: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        for name in ("failure_threshold", "window", "min_volume", "half_open_probes"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise CostModelError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not (
            math.isfinite(self.failure_rate_to_open)
            and 0.0 < self.failure_rate_to_open <= 1.0
        ):
            raise CostModelError(
                "failure_rate_to_open must be in (0, 1], got "
                f"{self.failure_rate_to_open}"
            )
        if not (math.isfinite(self.cooldown_s) and self.cooldown_s >= 0):
            raise CostModelError(
                f"cooldown_s must be finite and non-negative, got {self.cooldown_s}"
            )

    @staticmethod
    def default() -> "BreakerConfig":
        return BreakerConfig()

    @staticmethod
    def aggressive() -> "BreakerConfig":
        """Trip fast, probe soon — for very flaky federations."""
        return BreakerConfig(
            failure_threshold=2, failure_rate_to_open=0.34, cooldown_s=5.0
        )


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"
    #: Refused on *data quality*, not wire errors; registry-level.
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class QuarantineConfig:
    """When bad data — not wire failures — takes a source out of rotation.

    Attributes:
        quality_threshold: Quarantine trips once the shrunk clean-answer
            fraction falls below this.
        min_volume: Verified answers required (since the last release)
            before the score may trip.
        cooldown_s: Virtual time a quarantined source sits out before
            being allowed back; ``None`` quarantines for the rest of
            the run.
        prior_weight: Pseudo-count of clean answers blended into the
            score, so one bad answer from a cold source does not
            instantly quarantine it.
    """

    quality_threshold: float = 0.8
    min_volume: int = 3
    cooldown_s: float | None = None
    prior_weight: float = 2.0

    def __post_init__(self) -> None:
        if not (
            math.isfinite(self.quality_threshold)
            and 0.0 < self.quality_threshold <= 1.0
        ):
            raise CostModelError(
                "quality_threshold must be in (0, 1], got "
                f"{self.quality_threshold}"
            )
        if not isinstance(self.min_volume, int) or self.min_volume < 1:
            raise CostModelError(
                f"min_volume must be a positive integer, got {self.min_volume!r}"
            )
        if self.cooldown_s is not None and not (
            math.isfinite(self.cooldown_s) and self.cooldown_s >= 0
        ):
            raise CostModelError(
                f"cooldown_s must be finite and non-negative, got {self.cooldown_s}"
            )
        if not (math.isfinite(self.prior_weight) and self.prior_weight >= 0):
            raise CostModelError(
                f"prior_weight must be finite and non-negative, got {self.prior_weight}"
            )

    @staticmethod
    def default() -> "QuarantineConfig":
        return QuarantineConfig()


class DataQuality:
    """Per-source data-quality counters fed by the answer verifier.

    ``mark``/``clean_mark`` snapshot the counters at the last quarantine
    release, so the trip rule judges a released source on what it has
    served *since* coming back, not on its whole history.
    """

    def __init__(self) -> None:
        self.answers = 0
        self.clean = 0
        self.items_delivered = 0
        self.items_kept = 0
        self.times_quarantined = 0
        self.mark = 0
        self.clean_mark = 0

    def record(self, clean: bool, delivered: int, kept: int) -> None:
        self.answers += 1
        if clean:
            self.clean += 1
        self.items_delivered += delivered
        self.items_kept += kept

    @property
    def tainted(self) -> int:
        return self.answers - self.clean

    @property
    def volume(self) -> int:
        """Verified answers since the last quarantine release."""
        return self.answers - self.mark

    def score(self, prior_weight: float) -> float:
        """Shrunk clean-answer fraction since the last release."""
        if prior_weight + self.volume == 0:
            return 1.0
        clean = self.clean - self.clean_mark
        return (prior_weight + clean) / (prior_weight + self.volume)

    @property
    def delivery_fraction(self) -> float:
        """Lifetime fraction of delivered tuples that survived checks."""
        if self.items_delivered == 0:
            return 1.0
        return self.items_kept / self.items_delivered


class SourceHealth:
    """Rolling failure/latency statistics of one source.

    Records the last ``window`` attempts as ``(ok, duration_s)`` pairs
    plus lifetime counters; used by the breaker's rate rule and by the
    registry report.
    """

    def __init__(self, window: int = 20):
        self._recent: deque[tuple[bool, float]] = deque(maxlen=window)
        self.attempts = 0
        self.failures = 0
        self.busy_s = 0.0

    def record(self, ok: bool, duration_s: float) -> None:
        self._recent.append((ok, duration_s))
        self.attempts += 1
        self.busy_s += duration_s
        if not ok:
            self.failures += 1

    @property
    def volume(self) -> int:
        """Attempts currently in the rolling window."""
        return len(self._recent)

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the rolling window (0.0 when empty)."""
        if not self._recent:
            return 0.0
        return sum(1 for ok, __ in self._recent if not ok) / len(self._recent)

    @property
    def mean_latency_s(self) -> float:
        """Mean attempt duration over the rolling window."""
        if not self._recent:
            return 0.0
        return sum(duration for __, duration in self._recent) / len(self._recent)


class CircuitBreaker:
    """One source's breaker state machine on the virtual clock.

    ``notify`` (optional) is called as ``notify(now_s, old, new)`` with
    the state *values* on every transition — the registry uses it to
    forward transitions to an attached telemetry observer.
    """

    def __init__(
        self,
        config: BreakerConfig,
        health: SourceHealth,
        notify=None,
    ):
        self.config = config
        self.health = health
        self.notify = notify
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: float | None = None
        self.probes_in_flight = 0
        self.times_opened = 0

    def _transition(self, now_s: float, new_state: BreakerState) -> None:
        if new_state is self.state:
            return
        old = self.state
        self.state = new_state
        if self.notify is not None:
            self.notify(now_s, old.value, new_state.value)

    @property
    def reopens_at_s(self) -> float | None:
        """When an OPEN breaker becomes probe-able (None if not open)."""
        if self.state is not BreakerState.OPEN:
            return None
        assert self.opened_at_s is not None
        return self.opened_at_s + self.config.cooldown_s

    def allow(self, now_s: float) -> bool:
        """Whether a dispatch to this source may start at ``now_s``.

        Transitions OPEN -> HALF_OPEN once the cooldown has elapsed and
        counts half-open probes; callers must follow every allowed
        dispatch with exactly one :meth:`record_success` /
        :meth:`record_failure`.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            reopens = self.reopens_at_s
            assert reopens is not None
            if now_s + 1e-12 < reopens:
                return False
            self._transition(now_s, BreakerState.HALF_OPEN)
            self.probes_in_flight = 0
        # HALF_OPEN: admit a bounded number of concurrent probes.
        if self.probes_in_flight >= self.config.half_open_probes:
            return False
        self.probes_in_flight += 1
        return True

    def record_success(self, now_s: float, duration_s: float) -> None:
        self.health.record(True, duration_s)
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._transition(now_s, BreakerState.CLOSED)
            self.opened_at_s = None

    def abandon(self) -> None:
        """Release an admitted dispatch that never ran to completion.

        Hedged dispatch can cancel an in-flight attempt when its sibling
        wins the race; the attempt then reports neither success nor
        failure, but if it was admitted as a half-open probe its slot
        must be returned or the breaker would starve.
        """
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)

    def record_failure(self, now_s: float, duration_s: float) -> None:
        self.health.record(False, duration_s)
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._trip(now_s)
            return
        if self.state is BreakerState.CLOSED and self._should_trip():
            self._trip(now_s)

    def _should_trip(self) -> bool:
        if self.consecutive_failures >= self.config.failure_threshold:
            return True
        return (
            self.health.volume >= self.config.min_volume
            and self.health.failure_rate >= self.config.failure_rate_to_open
        )

    def _trip(self, now_s: float) -> None:
        self._transition(now_s, BreakerState.OPEN)
        self.opened_at_s = now_s
        self.times_opened += 1


class HealthRegistry:
    """Health stats and (optional) breakers for every source.

    Created once per :class:`~repro.runtime.engine.RuntimeEngine`, so
    breaker knowledge persists across plans and re-planning rounds run
    on the same engine.  With ``config=None`` the registry still tracks
    health but every dispatch is allowed (breakers disabled).

    The registry is thread-safe: a :class:`~repro.serve.MediatorService`
    shares one registry across every worker so a breaker tripped by one
    query reroutes the next, and ``allow``/``record`` mutate breaker
    state.  A single reentrant lock guards the maps and every state
    machine; individual :class:`SourceHealth`/:class:`CircuitBreaker`
    objects are only ever touched with it held.
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        quarantine: QuarantineConfig | None = None,
    ):
        self.config = config
        self.quarantine = quarantine
        self._health: dict[str, SourceHealth] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._quality: dict[str, DataQuality] = {}
        self._quarantined: dict[str, float] = {}
        self._lock = threading.RLock()
        #: Optional transition observer, called as
        #: ``observer(now_s, source, old_state, new_state)`` with the
        #: state values.  Checked at call time, so it may be attached
        #: after breakers already exist.
        self.observer = None
        #: Optional quarantine observer, called as
        #: ``quality_observer(now_s, source, action, score, answers)``
        #: with action ``"enter"`` or ``"exit"``.
        self.quality_observer = None

    @property
    def enabled(self) -> bool:
        return self.config is not None

    @property
    def quarantine_enabled(self) -> bool:
        return self.quarantine is not None

    def health_of(self, source_name: str) -> SourceHealth:
        with self._lock:
            health = self._health.get(source_name)
            if health is None:
                window = self.config.window if self.config else 20
                health = SourceHealth(window)
                self._health[source_name] = health
            return health

    def breaker_of(self, source_name: str) -> CircuitBreaker | None:
        if self.config is None:
            return None
        with self._lock:
            breaker = self._breakers.get(source_name)
            if breaker is None:

                def notify(now_s, old, new, name=source_name):
                    if self.observer is not None:
                        self.observer(now_s, name, old, new)

                breaker = CircuitBreaker(
                    self.config, self.health_of(source_name), notify=notify
                )
                self._breakers[source_name] = breaker
            return breaker

    def quality_of(self, source_name: str) -> DataQuality:
        with self._lock:
            quality = self._quality.get(source_name)
            if quality is None:
                quality = DataQuality()
                self._quality[source_name] = quality
            return quality

    def record_quality(
        self,
        source_name: str,
        now_s: float,
        *,
        clean: bool,
        delivered: int = 0,
        kept: int = 0,
    ) -> None:
        """Fold one verified answer into the source's quality score.

        Called by the answer verifier for every checked answer; may trip
        the registry-level quarantine when the score crosses the
        configured threshold.
        """
        with self._lock:
            quality = self.quality_of(source_name)
            quality.record(clean, delivered, kept)
            config = self.quarantine
            if config is None or source_name in self._quarantined:
                return
            if quality.volume < config.min_volume:
                return
            if quality.score(config.prior_weight) < config.quality_threshold:
                self._enter_quarantine(source_name, now_s)

    def _enter_quarantine(self, source_name: str, now_s: float) -> None:
        quality = self.quality_of(source_name)
        breaker = self._breakers.get(source_name)
        old = breaker.state if breaker else BreakerState.CLOSED
        self._quarantined[source_name] = now_s
        quality.times_quarantined += 1
        if self.observer is not None:
            self.observer(
                now_s, source_name, old.value, BreakerState.QUARANTINED.value
            )
        if self.quality_observer is not None:
            assert self.quarantine is not None
            self.quality_observer(
                now_s,
                source_name,
                "enter",
                quality.score(self.quarantine.prior_weight),
                quality.volume,
            )

    def _release_quarantine(self, source_name: str, now_s: float) -> None:
        quality = self.quality_of(source_name)
        del self._quarantined[source_name]
        # Judge the source afresh on what it serves after coming back.
        quality.mark = quality.answers
        quality.clean_mark = quality.clean
        breaker = self._breakers.get(source_name)
        new = breaker.state if breaker else BreakerState.CLOSED
        if self.observer is not None:
            self.observer(
                now_s, source_name, BreakerState.QUARANTINED.value, new.value
            )
        if self.quality_observer is not None:
            assert self.quarantine is not None
            self.quality_observer(
                now_s,
                source_name,
                "exit",
                quality.score(self.quarantine.prior_weight),
                quality.volume,
            )

    def quality_score(self, source_name: str) -> float:
        """The source's current shrunk clean-answer fraction."""
        with self._lock:
            quality = self._quality.get(source_name)
            if quality is None:
                return 1.0
            prior = self.quarantine.prior_weight if self.quarantine else 2.0
            return quality.score(prior)

    def quarantined_names(self) -> tuple[str, ...]:
        """Currently quarantined sources, sorted."""
        with self._lock:
            return tuple(sorted(self._quarantined))

    def quarantine_lifts_at(self, source_name: str) -> float | None:
        """When the quarantine ends (None if not quarantined or sticky)."""
        with self._lock:
            since = self._quarantined.get(source_name)
            if since is None or self.quarantine is None:
                return None
            if self.quarantine.cooldown_s is None:
                return math.inf
            return since + self.quarantine.cooldown_s

    def allow(self, source_name: str, now_s: float) -> bool:
        with self._lock:
            since = self._quarantined.get(source_name)
            if since is not None:
                assert self.quarantine is not None
                cooldown = self.quarantine.cooldown_s
                if cooldown is None or now_s + 1e-12 < since + cooldown:
                    return False
                self._release_quarantine(source_name, now_s)
            breaker = self.breaker_of(source_name)
            return True if breaker is None else breaker.allow(now_s)

    def reopens_at(self, source_name: str) -> float | None:
        with self._lock:
            breaker = self.breaker_of(source_name)
            return None if breaker is None else breaker.reopens_at_s

    def abandon(self, source_name: str) -> None:
        """Return a probe slot for a cancelled (raced-out) dispatch."""
        with self._lock:
            breaker = self.breaker_of(source_name)
            if breaker is not None:
                breaker.abandon()

    def record(
        self, source_name: str, now_s: float, ok: bool, duration_s: float
    ) -> None:
        with self._lock:
            breaker = self.breaker_of(source_name)
            if breaker is None:
                self.health_of(source_name).record(ok, duration_s)
            elif ok:
                breaker.record_success(now_s, duration_s)
            else:
                breaker.record_failure(now_s, duration_s)

    def state_of(self, source_name: str) -> BreakerState:
        with self._lock:
            if source_name in self._quarantined:
                return BreakerState.QUARANTINED
            breaker = self.breaker_of(source_name)
            return BreakerState.CLOSED if breaker is None else breaker.state

    def snapshot(self) -> dict[str, dict]:
        """Per-source health as plain data (tests and telemetry read
        this instead of poking registry internals).

        Keys are the sources seen so far; each value holds lifetime
        ``attempts`` / ``successes`` / ``failures``, rolling-window
        ``failure_rate`` and ``mean_latency_s``, total ``busy_s``, and
        the breaker's ``state`` / ``times_opened`` (a disabled breaker
        reads as permanently closed, never opened).
        """
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        prior = self.quarantine.prior_weight if self.quarantine else 2.0
        for name in sorted(set(self._health) | set(self._quality)):
            health = self._health.get(name) or SourceHealth()
            breaker = self._breakers.get(name)
            quality = self._quality.get(name)
            if name in self._quarantined:
                state = BreakerState.QUARANTINED
            elif breaker:
                state = breaker.state
            else:
                state = BreakerState.CLOSED
            out[name] = {
                "attempts": health.attempts,
                "successes": health.attempts - health.failures,
                "failures": health.failures,
                "failure_rate": health.failure_rate,
                "mean_latency_s": health.mean_latency_s,
                "busy_s": health.busy_s,
                "state": state.value,
                "times_opened": breaker.times_opened if breaker else 0,
                "answers": quality.answers if quality else 0,
                "tainted": quality.tainted if quality else 0,
                "quality_score": quality.score(prior) if quality else 1.0,
                "times_quarantined": (
                    quality.times_quarantined if quality else 0
                ),
            }
        return out

    def report(self) -> str:
        """Fixed-width per-source health table."""
        lines = [
            "source   attempts fail  rate   breaker    opened quality"
        ]
        with self._lock:
            prior = self.quarantine.prior_weight if self.quarantine else 2.0
            for name in sorted(set(self._health) | set(self._quality)):
                health = self._health.get(name) or SourceHealth()
                breaker = self._breakers.get(name)
                quality = self._quality.get(name)
                if name in self._quarantined:
                    state = BreakerState.QUARANTINED.value
                else:
                    state = breaker.state.value if breaker else "-"
                opened = breaker.times_opened if breaker else 0
                score = f"{quality.score(prior):>6.0%}" if quality else "     -"
                lines.append(
                    f"{name:<8} {health.attempts:>8} {health.failures:>4} "
                    f"{health.failure_rate:>5.0%} {state:>10} {opened:>7} "
                    f"{score}"
                )
        return "\n".join(lines)
