"""In-flight re-planning: mask dead sources, re-optimize, merge answers.

Hedging and breakers (:mod:`repro.runtime.engine`) recover an operation
*while it runs*; this module handles the case they cannot: an operation
exhausted its retry budget and no substitute could serve it, so the run
degraded.  The :class:`ResilientExecutor` then re-invokes the optimizer
on the residual problem — the same fusion query over the surviving
sources, with every dead source masked out and an unused substitute
swapped in where one exists — and executes the new plan on the *same*
engine, so circuit-breaker state carries across rounds and the replan
does not re-burn budget on sources already known dead.

Answers accumulate across rounds by union.  That is sound because fusion
answers are monotone in the evaluated sources: each round's (possibly
degraded) answer is a subset of the true answer — skipping a source only
ever under-fills some ``X_i = ∪_j sq(c_i, R_j)``, shrinking the final
intersection — so the union of subsets is still a subset.  Re-planning
can therefore only *add* confirmed answers, never invent spurious ones;
already-confirmed item sets are preserved verbatim.

Example:
    >>> from repro.sources.generators import dmv_fig1, replicate_federation
    >>> from repro.runtime.replan import ResilientExecutor
    >>> federation, query = dmv_fig1()
    >>> executor = ResilientExecutor(replicate_federation(federation, 2))
    >>> sorted(executor.run(query).items)
    ['J55', 'T21']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.costs.charge import ChargeCostModel
from repro.costs.estimates import SizeEstimator
from repro.costs.model import CostModel
from repro.errors import CostModelError
from repro.optimize.base import OptimizationResult, Optimizer
from repro.optimize.sja_plus import SJAPlusOptimizer
from repro.query.fusion import FusionQuery
from repro.runtime.engine import RuntimeEngine, RuntimeResult
from repro.runtime.faults import FaultInjector
from repro.runtime.health import (
    BreakerConfig,
    BreakerState,
    HealthRegistry,
    QuarantineConfig,
)
from repro.runtime.policy import RetryPolicy
from repro.runtime.trace import OpStatus
from repro.sources.registry import Federation
from repro.sources.statistics import ExactStatistics, StatisticsProvider


@dataclass(frozen=True)
class ReplanRound:
    """One optimize-and-execute round of a resilient run."""

    round: int  # 0 = initial plan, 1.. = replans
    sources: tuple[str, ...]  # sources the optimizer planned over
    optimization: OptimizationResult
    result: RuntimeResult

    @property
    def dead_sources(self) -> tuple[str, ...]:
        """Planned sources of this round's degraded operations."""
        seen: list[str] = []
        for span in self.result.trace.remote_spans:
            if span.status is OpStatus.DEGRADED and span.source not in seen:
                seen.append(span.source)
        return tuple(seen)


@dataclass(frozen=True)
class ResilientResult:
    """The merged outcome of an initial run plus any replan rounds."""

    query: FusionQuery
    rounds: tuple[ReplanRound, ...]
    masked: tuple[str, ...]  # sources removed from planning as dead

    @property
    def items(self) -> frozenset[Any]:
        """Union of all rounds' answers (each a subset of the truth)."""
        merged: frozenset[Any] = frozenset()
        for round_ in self.rounds:
            merged |= round_.result.items
        return merged

    @property
    def replans(self) -> int:
        return len(self.rounds) - 1

    @property
    def complete(self) -> bool:
        """True when the final round finished with nothing degraded."""
        return self.rounds[-1].result.complete

    @property
    def deadline_expired(self) -> bool:
        """True when any round was cut short by the query budget."""
        return any(r.result.deadline_expired for r in self.rounds)

    @property
    def makespan_s(self) -> float:
        """Total virtual time: rounds run back to back on one clock."""
        return sum(r.result.makespan_s for r in self.rounds)

    @property
    def total_cost(self) -> float:
        return sum(r.result.trace.total_cost for r in self.rounds)

    def summary(self) -> str:
        text = (
            f"{len(self.items)} items in {len(self.rounds)} round(s), "
            f"makespan {self.makespan_s:.3f}s, cost {self.total_cost:.1f}"
        )
        if self.masked:
            text += f", masked: {', '.join(self.masked)}"
        if not self.complete:
            text += " (still degraded)"
        return text


class ResilientExecutor:
    """Optimize → execute → re-plan around dead sources, bounded.

    Args:
        federation: Sources to run against (replicas included; by
            default planning covers one representative per replica
            group, leaving mirrors as failover capacity).
        optimizer: Planning algorithm (default SJA+, as the mediator).
        statistics: Statistics provider for the optimizer's estimates.
        cost_model: Cost model for the optimizer.
        faults: Fault injector shared by every round.
        policy: Retry policy for the engine.
        hedge_delay_s: Hedged-dispatch delay (``None`` disables).
        breaker: Circuit-breaker configuration (``None`` disables).
        health: An existing :class:`HealthRegistry` to share with other
            engines over the same federation (overrides ``breaker``).
        max_replans: How many re-planning rounds may follow the initial
            run (0 = plain execution, no re-planning).
        min_containment: Row-containment threshold for substitutes.
        load_balance: Spread healthy traffic across replica-group
            members (see :class:`RuntimeEngine`).
        recorder: Optional :class:`repro.obs.Recorder` shared by every
            round; the executor advances its round counter and clock
            offset so event time stays monotone across re-plans.
    """

    def __init__(
        self,
        federation: Federation,
        optimizer: Optimizer | None = None,
        statistics: StatisticsProvider | None = None,
        cost_model: CostModel | None = None,
        faults: FaultInjector | None = None,
        policy: RetryPolicy | None = None,
        hedge_delay_s: float | None = None,
        breaker: BreakerConfig | None = None,
        health: HealthRegistry | None = None,
        max_replans: int = 2,
        min_containment: float = 1.0,
        load_balance: bool = False,
        verify: str = "off",
        quarantine: QuarantineConfig | None = None,
        recorder=None,
    ):
        if max_replans < 0:
            raise CostModelError(
                f"max_replans must be >= 0, got {max_replans}"
            )
        self.federation = federation
        self.optimizer = optimizer or SJAPlusOptimizer()
        self.statistics = statistics or ExactStatistics(federation)
        self.estimator = SizeEstimator(
            self.statistics, federation.source_names
        )
        self.cost_model = cost_model or ChargeCostModel.for_federation(
            federation, self.estimator
        )
        self.max_replans = max_replans
        self.min_containment = min_containment
        self.recorder = recorder
        # One engine for every round: breaker/health state must survive
        # re-planning so a replan does not re-burn budget on known-dead
        # sources.
        self.engine = RuntimeEngine(
            federation,
            faults=faults,
            policy=policy,
            hedge_delay_s=hedge_delay_s,
            breaker=breaker,
            health=health,
            min_containment=min_containment,
            load_balance=load_balance,
            verify=verify,
            quarantine=quarantine,
            recorder=recorder,
        )

    def run(
        self,
        query: FusionQuery,
        source_names: Sequence[str] | None = None,
        budget_s: float | None = None,
    ) -> ResilientResult:
        """Execute ``query``, re-planning around dead sources as needed.

        When ``budget_s`` is given it bounds the *whole* resilient run:
        rounds share one clock, so each round's engine budget is the
        original budget minus the virtual time earlier rounds consumed,
        and re-planning stops once the budget is exhausted (the partial
        answer accumulated so far is returned on time instead).
        """
        query.validate_against_schema(self.federation.schema)
        if source_names is None:
            active = list(self.federation.representative_names)
        else:
            active = list(source_names)
        masked: list[str] = []
        rounds: list[ReplanRound] = []
        remaining_s = budget_s
        # The shared health registry may already be quarantining sources
        # (tripped by earlier queries); never plan onto them.
        for name in self.engine.health.quarantined_names():
            if name in active:
                self._mask_source(name, active, masked)
        for round_no in range(self.max_replans + 1):
            optimization = self.optimizer.optimize(
                query, tuple(active), self.cost_model, self.estimator
            )
            if self.recorder is not None:
                self.recorder.round = round_no
                self.recorder.round_planned(
                    0.0,
                    round_no,
                    optimization.optimizer,
                    sorted(active),
                    sorted(masked),
                    optimization.estimated_cost,
                )
            result = self.engine.run(optimization.plan, budget_s=remaining_s)
            if self.recorder is not None:
                # Rounds run back to back on one clock; shift the next
                # round's timestamps past everything this round emitted.
                self.recorder.clock_offset_s += result.makespan_s
            if remaining_s is not None:
                remaining_s -= result.makespan_s
            round_ = ReplanRound(
                round=round_no,
                sources=tuple(active),
                optimization=optimization,
                result=result,
            )
            rounds.append(round_)
            if result.complete:
                break
            if remaining_s is not None and remaining_s <= 0:
                break  # budget spent; return the partial union on time
            changed = False
            unusable = list(round_.dead_sources)
            # A round may also have quarantined a source on data
            # quality; replan around it exactly like a dead one.
            for name in self.engine.health.quarantined_names():
                if name in active and name not in unusable:
                    unusable.append(name)
            for dead in unusable:
                if self._mask_source(dead, active, masked):
                    changed = True
            if not active or not changed:
                break  # nothing left to reroute to; keep what we have
        return ResilientResult(
            query=query, rounds=tuple(rounds), masked=tuple(masked)
        )

    def _mask_source(
        self, dead: str, active: list[str], masked: list[str]
    ) -> bool:
        """Remove ``dead`` from planning, swapping in a substitute."""
        changed = False
        if dead not in masked:
            masked.append(dead)
        if dead in active:
            active.remove(dead)
            changed = True
        replacement = self._replacement(dead, active, masked)
        if replacement is not None:
            active.append(replacement)
            changed = True
        return changed

    def _replacement(
        self, dead: str, active: list[str], masked: list[str]
    ) -> str | None:
        """Best substitute for ``dead`` not already planned, dead, or
        quarantined."""
        for name in self.federation.substitutes_for(
            dead, min_containment=self.min_containment
        ):
            if name not in active and name not in masked:
                if (
                    self.engine.health.state_of(name)
                    is BreakerState.QUARANTINED
                ):
                    continue
                return name
        return None
