"""Concurrent runtime: discrete-event execution with faults and retries.

The paper's conclusion names "minimizing the response time of a query in
a parallel execution model" as future work; :mod:`repro.mediator.schedule`
analyzes that model statically.  This package *executes* it: a
deterministic discrete-event engine (:mod:`~repro.runtime.engine`) runs
plans concurrently on a virtual clock, a fault layer
(:mod:`~repro.runtime.faults`) makes sources flaky the way Internet
sources are, a policy layer (:mod:`~repro.runtime.policy`) retries with
exponential backoff and degrades gracefully, and a trace layer
(:mod:`~repro.runtime.trace`) records per-operation spans with an ASCII
timeline.  Everything is seeded and replayable.

On top of the engine sit the replica-aware resilience layers: per-source
health tracking and circuit breakers (:mod:`~repro.runtime.health`),
hedged dispatch onto substitutable sources (engine options), and
in-flight re-planning around dead sources
(:mod:`~repro.runtime.replan`).

Faults are not only wire-level: the injector can also tamper with the
*payload* of a successful answer (truncation, stale snapshots,
duplicates, corrupt values — :class:`~repro.runtime.faults.DataFaultProfile`),
and the answer-verification layer (:mod:`~repro.runtime.verify`)
validates, sanitizes, and cross-replica-votes those answers, feeding a
per-source quality score that can quarantine a lying source
(:class:`~repro.runtime.health.QuarantineConfig`).
"""

from repro.runtime.availability import (
    AvailabilityModel,
    CompletenessEstimate,
    ConditionSurvival,
    ObservedAvailability,
    expected_completeness,
)
from repro.runtime.engine import RuntimeEngine, RuntimeResult
from repro.runtime.faults import (
    AttemptFate,
    AttemptOutcome,
    DataFate,
    DataFaultProfile,
    DataTamper,
    FaultInjector,
    FaultProfile,
)
from repro.runtime.health import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    DataQuality,
    HealthRegistry,
    QuarantineConfig,
    SourceHealth,
)
from repro.runtime.policy import (
    CompletenessReport,
    OnExhaust,
    RetryPolicy,
    completeness_report,
)
from repro.runtime.replan import (
    ReplanRound,
    ResilientExecutor,
    ResilientResult,
)
from repro.runtime.trace import AttemptSpan, OpSpan, OpStatus, RuntimeTrace
from repro.runtime.verify import (
    VERIFY_MODES,
    AnswerReport,
    AnswerVerifier,
    VoteResult,
    validate_mode,
)

__all__ = [
    "RuntimeEngine",
    "RuntimeResult",
    "FaultInjector",
    "FaultProfile",
    "AttemptFate",
    "AttemptOutcome",
    "DataFate",
    "DataFaultProfile",
    "DataTamper",
    "AnswerVerifier",
    "AnswerReport",
    "VoteResult",
    "VERIFY_MODES",
    "validate_mode",
    "QuarantineConfig",
    "DataQuality",
    "RetryPolicy",
    "OnExhaust",
    "CompletenessReport",
    "completeness_report",
    "RuntimeTrace",
    "OpSpan",
    "AttemptSpan",
    "OpStatus",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "HealthRegistry",
    "SourceHealth",
    "ResilientExecutor",
    "ResilientResult",
    "ReplanRound",
    "AvailabilityModel",
    "ObservedAvailability",
    "CompletenessEstimate",
    "ConditionSurvival",
    "expected_completeness",
]
