"""Concurrent runtime: discrete-event execution with faults and retries.

The paper's conclusion names "minimizing the response time of a query in
a parallel execution model" as future work; :mod:`repro.mediator.schedule`
analyzes that model statically.  This package *executes* it: a
deterministic discrete-event engine (:mod:`~repro.runtime.engine`) runs
plans concurrently on a virtual clock, a fault layer
(:mod:`~repro.runtime.faults`) makes sources flaky the way Internet
sources are, a policy layer (:mod:`~repro.runtime.policy`) retries with
exponential backoff and degrades gracefully, and a trace layer
(:mod:`~repro.runtime.trace`) records per-operation spans with an ASCII
timeline.  Everything is seeded and replayable.
"""

from repro.runtime.engine import RuntimeEngine, RuntimeResult
from repro.runtime.faults import (
    AttemptFate,
    AttemptOutcome,
    FaultInjector,
    FaultProfile,
)
from repro.runtime.policy import (
    CompletenessReport,
    OnExhaust,
    RetryPolicy,
    completeness_report,
)
from repro.runtime.trace import AttemptSpan, OpSpan, OpStatus, RuntimeTrace

__all__ = [
    "RuntimeEngine",
    "RuntimeResult",
    "FaultInjector",
    "FaultProfile",
    "AttemptFate",
    "AttemptOutcome",
    "RetryPolicy",
    "OnExhaust",
    "CompletenessReport",
    "completeness_report",
    "RuntimeTrace",
    "OpSpan",
    "AttemptSpan",
    "OpStatus",
]
