"""Fault injection for the concurrent runtime.

The network simulator (:mod:`repro.sources.network`) computes how long a
healthy exchange takes; this module decides what *actually* happens to
each attempt on the simulated wire.  Four failure modes, configurable
per source through a :class:`FaultProfile`:

* **transient errors** — the request dies quickly (connection reset);
  the wrapper reports failure after roughly one round trip;
* **stalls** — the source accepts the request and then hangs for
  ``stall_s`` extra seconds; combined with a per-attempt timeout in the
  :class:`~repro.runtime.policy.RetryPolicy` this is the classic
  "request timed out" failure;
* **slowdowns** — the source is up but degraded; the attempt completes
  correctly, ``slowdown_factor`` times slower;
* **hard outages** — absolute windows of virtual time during which every
  request to the source fails fast (connection refused).

On top of the wire-level fates, a :class:`DataFaultProfile` describes
*payload-level* faults: answers that arrive on time but are wrong.
A delivered answer may be ``TRUNCATED`` (a seeded fraction of tuples
silently dropped), ``STALE`` (the source serves a divergent stale
snapshot: some true tuples missing, some spurious ones present),
``DUPLICATE`` (tuples delivered more than once), or ``CORRUPT``
(schema/type-violating values).  These are the untrusted-source
failure modes of Dong et al.'s data-fusion setting; the
:mod:`repro.runtime.verify` subsystem detects and repairs them.

All randomness is drawn from per-source streams seeded from one master
seed, so a run is reproducible regardless of how the event loop
interleaves sources.  Data-fault draws use a *sibling* stream
(``"{seed}:{source}:data"``), so enabling payload faults never shifts
the wire-level outcome stream.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass

from repro.errors import CostModelError
from repro.relational.relation import Relation
from repro.sources.network import LinkProfile


class AttemptFate(enum.Enum):
    """How one request attempt ended on the simulated wire."""

    OK = "ok"
    TRANSIENT = "transient"
    TIMEOUT = "timeout"
    OUTAGE = "outage"
    #: A hedged duplicate whose sibling won the race; the attempt was
    #: abandoned (but its traffic was already on the wire and charged).
    CANCELLED = "cancelled"

    @property
    def failed(self) -> bool:
        return self is not AttemptFate.OK


@dataclass(frozen=True)
class AttemptOutcome:
    """The injector's verdict on one attempt: its fate and duration."""

    fate: AttemptFate
    duration_s: float


class DataFate(enum.Enum):
    """How a *delivered* payload was tampered with (if at all)."""

    TRUNCATED = "truncated"
    STALE = "stale"
    DUPLICATE = "duplicate"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class DataTamper:
    """What the injector did to one delivered payload.

    Attributes:
        fate: The payload fate, or ``None`` for a clean delivery.
        dropped: True tuples silently removed.
        added: Spurious tuples introduced (stale divergence).
        duplicated: Extra duplicate copies delivered.
        corrupted: Values replaced with schema-violating garbage.
        diverged: Rows whose non-merge values were swapped (stale
            snapshots of loaded relations).
    """

    fate: DataFate | None = None
    dropped: int = 0
    added: int = 0
    duplicated: int = 0
    corrupted: int = 0
    diverged: int = 0

    @property
    def tampered(self) -> bool:
        return self.fate is not None


_CLEAN = DataTamper()


@dataclass(frozen=True)
class DataFaultProfile:
    """Payload-fault behaviour of one source.

    Rates are per *delivered* answer; at most one data fate applies to
    any single answer, checked in the fixed order stale, corrupt,
    truncated, duplicate.  Fractions say how much of the answer each
    fate touches.

    Attributes:
        truncated_rate: Probability a delivered answer is missing a
            ``truncated_fraction`` of its tuples.
        stale_rate: Probability the answer is a divergent stale
            snapshot: a ``stale_fraction`` of true tuples missing and a
            comparable number of spurious tuples present.
        duplicate_rate: Probability a ``duplicate_fraction`` of tuples
            are delivered twice.
        corrupt_rate: Probability a ``corrupt_fraction`` of values are
            replaced with schema/type-violating garbage.
    """

    truncated_rate: float = 0.0
    truncated_fraction: float = 0.5
    stale_rate: float = 0.0
    stale_fraction: float = 0.5
    duplicate_rate: float = 0.0
    duplicate_fraction: float = 0.5
    corrupt_rate: float = 0.0
    corrupt_fraction: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "truncated_rate",
            "stale_rate",
            "duplicate_rate",
            "corrupt_rate",
        ):
            rate = getattr(self, name)
            if not (math.isfinite(rate) and 0.0 <= rate <= 1.0):
                raise CostModelError(f"{name} must be in [0, 1], got {rate}")
        for name in (
            "truncated_fraction",
            "stale_fraction",
            "duplicate_fraction",
            "corrupt_fraction",
        ):
            fraction = getattr(self, name)
            if not (math.isfinite(fraction) and 0.0 < fraction <= 1.0):
                raise CostModelError(
                    f"{name} must be in (0, 1], got {fraction}"
                )

    @property
    def healthy(self) -> bool:
        """True when this profile can never tamper with a payload."""
        return (
            self.truncated_rate == 0.0
            and self.stale_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.corrupt_rate == 0.0
        )

    @property
    def expected_delivery(self) -> float:
        """Expected fraction of true tuples that survive delivery.

        Duplicates do not lose tuples; truncation, stale divergence and
        corruption each lose their fraction at their rate.  Used by
        :class:`~repro.runtime.availability.AvailabilityModel` to charge
        expected truncation against ``expected_completeness``.
        """
        survival = 1.0
        survival *= 1.0 - self.truncated_rate * self.truncated_fraction
        survival *= 1.0 - self.stale_rate * self.stale_fraction
        survival *= 1.0 - self.corrupt_rate * self.corrupt_fraction
        return survival

    @staticmethod
    def none() -> "DataFaultProfile":
        """A source that never tampers with its answers."""
        return DataFaultProfile()

    @staticmethod
    def stale_replica(
        rate: float, fraction: float = 0.5
    ) -> "DataFaultProfile":
        """A replica serving a divergent stale snapshot at ``rate``."""
        return DataFaultProfile(stale_rate=rate, stale_fraction=fraction)

    @staticmethod
    def corrupting(rate: float, fraction: float = 0.5) -> "DataFaultProfile":
        """A source emitting type-violating values at ``rate``."""
        return DataFaultProfile(corrupt_rate=rate, corrupt_fraction=fraction)


@dataclass(frozen=True)
class FaultProfile:
    """Failure behaviour of one source.

    Attributes:
        transient_rate: Per-attempt probability of a fast transient error.
        stall_rate: Per-attempt probability the source hangs; the attempt
            takes ``stall_s`` extra seconds (a policy timeout turns this
            into a timeout failure).
        stall_s: How long a stalled attempt hangs beyond its normal time.
        slowdown_rate: Per-attempt probability of a degraded-but-correct
            response.
        slowdown_factor: Duration multiplier for slowed attempts.
        outages: ``(start_s, end_s)`` windows of virtual time during
            which every attempt fails fast.
        data: Optional payload-fault behaviour — answers that arrive
            but are truncated, stale, duplicated, or corrupt.
    """

    transient_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 30.0
    slowdown_rate: float = 0.0
    slowdown_factor: float = 4.0
    outages: tuple[tuple[float, float], ...] = ()
    data: DataFaultProfile | None = None

    def __post_init__(self) -> None:
        for name in ("transient_rate", "stall_rate", "slowdown_rate"):
            rate = getattr(self, name)
            if not (math.isfinite(rate) and 0.0 <= rate <= 1.0):
                raise CostModelError(f"{name} must be in [0, 1], got {rate}")
        if not (math.isfinite(self.stall_s) and self.stall_s >= 0):
            raise CostModelError(
                f"stall_s must be finite and non-negative, got {self.stall_s}"
            )
        if not (math.isfinite(self.slowdown_factor) and self.slowdown_factor >= 1):
            raise CostModelError(
                f"slowdown_factor must be >= 1, got {self.slowdown_factor}"
            )
        for window in self.outages:
            start, end = window
            if not (math.isfinite(start) and math.isfinite(end) and 0 <= start < end):
                raise CostModelError(f"invalid outage window {window!r}")

    @property
    def wire_healthy(self) -> bool:
        """True when this profile can never perturb an attempt's wire fate."""
        return (
            self.transient_rate == 0.0
            and self.stall_rate == 0.0
            and self.slowdown_rate == 0.0
            and not self.outages
        )

    @property
    def healthy(self) -> bool:
        """True when this profile can never perturb an attempt."""
        return self.wire_healthy and (
            self.data is None or self.data.healthy
        )

    def in_outage(self, now_s: float) -> bool:
        """Whether ``now_s`` falls inside a hard-outage window."""
        return any(start <= now_s < end for start, end in self.outages)

    @staticmethod
    def none() -> "FaultProfile":
        """A perfectly healthy source."""
        return FaultProfile()

    @staticmethod
    def flaky(rate: float) -> "FaultProfile":
        """Transient errors only, at the given per-attempt rate."""
        return FaultProfile(transient_rate=rate)

    @staticmethod
    def degraded(rate: float, factor: float = 4.0) -> "FaultProfile":
        """Slowdowns only: correct answers, ``factor`` times slower."""
        return FaultProfile(slowdown_rate=rate, slowdown_factor=factor)


class FaultInjector:
    """Seeded, per-source fault decisions for the runtime engine.

    Args:
        profiles: Either one :class:`FaultProfile` applied to every
            source, or a ``{source_name: FaultProfile}`` mapping (sources
            not in the mapping use ``default``).
        seed: Master seed; each source derives an independent stream, so
            outcomes do not depend on how the event loop interleaves
            sources.
        default: Profile for sources absent from a mapping.
    """

    def __init__(
        self,
        profiles: FaultProfile | dict[str, FaultProfile] | None = None,
        seed: int = 0,
        default: FaultProfile | None = None,
    ):
        if profiles is None:
            profiles = {}
        if isinstance(profiles, FaultProfile):
            self._default = profiles
            self._profiles: dict[str, FaultProfile] = {}
        else:
            self._default = default or FaultProfile.none()
            self._profiles = dict(profiles)
        self.seed = seed
        self._streams: dict[str, random.Random] = {}
        self._data_streams: dict[str, random.Random] = {}
        self.attempts = 0
        # One bucket per kind of *injected* perturbation.  Cancellations
        # are a hedging artifact of the engine, not an injected fault,
        # so they have no bucket here.
        self.injected: dict[str, int] = {
            kind: 0
            for kind in ("transient", "outage", "stall", "slowdown")
        }
        self.injected.update({fate.value: 0 for fate in DataFate})

    @staticmethod
    def none() -> "FaultInjector":
        """An injector that never perturbs anything."""
        return FaultInjector(FaultProfile.none())

    def profile_for(self, source_name: str) -> FaultProfile:
        return self._profiles.get(source_name, self._default)

    def _stream(self, source_name: str) -> random.Random:
        stream = self._streams.get(source_name)
        if stream is None:
            # String seeding is hashed with SHA-512 internally, so streams
            # are stable across processes (unlike built-in hash()).
            stream = random.Random(f"{self.seed}:{source_name}")
            self._streams[source_name] = stream
        return stream

    def judge(
        self,
        source_name: str,
        now_s: float,
        base_duration_s: float,
        link: LinkProfile,
    ) -> AttemptOutcome:
        """Decide one attempt's fate.

        ``base_duration_s`` is the healthy duration of the exchange (from
        the network simulator); the outcome's duration replaces it.  A
        failed attempt still takes simulated time: transient errors
        surface after one round trip, outages fail after one latency.
        """
        self.attempts += 1
        profile = self.profile_for(source_name)
        if profile.wire_healthy:
            return AttemptOutcome(AttemptFate.OK, base_duration_s)
        if profile.in_outage(now_s):
            self.injected["outage"] += 1
            return AttemptOutcome(AttemptFate.OUTAGE, link.latency_s)
        stream = self._stream(source_name)
        # Fixed draw order keeps streams aligned across configurations.
        u_transient = stream.random()
        u_stall = stream.random()
        u_slow = stream.random()
        if u_transient < profile.transient_rate:
            self.injected["transient"] += 1
            return AttemptOutcome(
                AttemptFate.TRANSIENT, link.request_time_s(0, 0)
            )
        duration = base_duration_s
        if u_stall < profile.stall_rate:
            self.injected["stall"] += 1
            duration += profile.stall_s
        if u_slow < profile.slowdown_rate:
            self.injected["slowdown"] += 1
            duration *= profile.slowdown_factor
        return AttemptOutcome(AttemptFate.OK, duration)

    # ------------------------------------------------------------------
    # Payload-level fates

    def _data_stream(self, source_name: str) -> random.Random:
        stream = self._data_streams.get(source_name)
        if stream is None:
            # A sibling of the wire stream: enabling data faults must
            # never shift a source's wire-level outcomes.
            stream = random.Random(f"{self.seed}:{source_name}:data")
            self._data_streams[source_name] = stream
        return stream

    def tamper(
        self,
        source_name: str,
        value: "Relation | frozenset",
        *,
        pool: frozenset = frozenset(),
    ) -> "tuple[Relation | frozenset | tuple, DataTamper]":
        """Maybe tamper with one *delivered* payload.

        ``value`` is an answer that already survived the wire — an item
        set (selection/semijoin) or a :class:`Relation` (load).
        ``pool`` supplies candidate spurious items for stale item-set
        answers (the source's items that did *not* match).  Returns the
        payload as the source actually serves it plus a
        :class:`DataTamper` report; tampered item sets come back as a
        tuple because duplicates are meaningful.
        """
        profile = self.profile_for(source_name).data
        if profile is None or profile.healthy:
            return value, _CLEAN
        stream = self._data_stream(source_name)
        # Fixed draw order, one uniform per fate, every delivery.
        u_stale = stream.random()
        u_corrupt = stream.random()
        u_truncated = stream.random()
        u_duplicate = stream.random()
        fate: DataFate | None = None
        if u_stale < profile.stale_rate:
            fate = DataFate.STALE
        elif u_corrupt < profile.corrupt_rate:
            fate = DataFate.CORRUPT
        elif u_truncated < profile.truncated_rate:
            fate = DataFate.TRUNCATED
        elif u_duplicate < profile.duplicate_rate:
            fate = DataFate.DUPLICATE
        if fate is None:
            return value, _CLEAN
        if isinstance(value, Relation):
            payload, tamper = self._tamper_relation(
                stream, profile, fate, value
            )
        else:
            payload, tamper = self._tamper_items(
                stream, profile, fate, value, pool
            )
        if tamper.tampered:
            self.injected[tamper.fate.value] += 1
        return payload, tamper

    @staticmethod
    def _touch(n: int, fraction: float) -> int:
        """How many of ``n`` tuples a fate touches (at least one)."""
        return max(1, round(n * fraction)) if n else 0

    @staticmethod
    def _corrupt_value(stream: random.Random) -> bytes:
        # bytes are rejected by every DataType, so a corrupt value is
        # detectable against any declared schema.
        return f"corrupt#{stream.getrandbits(32):08x}".encode("ascii")

    def _tamper_items(
        self,
        stream: random.Random,
        profile: DataFaultProfile,
        fate: DataFate,
        items: frozenset,
        pool: frozenset,
    ) -> "tuple[frozenset | tuple, DataTamper]":
        ordered = sorted(items, key=repr)
        n = len(ordered)
        if fate is DataFate.TRUNCATED:
            drop = self._touch(n, profile.truncated_fraction)
            if not drop:
                return items, _CLEAN
            doomed = set(stream.sample(range(n), drop))
            kept = tuple(
                item for i, item in enumerate(ordered) if i not in doomed
            )
            return kept, DataTamper(fate, dropped=drop)
        if fate is DataFate.STALE:
            spurious = sorted(pool - items, key=repr)
            drop = self._touch(n, profile.stale_fraction)
            add = min(
                len(spurious), self._touch(max(n, 1), profile.stale_fraction)
            )
            if not drop and not add:
                return items, _CLEAN
            doomed = set(stream.sample(range(n), drop)) if drop else set()
            kept = [
                item for i, item in enumerate(ordered) if i not in doomed
            ]
            kept.extend(stream.sample(spurious, add))
            return tuple(kept), DataTamper(fate, dropped=drop, added=add)
        if fate is DataFate.CORRUPT:
            bad = self._touch(n, profile.corrupt_fraction)
            if not bad:
                return items, _CLEAN
            doomed = set(stream.sample(range(n), bad))
            payload = tuple(
                self._corrupt_value(stream) if i in doomed else item
                for i, item in enumerate(ordered)
            )
            return payload, DataTamper(fate, corrupted=bad)
        dup = self._touch(n, profile.duplicate_fraction)
        if not dup:
            return items, _CLEAN
        extras = stream.sample(ordered, dup)
        return tuple(ordered) + tuple(extras), DataTamper(
            fate, duplicated=dup
        )

    def _tamper_relation(
        self,
        stream: random.Random,
        profile: DataFaultProfile,
        fate: DataFate,
        relation: Relation,
    ) -> "tuple[Relation, DataTamper]":
        rows = relation.rows
        n = len(rows)
        schema = relation.schema
        if fate is DataFate.TRUNCATED:
            drop = self._touch(n, profile.truncated_fraction)
            if not drop:
                return relation, _CLEAN
            doomed = set(stream.sample(range(n), drop))
            kept = [row for i, row in enumerate(rows) if i not in doomed]
            return (
                Relation(relation.name, schema, kept),
                DataTamper(fate, dropped=drop),
            )
        if fate is DataFate.STALE:
            # A stale snapshot: pairs of rows have swapped their
            # non-merge values, so downstream selections admit rows
            # they should not and miss rows they should keep.
            pairs = self._touch(n, profile.stale_fraction)
            if n < 2 or not pairs:
                return relation, _CLEAN
            pairs = min(pairs, n // 2)
            chosen = stream.sample(range(n), 2 * pairs)
            mutated = [list(row) for row in rows]
            merge = schema.merge_position
            swap_at = [
                pos for pos in range(len(schema.names)) if pos != merge
            ]
            for k in range(pairs):
                a, b = chosen[2 * k], chosen[2 * k + 1]
                for pos in swap_at:
                    mutated[a][pos], mutated[b][pos] = (
                        mutated[b][pos],
                        mutated[a][pos],
                    )
            return (
                Relation(relation.name, schema, map(tuple, mutated)),
                DataTamper(fate, diverged=2 * pairs),
            )
        if fate is DataFate.CORRUPT:
            bad = self._touch(n, profile.corrupt_fraction)
            if not bad:
                return relation, _CLEAN
            doomed = set(stream.sample(range(n), bad))
            merge = schema.merge_position
            mutated = []
            for i, row in enumerate(rows):
                if i in doomed:
                    row = (
                        row[:merge]
                        + (self._corrupt_value(stream),)
                        + row[merge + 1 :]
                    )
                mutated.append(row)
            return (
                Relation.unchecked(relation.name, schema, mutated),
                DataTamper(fate, corrupted=bad),
            )
        dup = self._touch(n, profile.duplicate_fraction)
        if not dup:
            return relation, _CLEAN
        extras = stream.sample(rows, dup)
        return (
            Relation(relation.name, schema, tuple(rows) + tuple(extras)),
            DataTamper(fate, duplicated=dup),
        )

    def summary(self) -> str:
        """One-line account of what was injected."""
        injected = sum(self.injected.values())
        parts = ", ".join(
            f"{count} {kind}"
            for kind, count in self.injected.items()
            if count
        )
        return (
            f"{self.attempts} attempts, {injected} injected faults"
            + (f" ({parts})" if parts else "")
        )
