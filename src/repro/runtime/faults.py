"""Fault injection for the concurrent runtime.

The network simulator (:mod:`repro.sources.network`) computes how long a
healthy exchange takes; this module decides what *actually* happens to
each attempt on the simulated wire.  Four failure modes, configurable
per source through a :class:`FaultProfile`:

* **transient errors** — the request dies quickly (connection reset);
  the wrapper reports failure after roughly one round trip;
* **stalls** — the source accepts the request and then hangs for
  ``stall_s`` extra seconds; combined with a per-attempt timeout in the
  :class:`~repro.runtime.policy.RetryPolicy` this is the classic
  "request timed out" failure;
* **slowdowns** — the source is up but degraded; the attempt completes
  correctly, ``slowdown_factor`` times slower;
* **hard outages** — absolute windows of virtual time during which every
  request to the source fails fast (connection refused).

All randomness is drawn from per-source streams seeded from one master
seed, so a run is reproducible regardless of how the event loop
interleaves sources.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass

from repro.errors import CostModelError
from repro.sources.network import LinkProfile


class AttemptFate(enum.Enum):
    """How one request attempt ended on the simulated wire."""

    OK = "ok"
    TRANSIENT = "transient"
    TIMEOUT = "timeout"
    OUTAGE = "outage"
    #: A hedged duplicate whose sibling won the race; the attempt was
    #: abandoned (but its traffic was already on the wire and charged).
    CANCELLED = "cancelled"

    @property
    def failed(self) -> bool:
        return self is not AttemptFate.OK


@dataclass(frozen=True)
class AttemptOutcome:
    """The injector's verdict on one attempt: its fate and duration."""

    fate: AttemptFate
    duration_s: float


@dataclass(frozen=True)
class FaultProfile:
    """Failure behaviour of one source.

    Attributes:
        transient_rate: Per-attempt probability of a fast transient error.
        stall_rate: Per-attempt probability the source hangs; the attempt
            takes ``stall_s`` extra seconds (a policy timeout turns this
            into a timeout failure).
        stall_s: How long a stalled attempt hangs beyond its normal time.
        slowdown_rate: Per-attempt probability of a degraded-but-correct
            response.
        slowdown_factor: Duration multiplier for slowed attempts.
        outages: ``(start_s, end_s)`` windows of virtual time during
            which every attempt fails fast.
    """

    transient_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 30.0
    slowdown_rate: float = 0.0
    slowdown_factor: float = 4.0
    outages: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("transient_rate", "stall_rate", "slowdown_rate"):
            rate = getattr(self, name)
            if not (math.isfinite(rate) and 0.0 <= rate <= 1.0):
                raise CostModelError(f"{name} must be in [0, 1], got {rate}")
        if not (math.isfinite(self.stall_s) and self.stall_s >= 0):
            raise CostModelError(
                f"stall_s must be finite and non-negative, got {self.stall_s}"
            )
        if not (math.isfinite(self.slowdown_factor) and self.slowdown_factor >= 1):
            raise CostModelError(
                f"slowdown_factor must be >= 1, got {self.slowdown_factor}"
            )
        for window in self.outages:
            start, end = window
            if not (math.isfinite(start) and math.isfinite(end) and 0 <= start < end):
                raise CostModelError(f"invalid outage window {window!r}")

    @property
    def healthy(self) -> bool:
        """True when this profile can never perturb an attempt."""
        return (
            self.transient_rate == 0.0
            and self.stall_rate == 0.0
            and self.slowdown_rate == 0.0
            and not self.outages
        )

    def in_outage(self, now_s: float) -> bool:
        """Whether ``now_s`` falls inside a hard-outage window."""
        return any(start <= now_s < end for start, end in self.outages)

    @staticmethod
    def none() -> "FaultProfile":
        """A perfectly healthy source."""
        return FaultProfile()

    @staticmethod
    def flaky(rate: float) -> "FaultProfile":
        """Transient errors only, at the given per-attempt rate."""
        return FaultProfile(transient_rate=rate)

    @staticmethod
    def degraded(rate: float, factor: float = 4.0) -> "FaultProfile":
        """Slowdowns only: correct answers, ``factor`` times slower."""
        return FaultProfile(slowdown_rate=rate, slowdown_factor=factor)


class FaultInjector:
    """Seeded, per-source fault decisions for the runtime engine.

    Args:
        profiles: Either one :class:`FaultProfile` applied to every
            source, or a ``{source_name: FaultProfile}`` mapping (sources
            not in the mapping use ``default``).
        seed: Master seed; each source derives an independent stream, so
            outcomes do not depend on how the event loop interleaves
            sources.
        default: Profile for sources absent from a mapping.
    """

    def __init__(
        self,
        profiles: FaultProfile | dict[str, FaultProfile] | None = None,
        seed: int = 0,
        default: FaultProfile | None = None,
    ):
        if profiles is None:
            profiles = {}
        if isinstance(profiles, FaultProfile):
            self._default = profiles
            self._profiles: dict[str, FaultProfile] = {}
        else:
            self._default = default or FaultProfile.none()
            self._profiles = dict(profiles)
        self.seed = seed
        self._streams: dict[str, random.Random] = {}
        self.attempts = 0
        self.injected: dict[AttemptFate, int] = {
            fate: 0 for fate in AttemptFate if fate.failed
        }

    @staticmethod
    def none() -> "FaultInjector":
        """An injector that never perturbs anything."""
        return FaultInjector(FaultProfile.none())

    def profile_for(self, source_name: str) -> FaultProfile:
        return self._profiles.get(source_name, self._default)

    def _stream(self, source_name: str) -> random.Random:
        stream = self._streams.get(source_name)
        if stream is None:
            # String seeding is hashed with SHA-512 internally, so streams
            # are stable across processes (unlike built-in hash()).
            stream = random.Random(f"{self.seed}:{source_name}")
            self._streams[source_name] = stream
        return stream

    def judge(
        self,
        source_name: str,
        now_s: float,
        base_duration_s: float,
        link: LinkProfile,
    ) -> AttemptOutcome:
        """Decide one attempt's fate.

        ``base_duration_s`` is the healthy duration of the exchange (from
        the network simulator); the outcome's duration replaces it.  A
        failed attempt still takes simulated time: transient errors
        surface after one round trip, outages fail after one latency.
        """
        self.attempts += 1
        profile = self.profile_for(source_name)
        if profile.healthy:
            return AttemptOutcome(AttemptFate.OK, base_duration_s)
        if profile.in_outage(now_s):
            self.injected[AttemptFate.OUTAGE] += 1
            return AttemptOutcome(AttemptFate.OUTAGE, link.latency_s)
        stream = self._stream(source_name)
        # Fixed draw order keeps streams aligned across configurations.
        u_transient = stream.random()
        u_stall = stream.random()
        u_slow = stream.random()
        if u_transient < profile.transient_rate:
            self.injected[AttemptFate.TRANSIENT] += 1
            return AttemptOutcome(
                AttemptFate.TRANSIENT, link.request_time_s(0, 0)
            )
        duration = base_duration_s
        if u_stall < profile.stall_rate:
            duration += profile.stall_s
        if u_slow < profile.slowdown_rate:
            duration *= profile.slowdown_factor
        return AttemptOutcome(AttemptFate.OK, duration)

    def summary(self) -> str:
        """One-line account of what was injected."""
        injected = sum(self.injected.values())
        parts = ", ".join(
            f"{count} {fate.value}"
            for fate, count in self.injected.items()
            if count
        )
        return (
            f"{self.attempts} attempts, {injected} injected failures"
            + (f" ({parts})" if parts else "")
        )
