"""Discrete-event concurrent execution of fusion-query plans.

:mod:`repro.mediator.schedule` *predicts* a plan's response time by
longest-path analysis over a finished trace; this engine *executes* the
plan concurrently on a virtual clock and observes the response time.
Both obey the same parallel execution model:

* remote operations targeting **different** sources overlap;
* operations on the **same** source serialize on one wrapper connection,
  served in plan order (a later op never overtakes an earlier op of the
  same source, matching the scheduler's greedy recurrence — under zero
  faults the simulated makespan equals the predicted one exactly);
* an operation starts only after every register it reads is complete;
* local mediator operations are instantaneous.

On top of that model the engine layers what static analysis cannot see:
per-attempt fault injection (:mod:`repro.runtime.faults`), retries with
exponential backoff and deadlines (:mod:`repro.runtime.policy`), and
per-operation spans (:mod:`repro.runtime.trace`).  Failed attempts are
charged in full on the simulated wire — retries buy resilience with
real traffic, which is exactly the trade-off the R3 benchmark measures.

Example:
    >>> from repro.sources.generators import dmv_fig1
    >>> from repro.plans.builder import build_filter_plan
    >>> from repro.runtime.engine import RuntimeEngine
    >>> federation, query = dmv_fig1()
    >>> plan = build_filter_plan(query, federation.source_names)
    >>> result = RuntimeEngine(federation).run(plan)
    >>> sorted(result.items)
    ['J55', 'T21']
    >>> result.trace.total_retries
    0
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ExecutionError, SourceUnavailableError
from repro.mediator.executor import ExecutionResult, StepTrace
from repro.plans.operations import (
    DifferenceOp,
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    Operation,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan
from repro.relational.algebra import (
    difference,
    intersect_many,
    local_selection,
    union_many,
)
from repro.relational.relation import Relation
from repro.runtime.faults import AttemptFate, AttemptOutcome, FaultInjector
from repro.runtime.policy import OnExhaust, RetryPolicy
from repro.runtime.trace import AttemptSpan, OpSpan, OpStatus, RuntimeTrace
from repro.sources.registry import Federation


@dataclass(frozen=True)
class RuntimeResult:
    """Answer + observability record of one concurrent execution."""

    items: frozenset[Any]
    trace: RuntimeTrace

    @property
    def makespan_s(self) -> float:
        return self.trace.makespan_s

    @property
    def degraded_steps(self) -> tuple[int, ...]:
        """Plan steps whose retry budget ran out (empty result used)."""
        return self.trace.degraded_steps

    @property
    def complete(self) -> bool:
        """True when no operation degraded (answer is exact)."""
        return not self.degraded_steps

    def to_execution_result(self) -> ExecutionResult:
        """Project onto the sequential executor's result type.

        Lets every consumer of :class:`ExecutionResult` (summaries,
        cost accounting, schedule cross-validation) read a concurrent
        run unchanged.  ``elapsed_s`` counts connection-busy time only
        (attempt durations, not backoff waits).
        """
        steps = [
            StepTrace(
                step=span.step,
                operation=span.operation,
                output_size=span.output_size,
                actual_cost=span.cost,
                elapsed_s=span.busy_s,
                messages=span.messages,
                retries=span.retries,
            )
            for span in self.trace.spans
        ]
        return ExecutionResult(items=self.items, steps=steps)

    def summary(self) -> str:
        return self.trace.summary()

    def __repr__(self) -> str:
        return (
            f"RuntimeResult({len(self.items)} items, "
            f"makespan {self.makespan_s:.3f}s, "
            f"{self.trace.total_retries} retries, "
            f"{len(self.degraded_steps)} degraded)"
        )


class RuntimeEngine:
    """Configured concurrent executor over one federation.

    Args:
        federation: The sources to execute against.
        faults: Fault injector (default: no injected faults).
        policy: Retry/backoff/deadline policy (default:
            :meth:`RetryPolicy.default`).
    """

    def __init__(
        self,
        federation: Federation,
        faults: FaultInjector | None = None,
        policy: RetryPolicy | None = None,
    ):
        self.federation = federation
        self.faults = faults or FaultInjector.none()
        self.policy = policy or RetryPolicy.default()

    def run(self, plan: Plan) -> RuntimeResult:
        """Execute ``plan`` concurrently and return answer + trace."""
        return _Execution(self, plan).run()


class _Task:
    """Per-operation mutable execution state."""

    __slots__ = (
        "index", "op", "input_writer", "remaining", "dependents",
        "value", "queued_s", "first_start_s", "attempt_start_s",
        "attempts", "done",
    )

    def __init__(self, index: int, op: Operation):
        self.index = index
        self.op = op
        self.input_writer: dict[str, int] = {}
        self.remaining = 0
        self.dependents: list[int] = []
        self.value: Any = None
        self.queued_s = 0.0
        self.first_start_s: float | None = None
        self.attempt_start_s = 0.0
        self.attempts: list[AttemptSpan] = []
        self.done = False

    @property
    def step(self) -> int:
        return self.index + 1


class _Execution:
    """One plan run: the event heap, queues, and handlers."""

    def __init__(self, engine: RuntimeEngine, plan: Plan):
        self.federation = engine.federation
        self.faults = engine.faults
        self.policy = engine.policy
        self.plan = plan
        self.tasks = self._build_tasks(plan)
        self.result_writer = self._final_writer(plan)
        # Per-source FIFO of task indices in plan order; the head may
        # start once its inputs are ready and the connection is free.
        self.queues: dict[str, deque[_Task]] = {}
        self.busy: dict[str, bool] = {}
        for task in self.tasks:
            if task.op.remote:
                source = task.op.source  # type: ignore[attr-defined]
                self.queues.setdefault(source, deque()).append(task)
                self.busy.setdefault(source, False)
        self.heap: list[tuple[float, int, str, tuple]] = []
        self.seq = itertools.count()
        self.spans: dict[int, OpSpan] = {}
        self.makespan_s = 0.0

    # ------------------------------------------------------------------
    # Static structure

    @staticmethod
    def _build_tasks(plan: Plan) -> list[_Task]:
        tasks = [_Task(i, op) for i, op in enumerate(plan.operations)]
        writer_of: dict[str, int] = {}
        for task in tasks:
            deps = set()
            for register in task.op.reads():
                producer = writer_of[register]  # def-before-use validated
                task.input_writer[register] = producer
                deps.add(producer)
            task.remaining = len(deps)
            for producer in deps:
                tasks[producer].dependents.append(task.index)
            writer_of[task.op.target] = task.index
        return tasks

    @staticmethod
    def _final_writer(plan: Plan) -> int:
        writer = None
        for index, op in enumerate(plan.operations):
            if op.target == plan.result:
                writer = index
        assert writer is not None  # plan validation guarantees this
        return writer

    # ------------------------------------------------------------------
    # Event loop

    def run(self) -> RuntimeResult:
        for task in self.tasks:
            if task.remaining == 0:
                self._mark_ready(task, 0.0)
        while self.heap:
            now, __, kind, payload = heapq.heappop(self.heap)
            if kind == "complete":
                self._handle_complete(now, *payload)
            else:  # "retry"
                self._start_attempt(payload[0], now)
        unfinished = [t.step for t in self.tasks if not t.done]
        if unfinished:  # pragma: no cover - would be an engine bug
            raise ExecutionError(
                f"runtime deadlock: steps {unfinished} never completed"
            )
        ordered = tuple(self.spans[i] for i in range(len(self.tasks)))
        answer = self.tasks[self.result_writer].value
        return RuntimeResult(
            items=frozenset() if answer is None else answer,
            trace=RuntimeTrace(spans=ordered, makespan_s=self.makespan_s),
        )

    def _push(self, time_s: float, kind: str, payload: tuple) -> None:
        heapq.heappush(self.heap, (time_s, next(self.seq), kind, payload))

    # ------------------------------------------------------------------
    # Readiness and dispatch

    def _mark_ready(self, task: _Task, now: float) -> None:
        task.queued_s = now
        if task.op.remote:
            self._try_dispatch(task.op.source, now)  # type: ignore[attr-defined]
        else:
            self._run_local(task, now)

    def _try_dispatch(self, source_name: str, now: float) -> None:
        if self.busy[source_name]:
            return
        queue = self.queues[source_name]
        if not queue or queue[0].remaining > 0:
            return
        task = queue.popleft()
        self.busy[source_name] = True
        self._start_attempt(task, now)

    def _start_attempt(self, task: _Task, now: float) -> None:
        if task.first_start_s is None:
            task.first_start_s = now
        task.attempt_start_s = now
        source = self.federation.source(task.op.source)  # type: ignore[attr-defined]
        mark = len(source.traffic.records)
        try:
            value = self._call_wrapper(task, source)
            call_failed = False
        except SourceUnavailableError:
            value = None
            call_failed = True
        records = source.traffic.records[mark:]
        if call_failed:
            # The legacy per-source FailureInjector fired before any
            # traffic was charged: fail after one empty round trip.
            outcome = AttemptOutcome(
                AttemptFate.TRANSIENT, source.link.request_time_s(0, 0)
            )
        else:
            base = sum(record.elapsed_s for record in records)
            outcome = self.faults.judge(source.name, now, base, source.link)
        timeout = self.policy.timeout_s
        if timeout is not None and outcome.duration_s > timeout:
            outcome = AttemptOutcome(AttemptFate.TIMEOUT, timeout)
        if outcome.fate.failed:
            value = None
        self._push(
            now + outcome.duration_s,
            "complete",
            (task, outcome, value, records),
        )

    def _call_wrapper(self, task: _Task, source) -> Any:
        op = task.op
        if isinstance(op, SelectionOp):
            return source.selection(op.condition)
        if isinstance(op, SemijoinOp):
            bindings = self.tasks[task.input_writer[op.input_register]].value
            return source.semijoin(op.condition, bindings)
        if isinstance(op, LoadOp):
            return source.load()
        raise ExecutionError(f"unknown remote operation {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Completion, retries, degradation

    def _handle_complete(
        self,
        now: float,
        task: _Task,
        outcome: AttemptOutcome,
        value: Any,
        records: list,
    ) -> None:
        task.attempts.append(
            AttemptSpan(
                attempt=len(task.attempts) + 1,
                start_s=task.attempt_start_s,
                end_s=now,
                fate=outcome.fate,
                cost=sum(r.cost for r in records),
                items_sent=sum(r.items_sent for r in records),
                items_received=sum(r.items_received for r in records),
                rows_loaded=sum(r.rows_loaded for r in records),
                messages=len(records),
            )
        )
        if not outcome.fate.failed:
            self._finish_remote(task, now, value, OpStatus.OK)
            return
        retries_used = len(task.attempts) - 1
        retry_at = now + self.policy.backoff_s(retries_used + 1)
        assert task.first_start_s is not None
        if self.policy.may_retry(retries_used, task.first_start_s, retry_at):
            self._push(retry_at, "retry", (task,))  # connection stays held
            return
        if self.policy.on_exhaust is OnExhaust.FAIL:
            raise ExecutionError(
                f"step {task.step} ({task.op.render()}) failed after "
                f"{retries_used} retries "
                f"(last attempt: {outcome.fate.value})"
            )
        self._finish_remote(
            task, now, self._degraded_value(task), OpStatus.DEGRADED
        )

    def _degraded_value(self, task: _Task) -> Any:
        if isinstance(task.op, LoadOp):
            source = self.federation.source(task.op.source)
            return Relation(task.op.target, source.schema, [])
        return frozenset()

    def _finish_remote(
        self, task: _Task, now: float, value: Any, status: OpStatus
    ) -> None:
        source_name = task.op.source  # type: ignore[attr-defined]
        task.value = value
        task.done = True
        assert task.first_start_s is not None
        self.spans[task.index] = OpSpan(
            step=task.step,
            operation=task.op,
            queued_s=task.queued_s,
            started_s=task.first_start_s,
            finished_s=now,
            attempts=tuple(task.attempts),
            status=status,
            output_size=len(value),
        )
        self.makespan_s = max(self.makespan_s, now)
        self.busy[source_name] = False
        self._propagate(task, now)
        self._try_dispatch(source_name, now)

    def _propagate(self, task: _Task, now: float) -> None:
        for index in task.dependents:
            dependent = self.tasks[index]
            dependent.remaining -= 1
            if dependent.remaining == 0:
                self._mark_ready(dependent, now)

    # ------------------------------------------------------------------
    # Local operations (instantaneous, free)

    def _run_local(self, task: _Task, now: float) -> None:
        op = task.op

        def fetch(register: str) -> Any:
            return self.tasks[task.input_writer[register]].value

        if isinstance(op, UnionOp):
            value = union_many(fetch(register) for register in op.inputs)
        elif isinstance(op, IntersectOp):
            value = intersect_many(fetch(register) for register in op.inputs)
        elif isinstance(op, DifferenceOp):
            value = difference(fetch(op.left), fetch(op.right))
        elif isinstance(op, LocalSelectionOp):
            value = local_selection(fetch(op.input_register), op.condition)
        else:  # pragma: no cover
            raise ExecutionError(f"unknown local operation {op!r}")
        task.value = value
        task.done = True
        self.spans[task.index] = OpSpan(
            step=task.step,
            operation=op,
            queued_s=now,
            started_s=now,
            finished_s=now,
            attempts=(),
            status=OpStatus.OK,
            output_size=len(value),
        )
        self.makespan_s = max(self.makespan_s, now)
        self._propagate(task, now)
