"""Discrete-event concurrent execution of fusion-query plans.

:mod:`repro.mediator.schedule` *predicts* a plan's response time by
longest-path analysis over a finished trace; this engine *executes* the
plan concurrently on a virtual clock and observes the response time.
Both obey the same parallel execution model:

* remote operations targeting **different** sources overlap;
* operations on the **same** source serialize on one wrapper connection,
  served in plan order (a later op never overtakes an earlier op of the
  same source, matching the scheduler's greedy recurrence — under zero
  faults the simulated makespan equals the predicted one exactly);
* an operation starts only after every register it reads is complete;
* local mediator operations are instantaneous.

On top of that model the engine layers what static analysis cannot see:
per-attempt fault injection (:mod:`repro.runtime.faults`), retries with
exponential backoff and deadlines (:mod:`repro.runtime.policy`), and
per-operation spans (:mod:`repro.runtime.trace`).  Failed attempts are
charged in full on the simulated wire — retries buy resilience with
real traffic, which is exactly the trade-off the R3 benchmark measures.

Replica-aware resilience (all opt-in; the zero-config engine behaves
exactly as before):

* **Hedged dispatch** (``hedge_delay_s``) — once an attempt has been
  running for the hedge delay, or immediately when it fails, the same
  operation is speculatively issued to a substitutable source (declared
  mirror or row-containing sibling, :meth:`Federation.substitutability`).
  The first success wins; the loser is cancelled, but its traffic was
  already on the wire and stays charged.  At most one hedge per
  operation, and hedges never consume the retry budget.
* **Circuit breakers** (``breaker``) — a :class:`HealthRegistry` tracks
  per-source rolling failure stats; an open breaker makes dispatch
  reroute to a healthy substitute, or wait for the cooldown when none
  can serve.  Fusion plans only union per-source contributions, so a
  substitute whose rows contain the original's can never introduce
  spurious answers — substitution trades nothing for completeness.
* **Replica load balancing** (``load_balance``) — plans typically put
  every operation of a replica group on its representative, leaving the
  mirrors idle.  With balancing on, a queued operation may claim the
  connection slot of *any* declared group member (round-robin over the
  members, in federation order), so healthy traffic spreads across the
  group instead of serializing on the representative.  Mirrors hold
  identical rows, so answers are unchanged; the serving member is
  recorded in the trace and the rotation is seed-deterministic.

Everything remains seeded and deterministic: hedge timers live on the
same virtual-clock heap as completions, substitutes are probed in the
federation's deterministic substitutability order, and replaying a
configuration reproduces the trace byte for byte.

Example:
    >>> from repro.sources.generators import dmv_fig1
    >>> from repro.plans.builder import build_filter_plan
    >>> from repro.runtime.engine import RuntimeEngine
    >>> federation, query = dmv_fig1()
    >>> plan = build_filter_plan(query, federation.source_names)
    >>> result = RuntimeEngine(federation).run(plan)
    >>> sorted(result.items)
    ['J55', 'T21']
    >>> result.trace.total_retries
    0
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import CostModelError, ExecutionError, SourceUnavailableError
from repro.mediator.executor import ExecutionResult, StepTrace
from repro.plans.operations import (
    DifferenceOp,
    IntersectOp,
    LoadOp,
    LocalSelectionOp,
    Operation,
    SelectionOp,
    SemijoinOp,
    UnionOp,
)
from repro.plans.plan import Plan
from repro.relational.algebra import (
    difference,
    intersect_many,
    local_selection,
    union_many,
)
from repro.relational.relation import Relation
from repro.runtime.faults import AttemptFate, AttemptOutcome, FaultInjector
from repro.runtime.health import (
    BreakerConfig,
    BreakerState,
    HealthRegistry,
    QuarantineConfig,
)
from repro.runtime.policy import OnExhaust, RetryPolicy
from repro.runtime.trace import AttemptSpan, OpSpan, OpStatus, RuntimeTrace
from repro.runtime.verify import AnswerReport, AnswerVerifier, validate_mode
from repro.sources.registry import Federation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.recorder import Recorder


@dataclass(frozen=True)
class RuntimeResult:
    """Answer + observability record of one concurrent execution."""

    items: frozenset[Any]
    trace: RuntimeTrace

    @property
    def makespan_s(self) -> float:
        return self.trace.makespan_s

    @property
    def degraded_steps(self) -> tuple[int, ...]:
        """Plan steps whose retry budget ran out (empty result used)."""
        return self.trace.degraded_steps

    @property
    def deadline_steps(self) -> tuple[int, ...]:
        """Plan steps cut short by the query's deadline budget."""
        return self.trace.deadline_steps

    @property
    def recovered_steps(self) -> tuple[int, ...]:
        """Plan steps served by a substitute of their planned source."""
        return self.trace.recovered_steps

    @property
    def deadline_expired(self) -> bool:
        """True when the query budget expired before the plan finished."""
        return bool(self.deadline_steps)

    @property
    def complete(self) -> bool:
        """True when no operation degraded (answer is exact)."""
        return not (self.degraded_steps or self.deadline_steps)

    def to_execution_result(self) -> ExecutionResult:
        """Project onto the sequential executor's result type.

        Lets every consumer of :class:`ExecutionResult` (summaries,
        cost accounting, schedule cross-validation) read a concurrent
        run unchanged.  ``elapsed_s`` counts connection-busy time only
        (attempt durations, not backoff waits).  Operations lost — to a
        spent retry budget or to the query deadline — surface as
        ``incomplete_conditions``, one mark per affected condition, so a
        partial answer carries a machine-readable account of what it is
        missing.
        """
        steps = [
            StepTrace(
                step=span.step,
                operation=span.operation,
                output_size=span.output_size,
                actual_cost=span.cost,
                elapsed_s=span.busy_s,
                messages=span.messages,
                retries=span.retries,
            )
            for span in self.trace.spans
        ]
        incomplete: list[str] = []
        for span in self.trace.spans:
            if span.status not in (OpStatus.DEGRADED, OpStatus.DEADLINE):
                continue
            condition = getattr(span.operation, "condition", None)
            mark = (
                f"load {span.source}"
                if condition is None
                else condition.to_sql()
            )
            if mark not in incomplete:
                incomplete.append(mark)
        return ExecutionResult(
            items=self.items,
            steps=steps,
            hedges=self.trace.hedge_attempts,
            recovered=len(self.trace.recovered_steps),
            degraded=len(self.trace.degraded_steps)
            + len(self.trace.deadline_steps),
            deadline_expired=self.deadline_expired,
            incomplete_conditions=tuple(incomplete),
        )

    def summary(self) -> str:
        return self.trace.summary()

    def __repr__(self) -> str:
        return (
            f"RuntimeResult({len(self.items)} items, "
            f"makespan {self.makespan_s:.3f}s, "
            f"{self.trace.total_retries} retries, "
            f"{len(self.degraded_steps)} degraded)"
        )


class RuntimeEngine:
    """Configured concurrent executor over one federation.

    Args:
        federation: The sources to execute against.
        faults: Fault injector (default: no injected faults).
        policy: Retry/backoff/deadline policy (default:
            :meth:`RetryPolicy.default`).
        hedge_delay_s: Virtual-time delay after which a still-running
            attempt is speculatively duplicated on a substitutable
            source (``None`` disables hedging).
        breaker: Circuit-breaker configuration; ``None`` disables
            breakers (health is still tracked).
        health: An existing :class:`HealthRegistry` to share — re-plan
            rounds pass the same registry so breaker state survives
            across plans.  Overrides ``breaker``.
        min_containment: Row-containment threshold for derived
            substitutes (1.0 = only lossless substitution; declared
            replica groups always qualify).
        load_balance: Spread healthy traffic round-robin across a
            replica group's members instead of serializing everything
            on the planned source (off by default — the zero-config
            engine matches the static scheduler exactly).
        verify: Answer-verification mode — ``"off"`` (trust every
            payload; byte-identical to the pre-verification engine),
            ``"sanitize"`` (schema-validate and dedup every delivered
            answer), or ``"vote"`` (sanitize plus cross-replica
            majority confirmation within replica groups).  See
            :mod:`repro.runtime.verify`.
        quarantine: Optional :class:`QuarantineConfig`; when set (and a
            fresh registry is built here) sources whose data-quality
            score drops below the threshold are quarantined — refused
            like an open breaker, but on *quality* rather than errors.
            Ignored when ``health`` passes in a shared registry, whose
            own quarantine config wins.
        recorder: Optional :class:`repro.obs.Recorder`; when attached,
            every attempt, send-set, retry, hedge, breaker transition,
            and operation is reported as structured telemetry.  ``None``
            (the default) collects nothing and changes nothing.
    """

    def __init__(
        self,
        federation: Federation,
        faults: FaultInjector | None = None,
        policy: RetryPolicy | None = None,
        hedge_delay_s: float | None = None,
        breaker: BreakerConfig | None = None,
        health: HealthRegistry | None = None,
        min_containment: float = 1.0,
        load_balance: bool = False,
        verify: str = "off",
        quarantine: QuarantineConfig | None = None,
        recorder: "Recorder | None" = None,
    ):
        if hedge_delay_s is not None and not (
            math.isfinite(hedge_delay_s) and hedge_delay_s >= 0
        ):
            raise CostModelError(
                f"hedge_delay_s must be finite and non-negative, "
                f"got {hedge_delay_s}"
            )
        validate_mode(verify)
        self.federation = federation
        self.faults = faults or FaultInjector.none()
        self.policy = policy or RetryPolicy.default()
        self.hedge_delay_s = hedge_delay_s
        self.health = (
            health
            if health is not None
            else HealthRegistry(breaker, quarantine)
        )
        self.min_containment = min_containment
        self.load_balance = load_balance
        self.verify = verify
        self.verifier = (
            AnswerVerifier(federation, verify) if verify != "off" else None
        )
        self.recorder = recorder
        if recorder is not None and self.health.observer is None:
            self.health.observer = recorder.breaker_transition
        if recorder is not None and self.health.quality_observer is None:
            self.health.quality_observer = recorder.quarantine_changed
        self._substitutes: dict[str, tuple[str, ...]] | None = None

    @property
    def resilient(self) -> bool:
        """True when hedging or breakers may alter the execution."""
        return self.hedge_delay_s is not None or self.health.enabled

    def substitutes_for(self, source_name: str) -> tuple[str, ...]:
        """Substitutable sources for ``source_name``, best first (cached)."""
        if self._substitutes is None:
            self._substitutes = self.federation.substitutability(
                min_containment=self.min_containment
            )
        return self._substitutes.get(source_name, ())

    def run(
        self,
        plan: Plan,
        budget_s: float | None = None,
        trace_id: str | None = None,
    ) -> RuntimeResult:
        """Execute ``plan`` concurrently and return answer + trace.

        ``budget_s`` is the query's remaining deadline budget in virtual
        time.  When it expires mid-run the engine cancels every in-flight
        attempt, substitutes empty results for the unfinished remote
        operations (status :attr:`OpStatus.DEADLINE`), evaluates the
        remaining local operations (instantaneous), and returns a
        *partial* answer — a subset of the true answer, never a superset,
        because fusion plans only union and intersect item sets.  Retry
        backoff and hedge timers are clamped so neither can be scheduled
        past the budget.  A budget that is already spent (``<= 0``)
        degrades everything without touching the wire.

        ``trace_id`` scopes the recorder's span collection: while set,
        every operation, attempt, retry, hedge, breaker transition, and
        verification this run records becomes a span of that trace (see
        :mod:`repro.obs.spans`).  No recorder or no span log attached
        means the id is ignored.
        """
        if budget_s is not None and not math.isfinite(budget_s):
            raise CostModelError(
                f"budget_s must be finite or None, got {budget_s}"
            )
        started_trace = (
            self.recorder is not None
            and trace_id is not None
            and self.recorder.start_trace(trace_id)
        )
        try:
            return _Execution(self, plan, budget_s).run()
        finally:
            if started_trace:
                self.recorder.end_trace()


class _Task:
    """Per-operation mutable execution state."""

    __slots__ = (
        "index", "op", "input_writer", "remaining", "dependents",
        "value", "queued_s", "first_start_s", "attempts", "done",
        "inflight", "hedged", "primary_attempts", "retry_pending",
        "exhausted", "slot_source", "answers", "confirm_tried",
        "final_status", "slot_released",
    )

    def __init__(self, index: int, op: Operation):
        self.index = index
        self.op = op
        # The source whose connection slot this task occupies once
        # dispatched; equals the planned source unless load balancing
        # moved the task onto another member of the same replica group.
        self.slot_source: str = op.source if op.remote else ""
        self.input_writer: dict[str, int] = {}
        self.remaining = 0
        self.dependents: list[int] = []
        self.value: Any = None
        self.queued_s = 0.0
        self.first_start_s: float | None = None
        self.attempts: list[AttemptSpan] = []
        self.done = False
        self.inflight: list[_Attempt] = []
        self.hedged = False
        self.primary_attempts = 0
        self.retry_pending = False
        self.exhausted = False
        # Verification state: sanitized answers collected so far as
        # ``(source, cleaned_value, report)``, the confirm targets
        # already tried, and the status the primary answer earned.
        self.answers: list[tuple[str, Any, AnswerReport]] = []
        self.confirm_tried: set[str] = set()
        self.final_status: OpStatus | None = None
        # True once the task gave its connection slot back early (it
        # parked waiting for a busy replica to confirm its answer).
        self.slot_released = False

    @property
    def step(self) -> int:
        return self.index + 1

    @property
    def planned_source(self) -> str:
        return self.op.source  # type: ignore[attr-defined]


class _Attempt:
    """One in-flight wire attempt (primary-path or hedge)."""

    __slots__ = (
        "task", "source_name", "start_s", "outcome", "value", "records",
        "hedge", "confirm", "cancelled",
    )

    def __init__(
        self,
        task: _Task,
        source_name: str,
        start_s: float,
        outcome: AttemptOutcome,
        value: Any,
        records: list,
        hedge: bool,
        confirm: bool = False,
    ):
        self.task = task
        self.source_name = source_name
        self.start_s = start_s
        self.outcome = outcome
        self.value = value
        self.records = records
        self.hedge = hedge
        self.confirm = confirm
        self.cancelled = False


class _Execution:
    """One plan run: the event heap, queues, and handlers."""

    def __init__(
        self,
        engine: RuntimeEngine,
        plan: Plan,
        budget_s: float | None = None,
    ):
        self.engine = engine
        self.federation = engine.federation
        self.faults = engine.faults
        self.policy = engine.policy
        self.health = engine.health
        self.recorder = engine.recorder
        self.plan = plan
        self.budget_s = budget_s
        self.expired = False
        self.tasks = self._build_tasks(plan)
        self.result_writer = self._final_writer(plan)
        # Per-source FIFO of task indices in plan order; the head may
        # start once its inputs are ready and the connection is free.
        self.queues: dict[str, deque[_Task]] = {}
        self.busy: dict[str, bool] = {}
        for task in self.tasks:
            if task.op.remote:
                self.queues.setdefault(task.planned_source, deque()).append(task)
                self.busy.setdefault(task.planned_source, False)
        # Round-robin rotation state per replica group, only consulted
        # when the engine balances load across group members.
        self.rotation: dict[tuple[str, ...], int] = {}
        # Tasks whose dispatch is refused by an open breaker with no
        # healthy substitute; re-tried on every state change.
        self.blocked: list[_Task] = []
        # Tasks whose answer awaits a cross-replica confirmation from a
        # member that is currently busy; re-tried whenever a slot frees.
        self.confirm_waiting: list[_Task] = []
        self.heap: list[tuple[float, int, str, tuple]] = []
        self.seq = itertools.count()
        self.spans: dict[int, OpSpan] = {}
        self.makespan_s = 0.0

    # ------------------------------------------------------------------
    # Static structure

    @staticmethod
    def _build_tasks(plan: Plan) -> list[_Task]:
        tasks = [_Task(i, op) for i, op in enumerate(plan.operations)]
        writer_of: dict[str, int] = {}
        for task in tasks:
            deps = set()
            for register in task.op.reads():
                producer = writer_of[register]  # def-before-use validated
                task.input_writer[register] = producer
                deps.add(producer)
            task.remaining = len(deps)
            for producer in deps:
                tasks[producer].dependents.append(task.index)
            writer_of[task.op.target] = task.index
        return tasks

    @staticmethod
    def _final_writer(plan: Plan) -> int:
        writer = None
        for index, op in enumerate(plan.operations):
            if op.target == plan.result:
                writer = index
        assert writer is not None  # plan validation guarantees this
        return writer

    # ------------------------------------------------------------------
    # Event loop

    def run(self) -> RuntimeResult:
        if self.recorder is not None:
            self.recorder.run_started(
                0.0, "runtime", self.plan, self.plan.result
            )
        if self.budget_s is not None and self.budget_s <= 0:
            # Budget already spent: degrade everything without ever
            # touching the wire.
            self._handle_deadline(0.0)
        else:
            if self.budget_s is not None:
                # Seq ``inf`` orders the expiry *after* every other
                # event at the same instant: a deadline exactly at
                # completion time counts as met.
                heapq.heappush(
                    self.heap, (self.budget_s, math.inf, "deadline", ())
                )
            for task in self.tasks:
                if task.remaining == 0:
                    self._mark_ready(task, 0.0)
        while self.heap:
            now, __, kind, payload = heapq.heappop(self.heap)
            if kind == "complete":
                self._handle_complete(now, payload[0])
            elif kind == "retry":
                self._handle_retry(now, payload[0])
            elif kind == "hedge":
                self._handle_hedge(now, *payload)
            elif kind == "deadline":
                self._handle_deadline(now)
            else:  # "dispatch": an open breaker's cooldown elapsed
                self._handle_dispatch_wake(now, payload[0])
        unfinished = [t.step for t in self.tasks if not t.done]
        if unfinished:  # pragma: no cover - would be an engine bug
            raise ExecutionError(
                f"runtime deadlock: steps {unfinished} never completed"
            )
        ordered = tuple(self.spans[i] for i in range(len(self.tasks)))
        answer = self.tasks[self.result_writer].value
        result = RuntimeResult(
            items=frozenset() if answer is None else answer,
            trace=RuntimeTrace(spans=ordered, makespan_s=self.makespan_s),
        )
        if self.recorder is not None:
            trace = result.trace
            self.recorder.run_finished(
                self.makespan_s,
                "runtime",
                self.makespan_s,
                retries=trace.total_retries,
                degraded=len(trace.degraded_steps)
                + len(trace.deadline_steps),
                recovered=len(trace.recovered_steps),
                hedges=trace.hedge_attempts,
                cost=trace.total_cost,
                items=len(result.items),
            )
        return result

    def _push(self, time_s: float, kind: str, payload: tuple) -> None:
        heapq.heappush(self.heap, (time_s, next(self.seq), kind, payload))

    # ------------------------------------------------------------------
    # Readiness and dispatch

    def _mark_ready(self, task: _Task, now: float) -> None:
        task.queued_s = now
        if task.op.remote:
            self._try_dispatch(task.planned_source, now)
        else:
            self._run_local(task, now)

    def _dispatch_group(self, source_name: str, now: float) -> None:
        """Dispatch from every queue a freed slot could now serve."""
        if not self.engine.load_balance:
            self._try_dispatch(source_name, now)
        else:
            for member in self.federation.group_of(source_name):
                self._try_dispatch(member, now)
        if self.confirm_waiting:
            self._drain_confirms(now)

    def _try_dispatch(self, source_name: str, now: float) -> None:
        if self.expired:
            return  # past the deadline; nothing new goes on the wire
        if not self.engine.load_balance:
            if self.busy.get(source_name, False):
                return
            queue = self.queues.get(source_name)
            if not queue or queue[0].remaining > 0:
                return
            task = queue.popleft()
            self.busy[source_name] = True
            self._start_attempt(task, now)
            return
        # Balanced mode: the queue head may claim any idle member of
        # its planned source's replica group, so several queued ops of
        # one source can run concurrently across the group.
        queue = self.queues.get(source_name)
        while queue and queue[0].remaining == 0:
            slot = self._pick_slot(queue[0])
            if slot is None:
                return
            task = queue.popleft()
            task.slot_source = slot
            self.busy[slot] = True
            self._start_attempt(task, now)

    def _pick_slot(self, task: _Task) -> str | None:
        """Next idle, capable replica-group member, round-robin.

        Breaker checks are deliberately left to :meth:`_start_attempt`:
        ``health.allow`` consumes half-open probe slots, so it must only
        run for the member actually chosen.
        """
        members = self.federation.group_of(task.planned_source)
        if len(members) == 1:
            member = members[0]
            return None if self.busy.get(member, False) else member
        start = self.rotation.get(members, 0)
        for offset in range(len(members)):
            member = members[(start + offset) % len(members)]
            if self.busy.get(member, False):
                continue
            if not self._can_serve(member, task.op):
                continue
            # Quarantine is stable state (unlike half-open probes, the
            # check has no side effect), so refuse the slot here: a
            # quarantined slot would shadow the healthy planned source
            # from the substitute search and strand the task.
            if (
                self.health.state_of(member)
                is BreakerState.QUARANTINED
            ):
                continue
            self.rotation[members] = (start + offset + 1) % len(members)
            return member
        return None

    def _start_attempt(self, task: _Task, now: float) -> None:
        """Begin a primary-path attempt, routing around open breakers."""
        if task.first_start_s is None:
            task.first_start_s = now
        slot = task.slot_source
        serving = slot
        if not self.health.allow(slot, now):
            serving = self._substitute_target(task, now)
            if serving is None:
                self._block(task, now)
                return
        self._launch(task, serving, now, hedge=False)

    def _block(self, task: _Task, now: float) -> None:
        """Park a dispatch refused by a breaker with no substitute free.

        An OPEN breaker has a known re-probe time: schedule a wake
        there.  A HALF_OPEN breaker at its probe limit has an attempt in
        flight whose completion drains the blocked list.  A QUARANTINED
        slot wakes at its cooldown expiry; with a sticky quarantine and
        every alternative idle-but-refused there is nothing left to
        wait for, so the task degrades rather than deadlocks (the
        re-planning layer can still reroute it).
        """
        self.blocked.append(task)
        reopens = self.health.reopens_at(task.slot_source)
        if reopens is not None:
            self._push(max(reopens, now), "dispatch", (task,))
            return
        if (
            self.health.state_of(task.slot_source)
            is not BreakerState.QUARANTINED
        ):
            return
        lifts = self.health.quarantine_lifts_at(task.slot_source)
        if lifts is not None:
            self._push(max(lifts, now), "dispatch", (task,))
        elif not self._server_may_free(task):
            self.blocked.remove(task)
            self._give_up(task, now)

    def _server_may_free(self, task: _Task) -> bool:
        """Whether a currently-busy source might later serve ``task``."""
        candidates = [task.planned_source, task.slot_source]
        candidates.extend(self.engine.substitutes_for(task.planned_source))
        return any(self.busy.get(name, False) for name in candidates)

    def _handle_dispatch_wake(self, now: float, task: _Task) -> None:
        if task.done or task not in self.blocked:
            return
        self.blocked.remove(task)
        self._start_attempt(task, now)

    def _drain_blocked(self, now: float) -> None:
        for task in list(self.blocked):
            if task not in self.blocked:  # re-entrant removal
                continue
            self.blocked.remove(task)
            if task.done:
                # A hedge won while this task's retry sat blocked on an
                # open breaker; re-launching would double-finish it and
                # charge phantom failures to the hedge's source.
                continue
            self._start_attempt(task, now)

    def _substitute_target(self, task: _Task, now: float) -> str | None:
        """First substitute that can serve, is idle, and is allowed.

        Probed in the federation's deterministic substitutability order
        (declared replicas first, then by descending row containment).
        Checking ``allow`` last matters: it commits a half-open probe
        slot, so it must only run for a candidate we would actually use.
        """
        taken = {a.source_name for a in task.inflight}
        taken.add(task.planned_source)
        taken.add(task.slot_source)
        for name in self.engine.substitutes_for(task.planned_source):
            if name in taken or self.busy.get(name, False):
                continue
            if not self._can_serve(name, task.op):
                continue
            if not self.health.allow(name, now):
                continue
            return name
        return None

    def _can_serve(self, source_name: str, op: Operation) -> bool:
        capabilities = self.federation.source(source_name).capabilities
        if isinstance(op, SemijoinOp):
            return capabilities.can_semijoin
        if isinstance(op, LoadOp):
            return capabilities.supports_load
        return True

    def _launch(
        self,
        task: _Task,
        serving: str,
        now: float,
        hedge: bool,
        confirm: bool = False,
    ) -> None:
        """Issue one wire attempt of ``task`` against source ``serving``."""
        source = self.federation.source(serving)
        if serving != task.slot_source:
            # The task's own connection slot stays with it for retries;
            # a substitute's connection is held only for the attempt.
            self.busy[serving] = True
        if self.recorder is not None and isinstance(task.op, SemijoinOp):
            bindings = self.tasks[
                task.input_writer[task.op.input_register]
            ].value
            self.recorder.sendset_shipped(
                now,
                task.step,
                serving,
                task.op.condition.to_sql(),
                len(bindings),
            )
        mark = len(source.traffic.records)
        try:
            value = self._call_wrapper(task, source)
            call_failed = False
        except SourceUnavailableError:
            value = None
            call_failed = True
        records = source.traffic.records[mark:]
        if call_failed:
            # The legacy per-source FailureInjector fired before any
            # traffic was charged: fail after one empty round trip.
            outcome = AttemptOutcome(
                AttemptFate.TRANSIENT, source.link.request_time_s(0, 0)
            )
        else:
            base = sum(record.elapsed_s for record in records)
            outcome = self.faults.judge(source.name, now, base, source.link)
        timeout = self.policy.timeout_s
        if timeout is not None and outcome.duration_s > timeout:
            outcome = AttemptOutcome(AttemptFate.TIMEOUT, timeout)
        if outcome.fate.failed:
            value = None
        else:
            # A delivered payload may still be wrong: the injector's
            # data-fault stream (a sibling of the wire stream, so wire
            # fates are untouched) can truncate, stale-swap, duplicate,
            # or corrupt it before the engine ever sees it.
            value, __ = self.faults.tamper(
                serving, value, pool=self._stale_pool(task, source)
            )
        attempt = _Attempt(
            task, serving, now, outcome, value, records, hedge, confirm
        )
        task.inflight.append(attempt)
        if hedge:
            task.hedged = True
        elif not confirm:
            task.primary_attempts += 1
        self._push(now + outcome.duration_s, "complete", (attempt,))
        hedge_at = now + (self.engine.hedge_delay_s or 0.0)
        if (
            not hedge
            and not confirm
            and self.engine.hedge_delay_s is not None
            and not task.hedged
            and self.engine.hedge_delay_s < outcome.duration_s
            # Clamp to the query budget: a hedge armed at or past the
            # deadline could only ever be cancelled.
            and (self.budget_s is None or hedge_at < self.budget_s)
        ):
            self._push(hedge_at, "hedge", (task, attempt))

    def _call_wrapper(self, task: _Task, source) -> Any:
        op = task.op
        if isinstance(op, SelectionOp):
            return source.selection(op.condition)
        if isinstance(op, SemijoinOp):
            bindings = self.tasks[task.input_writer[op.input_register]].value
            return source.semijoin(op.condition, bindings)
        if isinstance(op, LoadOp):
            return source.load()
        raise ExecutionError(f"unknown remote operation {op!r}")  # pragma: no cover

    def _stale_pool(self, task: _Task, source) -> frozenset:
        """Candidate spurious items for a stale item-set answer.

        A stale selection may claim any item the source holds; a stale
        semijoin may (wrongly) confirm any item it was asked about.
        Loads mutate rows inside the injector instead, so they need no
        pool.
        """
        profile = self.faults.profile_for(source.name).data
        if profile is None or profile.stale_rate == 0.0:
            return frozenset()
        op = task.op
        if isinstance(op, SemijoinOp):
            bindings = self.tasks[task.input_writer[op.input_register]].value
            return frozenset(bindings)
        if isinstance(op, SelectionOp):
            table = getattr(source, "table", None)
            if table is None:
                return frozenset()
            return table.relation.items()
        return frozenset()

    # ------------------------------------------------------------------
    # Hedging

    def _handle_hedge(
        self, now: float, task: _Task, attempt: _Attempt
    ) -> None:
        """Hedge timer fired: duplicate a still-slow attempt."""
        if (
            task.done
            or task.hedged
            or attempt.cancelled
            or attempt not in task.inflight
        ):
            return
        if self.budget_s is not None and now >= self.budget_s:
            return  # no budget left for speculation
        target = self._substitute_target(task, now)
        if target is None:
            return  # no idle healthy replica; the primary races alone
        if self.recorder is not None:
            self.recorder.hedge_launched(
                now, task.step, attempt.source_name, target, "timer"
            )
        self._launch(task, target, now, hedge=True)

    def _maybe_hedge_on_failure(self, task: _Task, now: float) -> None:
        """First-failure trigger: hedge immediately instead of waiting."""
        if self.engine.hedge_delay_s is None or task.hedged:
            return
        if self.budget_s is not None and now >= self.budget_s:
            return  # no budget left for speculation
        target = self._substitute_target(task, now)
        if target is not None:
            if self.recorder is not None:
                self.recorder.hedge_launched(
                    now, task.step, task.slot_source, target, "failure"
                )
            self._launch(task, target, now, hedge=True)

    def _cancel(self, attempt: _Attempt, now: float) -> None:
        """Cancel a raced-out attempt: record span, free its connection.

        The attempt's traffic was charged when it went on the wire and
        stays charged — cancellation only stops the wait.
        """
        attempt.cancelled = True
        self._record_span(attempt, now, AttemptFate.CANCELLED)
        self.health.abandon(attempt.source_name)
        if attempt.source_name != attempt.task.slot_source:
            self.busy[attempt.source_name] = False
            self._dispatch_group(attempt.source_name, now)

    # ------------------------------------------------------------------
    # Completion, retries, degradation

    def _record_span(
        self, attempt: _Attempt, now: float, fate: AttemptFate
    ) -> None:
        task = attempt.task
        records = attempt.records
        span = AttemptSpan(
            attempt=len(task.attempts) + 1,
            start_s=attempt.start_s,
            end_s=now,
            fate=fate,
            cost=sum(r.cost for r in records),
            items_sent=sum(r.items_sent for r in records),
            items_received=sum(r.items_received for r in records),
            rows_loaded=sum(r.rows_loaded for r in records),
            messages=len(records),
            source=attempt.source_name,
            hedge=attempt.hedge,
            confirm=attempt.confirm,
        )
        task.attempts.append(span)
        if self.recorder is not None:
            condition = getattr(task.op, "condition", None)
            self.recorder.attempt_finished(
                now,
                task.step,
                task.op.kind.value,
                task.planned_source,
                "" if condition is None else condition.to_sql(),
                span,
            )

    def _handle_complete(self, now: float, attempt: _Attempt) -> None:
        if attempt.cancelled:
            return  # the race's loser; span recorded at cancellation
        task = attempt.task
        task.inflight.remove(attempt)
        self._record_span(attempt, now, attempt.outcome.fate)
        ok = not attempt.outcome.fate.failed
        self.health.record(
            attempt.source_name, now, ok, attempt.outcome.duration_s
        )
        released = attempt.source_name != task.slot_source
        if released:
            self.busy[attempt.source_name] = False
        if ok:
            for other in list(task.inflight):
                self._cancel(other, now)
            task.inflight.clear()
            if not attempt.confirm:
                task.final_status = (
                    OpStatus.OK
                    if attempt.source_name == task.slot_source
                    else OpStatus.RECOVERED
                )
            self._accept_answer(task, attempt, now)
        elif attempt.confirm:
            self._confirm_failed(task, now)
        else:
            self._handle_failure(task, attempt, now)
        if released:
            self._dispatch_group(attempt.source_name, now)
        if self.blocked:
            self._drain_blocked(now)

    def _accept_answer(
        self, task: _Task, attempt: _Attempt, now: float
    ) -> None:
        """One delivered answer: verify it, maybe confirm, maybe finish."""
        verifier = self.engine.verifier
        assert task.final_status is not None
        if verifier is None:
            value = attempt.value
            if isinstance(value, tuple):
                # verify="off": tampered payloads flow through untouched
                # (duplicates collapse in the set, spurious items stay).
                value = frozenset(value)
            self._finish_remote(task, now, value, task.final_status)
            return
        cleaned, report = verifier.check(attempt.source_name, attempt.value)
        task.answers.append((attempt.source_name, cleaned, report))
        if verifier.votes and self._wants_confirmation(task, now):
            if self._start_confirmation(task, now):
                return
        self._finish_verified(task, now)

    def _wants_confirmation(self, task: _Task, now: float) -> bool:
        """Whether vote mode should fetch another replica's answer.

        Two answers normally suffice; a third member is consulted only
        to break a disagreement, so a lone stale replica is outvoted
        rather than merely intersected away.
        """
        if self.expired or (
            self.budget_s is not None and now >= self.budget_s
        ):
            return False
        count = len(task.answers)
        if count >= 3:
            return False
        if count == 1:
            return True
        verifier = self.engine.verifier
        assert verifier is not None
        return verifier.claims(task.answers[0][1]) != verifier.claims(
            task.answers[1][1]
        )

    def _start_confirmation(self, task: _Task, now: float) -> bool:
        """Launch (or queue) a cross-replica confirmation fetch.

        Returns True when the task is now waiting on another answer:
        either a confirm attempt went on the wire, or every untried
        member is busy, in which case the task parks until one frees —
        releasing its own connection slot first, so two group members
        waiting on each other can never deadlock.
        """
        target = self._confirm_target(task, now)
        if target is not None:
            task.confirm_tried.add(target)
            self._launch(task, target, now, hedge=False, confirm=True)
            return True
        if self._confirm_pending(task):
            if task not in self.confirm_waiting:
                self.confirm_waiting.append(task)
            self._release_slot(task, now)
            return True
        return False

    def _confirm_pending(self, task: _Task) -> bool:
        """An untried capable group member exists but is busy right now."""
        have = {source for source, __, __ in task.answers}
        have |= task.confirm_tried
        return any(
            member not in have
            and self.busy.get(member, False)
            and self._can_serve(member, task.op)
            for member in self.federation.group_of(task.planned_source)
        )

    def _release_slot(self, task: _Task, now: float) -> None:
        """Give a parked task's connection slot back to its group."""
        if task.slot_released:
            return
        task.slot_released = True
        self.busy[task.slot_source] = False
        self._dispatch_group(task.slot_source, now)

    def _drain_confirms(self, now: float) -> None:
        """A slot freed: retry every parked confirmation fetch."""
        if self.expired:
            return  # the deadline handler finishes parked tasks itself
        for task in list(self.confirm_waiting):
            if task not in self.confirm_waiting:  # re-entrant removal
                continue
            if task.done:  # pragma: no cover - defensive
                self.confirm_waiting.remove(task)
                continue
            target = self._confirm_target(task, now)
            if target is not None:
                self.confirm_waiting.remove(task)
                task.confirm_tried.add(target)
                self._launch(task, target, now, hedge=False, confirm=True)
            elif not self._confirm_pending(task):
                # The member it waited for came back unusable (e.g. it
                # got quarantined meanwhile): vote over what we have.
                self.confirm_waiting.remove(task)
                self._finish_verified(task, now)

    def _confirm_target(self, task: _Task, now: float) -> str | None:
        """Next untried, idle, capable replica-group member, if any."""
        have = {source for source, __, __ in task.answers}
        have |= task.confirm_tried
        for member in self.federation.group_of(task.planned_source):
            if member in have:
                continue
            if member != task.slot_source and self.busy.get(member, False):
                continue
            if not self._can_serve(member, task.op):
                continue
            if not self.health.allow(member, now):
                continue
            return member
        return None

    def _confirm_failed(self, task: _Task, now: float) -> None:
        """A confirmation fetch failed on the wire: try the next member.

        Confirm attempts never consume the primary retry budget — the
        answer is already in hand; when the group runs out of members
        the vote simply proceeds over what was collected.
        """
        if task.done:
            return  # pragma: no cover - defensive
        if not self.expired and (
            self.budget_s is None or now < self.budget_s
        ):
            if self._start_confirmation(task, now):
                return
        self._finish_verified(task, now)

    def _finish_verified(self, task: _Task, now: float) -> None:
        """Vote (if answers allow), charge quality, finish the task."""
        verifier = self.engine.verifier
        assert verifier is not None and task.answers
        assert task.final_status is not None
        if len(task.answers) == 1:
            source, value, report = task.answers[0]
            self._report_quality(task, source, report, now)
            self._finish_remote(task, now, value, task.final_status)
            return
        outcome = verifier.vote(
            [(source, value) for source, value, __ in task.answers]
        )
        # A two-way disagreement has no majority: intersecting is safe,
        # but blame would charge the honest member exactly as much as
        # the liar, so conflicts are attributed only when three or more
        # answers give a real majority to judge against.
        attributable = len(task.answers) >= 3
        for source, __, report in task.answers:
            conflicts = 0
            if attributable:
                conflicts = outcome.spurious.get(
                    source, 0
                ) + outcome.missing.get(source, 0)
            self._report_quality(
                task, source, report.with_conflicts(conflicts), now
            )
        self._finish_remote(task, now, outcome.kept, task.final_status)

    def _report_quality(
        self, task: _Task, source: str, report: AnswerReport, now: float
    ) -> None:
        self.health.record_quality(
            source,
            now,
            clean=report.clean,
            delivered=report.delivered,
            kept=report.kept,
        )
        if self.recorder is not None:
            self.recorder.answer_verified(
                now,
                task.step,
                report,
                self.health.quality_score(source),
            )

    def _handle_failure(
        self, task: _Task, attempt: _Attempt, now: float
    ) -> None:
        if attempt.hedge:
            # The hedge lost its race to recover; if the primary path is
            # already out of budget and nothing else is pending, the
            # hedge was the last hope — degrade now.
            if task.exhausted and not task.inflight and not task.retry_pending:
                self._give_up(task, now)
            return
        self._maybe_hedge_on_failure(task, now)
        retries_used = task.primary_attempts - 1
        remaining = None if self.budget_s is None else self.budget_s - now
        wait = self.policy.clamped_backoff_s(
            retries_used + 1,
            remaining,
            key=task.op.target,
            seed=self.faults.seed,
        )
        if wait is None:
            # The backoff sleep alone would cross the query deadline:
            # degrade now instead of sleeping into the expiry.
            if task.inflight:
                task.exhausted = True
                return
            self._give_up_deadline(task, now)
            return
        retry_at = now + wait
        assert task.first_start_s is not None
        if self.policy.may_retry(retries_used, task.first_start_s, retry_at):
            task.retry_pending = True
            if self.recorder is not None:
                self.recorder.retry_scheduled(
                    now,
                    task.step,
                    attempt.source_name,
                    retries_used + 1,
                    retry_at,
                )
            self._push(retry_at, "retry", (task,))  # connection stays held
            return
        if task.inflight:
            task.exhausted = True  # a hedge is still racing; wait for it
            return
        self._give_up(task, now)

    def _handle_retry(self, now: float, task: _Task) -> None:
        task.retry_pending = False
        if task.done:
            return  # a hedge won during the backoff
        self._start_attempt(task, now)

    def _give_up_deadline(self, task: _Task, now: float) -> None:
        """Degrade an operation the *query* deadline stopped.

        Unlike :meth:`_give_up` this never raises, whatever the policy's
        ``on_exhaust`` says: a deadline asks for the best partial answer
        available on time, not for an error.
        """
        self._finish_remote(
            task, now, self._degraded_value(task), OpStatus.DEADLINE
        )

    def _handle_deadline(self, now: float) -> None:
        """The query budget expired: cancel, degrade, answer partially.

        Every in-flight attempt is cancelled (its traffic stays
        charged), every unfinished remote operation finishes with an
        empty value and status :attr:`OpStatus.DEADLINE`, and the local
        operations downstream evaluate instantaneously over whatever
        made it — so the answer is a well-formed subset of the truth.
        """
        if all(task.done for task in self.tasks):
            return  # the plan beat the deadline; nothing to cut
        self.expired = True
        self.heap.clear()  # pending retries/hedges/wakes are moot
        self.blocked.clear()
        for task in self.tasks:
            if task.done:
                continue
            for attempt in list(task.inflight):
                self._cancel(attempt, now)
            task.inflight.clear()
            if not task.op.remote:
                continue  # locals evaluate via propagation below
            if task.first_start_s is None:
                task.first_start_s = now  # never reached the wire
            if task.answers:
                # A verified answer was already in hand, only its
                # cross-replica confirmation was cut short: finish with
                # the best verified value rather than nothing.
                self._finish_verified(task, now)
            else:
                self._give_up_deadline(task, now)

    def _give_up(self, task: _Task, now: float) -> None:
        if self.policy.on_exhaust is OnExhaust.FAIL:
            last = task.attempts[-1].fate.value if task.attempts else "?"
            raise ExecutionError(
                f"step {task.step} ({task.op.render()}) failed after "
                f"{task.primary_attempts - 1} retries "
                f"(last attempt: {last})"
            )
        self._finish_remote(
            task, now, self._degraded_value(task), OpStatus.DEGRADED
        )

    def _degraded_value(self, task: _Task) -> Any:
        if isinstance(task.op, LoadOp):
            source = self.federation.source(task.op.source)
            return Relation(task.op.target, source.schema, [])
        return frozenset()

    def _finish_remote(
        self, task: _Task, now: float, value: Any, status: OpStatus
    ) -> None:
        source_name = task.slot_source
        task.value = value
        task.done = True
        if task in self.blocked:
            self.blocked.remove(task)
        if task in self.confirm_waiting:
            self.confirm_waiting.remove(task)
        assert task.first_start_s is not None
        self.spans[task.index] = OpSpan(
            step=task.step,
            operation=task.op,
            queued_s=task.queued_s,
            started_s=task.first_start_s,
            finished_s=now,
            attempts=tuple(task.attempts),
            status=status,
            output_size=len(value),
        )
        if self.recorder is not None:
            self.recorder.op_finished(now, self.spans[task.index])
        self.makespan_s = max(self.makespan_s, now)
        if task.slot_released:
            # The slot went back to the group when the task parked for
            # confirmation; it may be serving someone else by now.
            self._propagate(task, now)
            return
        self.busy[source_name] = False
        self._propagate(task, now)
        self._dispatch_group(source_name, now)

    def _propagate(self, task: _Task, now: float) -> None:
        for index in task.dependents:
            dependent = self.tasks[index]
            dependent.remaining -= 1
            if dependent.remaining == 0:
                self._mark_ready(dependent, now)

    # ------------------------------------------------------------------
    # Local operations (instantaneous, free)

    def _run_local(self, task: _Task, now: float) -> None:
        op = task.op

        def fetch(register: str) -> Any:
            return self.tasks[task.input_writer[register]].value

        if isinstance(op, UnionOp):
            value = union_many(fetch(register) for register in op.inputs)
        elif isinstance(op, IntersectOp):
            value = intersect_many(fetch(register) for register in op.inputs)
        elif isinstance(op, DifferenceOp):
            value = difference(fetch(op.left), fetch(op.right))
        elif isinstance(op, LocalSelectionOp):
            value = local_selection(fetch(op.input_register), op.condition)
        else:  # pragma: no cover
            raise ExecutionError(f"unknown local operation {op!r}")
        task.value = value
        task.done = True
        self.spans[task.index] = OpSpan(
            step=task.step,
            operation=op,
            queued_s=now,
            started_s=now,
            finished_s=now,
            attempts=(),
            status=OpStatus.OK,
            output_size=len(value),
        )
        if self.recorder is not None:
            self.recorder.op_finished(now, self.spans[task.index])
        self.makespan_s = max(self.makespan_s, now)
        self._propagate(task, now)
