"""Answer verification on arrival — the data-plane trust boundary.

Wire-level faults (:mod:`repro.runtime.faults`) are visible: an attempt
times out or errors and the engine retries.  Payload-level faults are
not — a truncated, stale, duplicated, or corrupt answer arrives with a
perfectly healthy wire fate, and a mediator that unions it blindly
breaks the repo's zero-spurious-tuples invariant.  This module checks
every delivered answer before the engine accepts it, in the spirit of
Dong et al.'s data fusion: conflicts across overlapping sources are
detected and resolved, not merged.

Two active modes (the engine's ``verify="off"`` simply bypasses this
module and stays byte-identical to the untrusted runtime):

* ``"sanitize"`` — local checks only: every value is validated against
  the serving source's declared schema (type-violating values are
  dropped), and duplicate items are collapsed.  Catches ``CORRUPT`` and
  ``DUPLICATE``; cannot catch tuples that are silently missing or
  plausibly-typed stale values.
* ``"vote"`` — sanitize plus cross-replica confirmation: when the
  serving source belongs to a replica group, the engine fetches the
  same answer from other group members and keeps the values a majority
  agrees on.  With three or more voters a lone stale replica is
  outvoted *and blamed*: its rejected claims and missed values are
  charged to its data-quality score in the
  :class:`~repro.runtime.health.HealthRegistry`, which is what
  eventually quarantines it.

The verifier itself is pure — it never touches the clock, the health
registry, or the recorder — so the engine stays the single place where
state changes happen.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from repro.errors import ExecutionError, SchemaError
from repro.relational.relation import Relation
from repro.sources.registry import Federation

#: The engine/mediator/CLI knob values.
VERIFY_MODES = ("off", "sanitize", "vote")


def validate_mode(mode: str) -> str:
    """Check a ``verify`` knob value, returning it for chaining."""
    if mode not in VERIFY_MODES:
        raise ExecutionError(
            f"verify must be one of {VERIFY_MODES}, got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class AnswerReport:
    """What verification found in one delivered answer.

    Attributes:
        source: The source that served the answer.
        delivered: Tuples as delivered (duplicates included).
        kept: Tuples that survived sanitization.
        corrupt: Schema/type-violating values dropped.
        duplicates: Duplicate tuples collapsed.
        conflicts: Values this source got wrong in a cross-replica vote
            (rejected claims plus missed values); filled in after the
            vote, zero in sanitize mode.
    """

    source: str
    delivered: int
    kept: int
    corrupt: int = 0
    duplicates: int = 0
    conflicts: int = 0

    @property
    def clean(self) -> bool:
        """True when the answer showed no detectable issue."""
        return self.corrupt == 0 and self.duplicates == 0 and self.conflicts == 0

    @property
    def issues(self) -> int:
        return self.corrupt + self.duplicates + self.conflicts

    def with_conflicts(self, conflicts: int) -> "AnswerReport":
        return replace(self, conflicts=self.conflicts + conflicts)


@dataclass(frozen=True)
class VoteResult:
    """Outcome of a cross-replica majority vote.

    Attributes:
        kept: The majority answer (an item set or a :class:`Relation`).
        unanimous: True when every voter served the same answer.
        spurious: Per-source count of claims the majority rejected.
        missing: Per-source count of kept values the source failed to
            deliver.
    """

    kept: Any
    unanimous: bool
    spurious: Mapping[str, int]
    missing: Mapping[str, int]


class AnswerVerifier:
    """Schema validation, dedup, and majority voting over answers.

    Args:
        federation: Supplies each source's declared schema (the merge
            attribute's type is what item values are checked against).
        mode: ``"sanitize"`` or ``"vote"``; ``"off"`` is handled by the
            engine never constructing a verifier at all.
    """

    def __init__(self, federation: Federation, mode: str = "sanitize"):
        validate_mode(mode)
        if mode == "off":
            raise ExecutionError(
                "an AnswerVerifier is never constructed with verify='off'"
            )
        self.federation = federation
        self.mode = mode

    @property
    def votes(self) -> bool:
        return self.mode == "vote"

    @staticmethod
    def claims(value: Any) -> frozenset:
        """The comparable claim set of one sanitized answer.

        Relations vote by their row sets (multiplicity carries no
        information across replicas); item sets vote as themselves.
        """
        if isinstance(value, Relation):
            return frozenset(value.rows)
        return frozenset(value)

    # ------------------------------------------------------------------
    # Sanitization

    def check(
        self, source_name: str, value: Any
    ) -> tuple[Any, AnswerReport]:
        """Sanitize one delivered answer.

        ``value`` is what the source served: an item set (possibly a
        tuple, because duplicates are meaningful on delivery) or a
        :class:`Relation`.  Returns the cleaned value — always a
        ``frozenset`` or a validated :class:`Relation` — plus a report
        of what was dropped.
        """
        schema = self.federation.source(source_name).schema
        if isinstance(value, Relation):
            return self._check_relation(source_name, value, schema)
        return self._check_items(source_name, value, schema)

    def _check_items(
        self, source_name: str, value: Iterable[Any], schema
    ) -> tuple[frozenset, AnswerReport]:
        delivered = (
            tuple(value)
            if isinstance(value, tuple)
            else tuple(sorted(value, key=repr))
        )
        attribute = schema.attribute(schema.merge_attribute)
        kept: set[Any] = set()
        corrupt = 0
        duplicates = 0
        for item in delivered:
            try:
                attribute.validate_value(item)
            except SchemaError:
                corrupt += 1
                continue
            if item in kept:
                duplicates += 1
                continue
            kept.add(item)
        report = AnswerReport(
            source=source_name,
            delivered=len(delivered),
            kept=len(kept),
            corrupt=corrupt,
            duplicates=duplicates,
        )
        return frozenset(kept), report

    def _check_relation(
        self, source_name: str, relation: Relation, schema
    ) -> tuple[Relation, AnswerReport]:
        # Relations are *bags* — a source may legitimately hold several
        # identical rows — so only schema violations are dropped here;
        # injected duplicate rows are indistinguishable from real ones
        # and harmless (the merge-item set ignores multiplicity).
        kept = []
        corrupt = 0
        for row in relation.rows:
            try:
                relation.schema.validate_row(row)
            except SchemaError:
                corrupt += 1
                continue
            kept.append(row)
        cleaned = (
            relation
            if not corrupt
            else Relation(relation.name, relation.schema, kept)
        )
        report = AnswerReport(
            source=source_name,
            delivered=len(relation.rows),
            kept=len(kept),
            corrupt=corrupt,
        )
        return cleaned, report

    # ------------------------------------------------------------------
    # Cross-replica voting

    def vote(self, answers: list[tuple[str, Any]]) -> VoteResult:
        """Majority-vote over sanitized answers from replica-group members.

        With two voters the vote is an intersection (no majority can
        form for a disputed value); with three or more, a lone divergent
        replica is outvoted.  Per-source blame — claims rejected and
        values missed — feeds the quality score that quarantines
        persistently bad sources.
        """
        if len(answers) < 2:
            raise ExecutionError("a vote needs at least two answers")
        relational = isinstance(answers[0][1], Relation)
        claims: list[tuple[str, frozenset]] = [
            (source, self.claims(value)) for source, value in answers
        ]
        majority = len(claims) // 2 + 1
        counts: Counter = Counter()
        for __, claim in claims:
            counts.update(claim)
        kept_elements = frozenset(
            element
            for element, count in counts.items()
            if count >= majority
        )
        spurious: dict[str, int] = {}
        missing: dict[str, int] = {}
        for source, claim in claims:
            rejected = len(claim - kept_elements)
            missed = len(kept_elements - claim)
            if rejected:
                spurious[source] = rejected
            if missed:
                missing[source] = missed
        unanimous = all(claim == claims[0][1] for __, claim in claims)
        if relational:
            first = answers[0][1]
            rows = sorted(kept_elements, key=repr)
            kept_value: Any = Relation(first.name, first.schema, rows)
        else:
            kept_value = kept_elements
        return VoteResult(
            kept=kept_value,
            unanimous=unanimous,
            spurious=spurious,
            missing=missing,
        )
